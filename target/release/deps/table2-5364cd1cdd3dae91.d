/root/repo/target/release/deps/table2-5364cd1cdd3dae91.d: crates/bench/benches/table2.rs

/root/repo/target/release/deps/table2-5364cd1cdd3dae91: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
