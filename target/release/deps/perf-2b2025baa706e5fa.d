/root/repo/target/release/deps/perf-2b2025baa706e5fa.d: crates/bench/benches/perf.rs

/root/repo/target/release/deps/perf-2b2025baa706e5fa: crates/bench/benches/perf.rs

crates/bench/benches/perf.rs:
