/root/repo/target/release/deps/concat_bench-5f15d156f3dcb5ad.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconcat_bench-5f15d156f3dcb5ad.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconcat_bench-5f15d156f3dcb5ad.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
