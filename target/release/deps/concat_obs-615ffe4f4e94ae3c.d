/root/repo/target/release/deps/concat_obs-615ffe4f4e94ae3c.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/release/deps/libconcat_obs-615ffe4f4e94ae3c.rlib: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/release/deps/libconcat_obs-615ffe4f4e94ae3c.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
