/root/repo/target/release/deps/concat_bench-a21c69f8f7083aa1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/concat_bench-a21c69f8f7083aa1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
