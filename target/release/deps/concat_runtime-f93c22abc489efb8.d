/root/repo/target/release/deps/concat_runtime-f93c22abc489efb8.d: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

/root/repo/target/release/deps/libconcat_runtime-f93c22abc489efb8.rlib: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

/root/repo/target/release/deps/libconcat_runtime-f93c22abc489efb8.rmeta: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/component.rs:
crates/runtime/src/error.rs:
crates/runtime/src/harden.rs:
crates/runtime/src/literal.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/value.rs:
