/root/repo/target/release/deps/concat-538b118a9226377f.d: src/lib.rs

/root/repo/target/release/deps/libconcat-538b118a9226377f.rlib: src/lib.rs

/root/repo/target/release/deps/libconcat-538b118a9226377f.rmeta: src/lib.rs

src/lib.rs:
