/root/repo/target/release/deps/chaos-7c7331a3d7df234f.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-7c7331a3d7df234f: tests/chaos.rs

tests/chaos.rs:
