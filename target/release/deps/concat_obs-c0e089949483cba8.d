/root/repo/target/release/deps/concat_obs-c0e089949483cba8.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/release/deps/libconcat_obs-c0e089949483cba8.rlib: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/release/deps/libconcat_obs-c0e089949483cba8.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
