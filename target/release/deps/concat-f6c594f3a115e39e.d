/root/repo/target/release/deps/concat-f6c594f3a115e39e.d: src/lib.rs

/root/repo/target/release/deps/libconcat-f6c594f3a115e39e.rlib: src/lib.rs

/root/repo/target/release/deps/libconcat-f6c594f3a115e39e.rmeta: src/lib.rs

src/lib.rs:
