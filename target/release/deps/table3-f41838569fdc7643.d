/root/repo/target/release/deps/table3-f41838569fdc7643.d: crates/bench/benches/table3.rs

/root/repo/target/release/deps/table3-f41838569fdc7643: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
