/root/repo/target/release/deps/concat_bit-e5faf9bd705a8245.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/release/deps/libconcat_bit-e5faf9bd705a8245.rlib: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/release/deps/libconcat_bit-e5faf9bd705a8245.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
