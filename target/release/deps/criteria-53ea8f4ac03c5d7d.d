/root/repo/target/release/deps/criteria-53ea8f4ac03c5d7d.d: crates/bench/benches/criteria.rs

/root/repo/target/release/deps/criteria-53ea8f4ac03c5d7d: crates/bench/benches/criteria.rs

crates/bench/benches/criteria.rs:
