/root/repo/target/release/deps/concat_bench-90683f9e484729bb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconcat_bench-90683f9e484729bb.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconcat_bench-90683f9e484729bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
