/root/repo/target/release/deps/concat_report-0c816e0efdaf028a.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/release/deps/libconcat_report-0c816e0efdaf028a.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/release/deps/libconcat_report-0c816e0efdaf028a.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
