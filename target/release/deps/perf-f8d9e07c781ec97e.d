/root/repo/target/release/deps/perf-f8d9e07c781ec97e.d: crates/bench/benches/perf.rs

/root/repo/target/release/deps/perf-f8d9e07c781ec97e: crates/bench/benches/perf.rs

crates/bench/benches/perf.rs:
