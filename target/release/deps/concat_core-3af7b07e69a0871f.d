/root/repo/target/release/deps/concat_core-3af7b07e69a0871f.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/release/deps/libconcat_core-3af7b07e69a0871f.rlib: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/release/deps/libconcat_core-3af7b07e69a0871f.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
