/root/repo/target/release/deps/ablation-10608b2f8b29c70b.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-10608b2f8b29c70b: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
