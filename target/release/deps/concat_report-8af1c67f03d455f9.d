/root/repo/target/release/deps/concat_report-8af1c67f03d455f9.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/release/deps/libconcat_report-8af1c67f03d455f9.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/release/deps/libconcat_report-8af1c67f03d455f9.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
