/root/repo/target/release/deps/concat_mutation-abac59819c164211.d: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

/root/repo/target/release/deps/libconcat_mutation-abac59819c164211.rlib: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

/root/repo/target/release/deps/libconcat_mutation-abac59819c164211.rmeta: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

crates/mutation/src/lib.rs:
crates/mutation/src/analysis.rs:
crates/mutation/src/enumerate.rs:
crates/mutation/src/fault.rs:
crates/mutation/src/inventory.rs:
crates/mutation/src/matrix.rs:
crates/mutation/src/operators.rs:
