/root/repo/target/release/deps/concat_components-42d43f37a441bf2a.d: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

/root/repo/target/release/deps/libconcat_components-42d43f37a441bf2a.rlib: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

/root/repo/target/release/deps/libconcat_components-42d43f37a441bf2a.rmeta: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

crates/components/src/lib.rs:
crates/components/src/arena.rs:
crates/components/src/oblist.rs:
crates/components/src/product.rs:
crates/components/src/sortable.rs:
crates/components/src/stack.rs:
crates/components/src/stockdb.rs:
crates/components/src/typed.rs:
