/root/repo/target/release/deps/concat_tspec-ba2d39f6a4a30ec4.d: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

/root/repo/target/release/deps/libconcat_tspec-ba2d39f6a4a30ec4.rlib: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

/root/repo/target/release/deps/libconcat_tspec-ba2d39f6a4a30ec4.rmeta: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

crates/tspec/src/lib.rs:
crates/tspec/src/builder.rs:
crates/tspec/src/domain.rs:
crates/tspec/src/format/mod.rs:
crates/tspec/src/format/lexer.rs:
crates/tspec/src/format/parser.rs:
crates/tspec/src/format/printer.rs:
crates/tspec/src/lint.rs:
crates/tspec/src/spec.rs:
