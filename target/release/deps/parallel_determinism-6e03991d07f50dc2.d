/root/repo/target/release/deps/parallel_determinism-6e03991d07f50dc2.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-6e03991d07f50dc2: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
