/root/repo/target/release/deps/concat_bit-e1d2e0f02f8d26ca.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/release/deps/libconcat_bit-e1d2e0f02f8d26ca.rlib: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/release/deps/libconcat_bit-e1d2e0f02f8d26ca.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
