/root/repo/target/release/deps/concat_tfm-7afe75ba7805538b.d: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

/root/repo/target/release/deps/libconcat_tfm-7afe75ba7805538b.rlib: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

/root/repo/target/release/deps/libconcat_tfm-7afe75ba7805538b.rmeta: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

crates/tfm/src/lib.rs:
crates/tfm/src/dot.rs:
crates/tfm/src/graph.rs:
crates/tfm/src/metrics.rs:
crates/tfm/src/paths.rs:
