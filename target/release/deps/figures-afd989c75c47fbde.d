/root/repo/target/release/deps/figures-afd989c75c47fbde.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-afd989c75c47fbde: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
