/root/repo/target/release/deps/concat_components-68988f988bf23f0d.d: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

/root/repo/target/release/deps/libconcat_components-68988f988bf23f0d.rlib: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

/root/repo/target/release/deps/libconcat_components-68988f988bf23f0d.rmeta: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

crates/components/src/lib.rs:
crates/components/src/arena.rs:
crates/components/src/oblist.rs:
crates/components/src/product.rs:
crates/components/src/sortable.rs:
crates/components/src/stack.rs:
crates/components/src/stockdb.rs:
crates/components/src/typed.rs:
