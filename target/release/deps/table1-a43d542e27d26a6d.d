/root/repo/target/release/deps/table1-a43d542e27d26a6d.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-a43d542e27d26a6d: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
