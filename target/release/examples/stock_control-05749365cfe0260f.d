/root/repo/target/release/examples/stock_control-05749365cfe0260f.d: examples/stock_control.rs

/root/repo/target/release/examples/stock_control-05749365cfe0260f: examples/stock_control.rs

examples/stock_control.rs:
