/root/repo/target/release/examples/telemetry-fbcb6230dee6b05d.d: examples/telemetry.rs

/root/repo/target/release/examples/telemetry-fbcb6230dee6b05d: examples/telemetry.rs

examples/telemetry.rs:
