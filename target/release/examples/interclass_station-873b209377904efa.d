/root/repo/target/release/examples/interclass_station-873b209377904efa.d: examples/interclass_station.rs

/root/repo/target/release/examples/interclass_station-873b209377904efa: examples/interclass_station.rs

examples/interclass_station.rs:
