/root/repo/target/release/examples/quickstart-6b595c0dcb6db058.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6b595c0dcb6db058: examples/quickstart.rs

examples/quickstart.rs:
