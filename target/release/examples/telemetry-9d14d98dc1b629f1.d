/root/repo/target/release/examples/telemetry-9d14d98dc1b629f1.d: examples/telemetry.rs

/root/repo/target/release/examples/telemetry-9d14d98dc1b629f1: examples/telemetry.rs

examples/telemetry.rs:
