/root/repo/target/release/examples/mutation_demo-39f0b5f36404bd4c.d: examples/mutation_demo.rs

/root/repo/target/release/examples/mutation_demo-39f0b5f36404bd4c: examples/mutation_demo.rs

examples/mutation_demo.rs:
