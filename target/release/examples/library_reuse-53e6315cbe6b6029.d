/root/repo/target/release/examples/library_reuse-53e6315cbe6b6029.d: examples/library_reuse.rs

/root/repo/target/release/examples/library_reuse-53e6315cbe6b6029: examples/library_reuse.rs

examples/library_reuse.rs:
