/root/repo/target/release/examples/stock_control-d7eede01a57927c1.d: examples/stock_control.rs

/root/repo/target/release/examples/stock_control-d7eede01a57927c1: examples/stock_control.rs

examples/stock_control.rs:
