/root/repo/target/release/examples/interclass_station-830582e7fb5fe717.d: examples/interclass_station.rs

/root/repo/target/release/examples/interclass_station-830582e7fb5fe717: examples/interclass_station.rs

examples/interclass_station.rs:
