/root/repo/target/release/examples/library_reuse-75356696be42abbe.d: examples/library_reuse.rs

/root/repo/target/release/examples/library_reuse-75356696be42abbe: examples/library_reuse.rs

examples/library_reuse.rs:
