/root/repo/target/release/examples/quickstart-5a54e75115600699.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5a54e75115600699: examples/quickstart.rs

examples/quickstart.rs:
