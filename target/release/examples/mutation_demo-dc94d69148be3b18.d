/root/repo/target/release/examples/mutation_demo-dc94d69148be3b18.d: examples/mutation_demo.rs

/root/repo/target/release/examples/mutation_demo-dc94d69148be3b18: examples/mutation_demo.rs

examples/mutation_demo.rs:
