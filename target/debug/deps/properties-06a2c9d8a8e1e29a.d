/root/repo/target/debug/deps/properties-06a2c9d8a8e1e29a.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-06a2c9d8a8e1e29a.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
