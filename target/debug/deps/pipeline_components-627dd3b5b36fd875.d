/root/repo/target/debug/deps/pipeline_components-627dd3b5b36fd875.d: tests/pipeline_components.rs

/root/repo/target/debug/deps/pipeline_components-627dd3b5b36fd875: tests/pipeline_components.rs

tests/pipeline_components.rs:
