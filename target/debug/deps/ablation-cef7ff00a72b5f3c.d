/root/repo/target/debug/deps/ablation-cef7ff00a72b5f3c.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-cef7ff00a72b5f3c.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
