/root/repo/target/debug/deps/concat_bench-b31487359534b189.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconcat_bench-b31487359534b189.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconcat_bench-b31487359534b189.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
