/root/repo/target/debug/deps/criteria-d9d90eec3192a411.d: crates/bench/benches/criteria.rs Cargo.toml

/root/repo/target/debug/deps/libcriteria-d9d90eec3192a411.rmeta: crates/bench/benches/criteria.rs Cargo.toml

crates/bench/benches/criteria.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
