/root/repo/target/debug/deps/concat_mutation-59cbb5d32105db50.d: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_mutation-59cbb5d32105db50.rmeta: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs Cargo.toml

crates/mutation/src/lib.rs:
crates/mutation/src/analysis.rs:
crates/mutation/src/enumerate.rs:
crates/mutation/src/fault.rs:
crates/mutation/src/inventory.rs:
crates/mutation/src/matrix.rs:
crates/mutation/src/operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
