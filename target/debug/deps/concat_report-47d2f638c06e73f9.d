/root/repo/target/debug/deps/concat_report-47d2f638c06e73f9.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/debug/deps/concat_report-47d2f638c06e73f9: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
