/root/repo/target/debug/deps/table3-4aadfa9cdfaf2185.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-4aadfa9cdfaf2185.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
