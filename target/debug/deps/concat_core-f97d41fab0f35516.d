/root/repo/target/debug/deps/concat_core-f97d41fab0f35516.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-f97d41fab0f35516.rlib: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-f97d41fab0f35516.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
