/root/repo/target/debug/deps/concat_tspec-5b7361ff690483c0.d: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_tspec-5b7361ff690483c0.rmeta: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs Cargo.toml

crates/tspec/src/lib.rs:
crates/tspec/src/builder.rs:
crates/tspec/src/domain.rs:
crates/tspec/src/format/mod.rs:
crates/tspec/src/format/lexer.rs:
crates/tspec/src/format/parser.rs:
crates/tspec/src/format/printer.rs:
crates/tspec/src/lint.rs:
crates/tspec/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
