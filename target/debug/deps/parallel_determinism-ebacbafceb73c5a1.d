/root/repo/target/debug/deps/parallel_determinism-ebacbafceb73c5a1.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-ebacbafceb73c5a1.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
