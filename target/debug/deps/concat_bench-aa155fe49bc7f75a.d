/root/repo/target/debug/deps/concat_bench-aa155fe49bc7f75a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconcat_bench-aa155fe49bc7f75a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconcat_bench-aa155fe49bc7f75a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
