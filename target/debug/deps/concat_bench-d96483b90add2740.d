/root/repo/target/debug/deps/concat_bench-d96483b90add2740.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bench-d96483b90add2740.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
