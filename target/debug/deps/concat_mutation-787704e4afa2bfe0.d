/root/repo/target/debug/deps/concat_mutation-787704e4afa2bfe0.d: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

/root/repo/target/debug/deps/libconcat_mutation-787704e4afa2bfe0.rlib: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

/root/repo/target/debug/deps/libconcat_mutation-787704e4afa2bfe0.rmeta: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

crates/mutation/src/lib.rs:
crates/mutation/src/analysis.rs:
crates/mutation/src/enumerate.rs:
crates/mutation/src/fault.rs:
crates/mutation/src/inventory.rs:
crates/mutation/src/matrix.rs:
crates/mutation/src/operators.rs:
