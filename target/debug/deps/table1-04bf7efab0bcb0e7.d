/root/repo/target/debug/deps/table1-04bf7efab0bcb0e7.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-04bf7efab0bcb0e7.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
