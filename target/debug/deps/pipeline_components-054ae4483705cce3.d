/root/repo/target/debug/deps/pipeline_components-054ae4483705cce3.d: tests/pipeline_components.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_components-054ae4483705cce3.rmeta: tests/pipeline_components.rs Cargo.toml

tests/pipeline_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
