/root/repo/target/debug/deps/concat_components-52a3f4106a033fa9.d: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_components-52a3f4106a033fa9.rmeta: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs Cargo.toml

crates/components/src/lib.rs:
crates/components/src/arena.rs:
crates/components/src/oblist.rs:
crates/components/src/product.rs:
crates/components/src/sortable.rs:
crates/components/src/stack.rs:
crates/components/src/stockdb.rs:
crates/components/src/typed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
