/root/repo/target/debug/deps/parallel_determinism-37a5cbef86e12899.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-37a5cbef86e12899: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
