/root/repo/target/debug/deps/concat-ceac79f3064d7d6f.d: src/lib.rs

/root/repo/target/debug/deps/libconcat-ceac79f3064d7d6f.rlib: src/lib.rs

/root/repo/target/debug/deps/libconcat-ceac79f3064d7d6f.rmeta: src/lib.rs

src/lib.rs:
