/root/repo/target/debug/deps/pipeline_components-db96be610ecb1e08.d: tests/pipeline_components.rs

/root/repo/target/debug/deps/pipeline_components-db96be610ecb1e08: tests/pipeline_components.rs

tests/pipeline_components.rs:
