/root/repo/target/debug/deps/concat_obs-849f9b329c27e80f.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_obs-849f9b329c27e80f.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
