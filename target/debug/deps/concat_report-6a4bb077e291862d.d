/root/repo/target/debug/deps/concat_report-6a4bb077e291862d.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/debug/deps/concat_report-6a4bb077e291862d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
