/root/repo/target/debug/deps/concat_bench-b1e90572e3c5c16f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bench-b1e90572e3c5c16f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
