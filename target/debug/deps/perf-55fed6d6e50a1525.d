/root/repo/target/debug/deps/perf-55fed6d6e50a1525.d: crates/bench/benches/perf.rs Cargo.toml

/root/repo/target/debug/deps/libperf-55fed6d6e50a1525.rmeta: crates/bench/benches/perf.rs Cargo.toml

crates/bench/benches/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
