/root/repo/target/debug/deps/telemetry_integration-f0b33aa5437d9e1f.d: crates/obs/tests/telemetry_integration.rs

/root/repo/target/debug/deps/telemetry_integration-f0b33aa5437d9e1f: crates/obs/tests/telemetry_integration.rs

crates/obs/tests/telemetry_integration.rs:
