/root/repo/target/debug/deps/concat_obs-c11f2718d48d36d7.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_obs-c11f2718d48d36d7.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
