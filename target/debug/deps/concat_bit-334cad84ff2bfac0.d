/root/repo/target/debug/deps/concat_bit-334cad84ff2bfac0.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/debug/deps/libconcat_bit-334cad84ff2bfac0.rlib: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/debug/deps/libconcat_bit-334cad84ff2bfac0.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
