/root/repo/target/debug/deps/concat_obs-e5a9be1c27aa37f1.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_obs-e5a9be1c27aa37f1.rlib: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_obs-e5a9be1c27aa37f1.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
