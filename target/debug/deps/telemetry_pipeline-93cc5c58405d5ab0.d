/root/repo/target/debug/deps/telemetry_pipeline-93cc5c58405d5ab0.d: tests/telemetry_pipeline.rs

/root/repo/target/debug/deps/telemetry_pipeline-93cc5c58405d5ab0: tests/telemetry_pipeline.rs

tests/telemetry_pipeline.rs:
