/root/repo/target/debug/deps/concat_report-f8cb6bccc06cf0e1.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

/root/repo/target/debug/deps/libconcat_report-f8cb6bccc06cf0e1.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

/root/repo/target/debug/deps/libconcat_report-f8cb6bccc06cf0e1.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
