/root/repo/target/debug/deps/concat_runtime-f37e20f6bd822d71.d: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/concat_runtime-f37e20f6bd822d71: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/component.rs:
crates/runtime/src/error.rs:
crates/runtime/src/harden.rs:
crates/runtime/src/literal.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/value.rs:
