/root/repo/target/debug/deps/concat_bit-e53a387327adedc1.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bit-e53a387327adedc1.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs Cargo.toml

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
