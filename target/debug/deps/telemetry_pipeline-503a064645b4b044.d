/root/repo/target/debug/deps/telemetry_pipeline-503a064645b4b044.d: tests/telemetry_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_pipeline-503a064645b4b044.rmeta: tests/telemetry_pipeline.rs Cargo.toml

tests/telemetry_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
