/root/repo/target/debug/deps/figures-df6f8152ee764daf.d: tests/figures.rs

/root/repo/target/debug/deps/figures-df6f8152ee764daf: tests/figures.rs

tests/figures.rs:
