/root/repo/target/debug/deps/concat-78cb21e5d5516c8a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat-78cb21e5d5516c8a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
