/root/repo/target/debug/deps/telemetry_pipeline-e8a86cf6eac05b55.d: tests/telemetry_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_pipeline-e8a86cf6eac05b55.rmeta: tests/telemetry_pipeline.rs Cargo.toml

tests/telemetry_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
