/root/repo/target/debug/deps/concat_tspec-403ab2d530e5a690.d: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

/root/repo/target/debug/deps/libconcat_tspec-403ab2d530e5a690.rlib: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

/root/repo/target/debug/deps/libconcat_tspec-403ab2d530e5a690.rmeta: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

crates/tspec/src/lib.rs:
crates/tspec/src/builder.rs:
crates/tspec/src/domain.rs:
crates/tspec/src/format/mod.rs:
crates/tspec/src/format/lexer.rs:
crates/tspec/src/format/parser.rs:
crates/tspec/src/format/printer.rs:
crates/tspec/src/lint.rs:
crates/tspec/src/spec.rs:
