/root/repo/target/debug/deps/concat-a97408a05266e82d.d: src/lib.rs

/root/repo/target/debug/deps/libconcat-a97408a05266e82d.rlib: src/lib.rs

/root/repo/target/debug/deps/libconcat-a97408a05266e82d.rmeta: src/lib.rs

src/lib.rs:
