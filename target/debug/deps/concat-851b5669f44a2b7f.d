/root/repo/target/debug/deps/concat-851b5669f44a2b7f.d: src/lib.rs

/root/repo/target/debug/deps/libconcat-851b5669f44a2b7f.rlib: src/lib.rs

/root/repo/target/debug/deps/libconcat-851b5669f44a2b7f.rmeta: src/lib.rs

src/lib.rs:
