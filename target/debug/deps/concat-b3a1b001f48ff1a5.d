/root/repo/target/debug/deps/concat-b3a1b001f48ff1a5.d: src/lib.rs

/root/repo/target/debug/deps/concat-b3a1b001f48ff1a5: src/lib.rs

src/lib.rs:
