/root/repo/target/debug/deps/extensions-b4df92577066313a.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-b4df92577066313a: tests/extensions.rs

tests/extensions.rs:
