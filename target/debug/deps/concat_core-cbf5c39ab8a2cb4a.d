/root/repo/target/debug/deps/concat_core-cbf5c39ab8a2cb4a.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/concat_core-cbf5c39ab8a2cb4a: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
