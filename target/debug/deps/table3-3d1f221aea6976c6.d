/root/repo/target/debug/deps/table3-3d1f221aea6976c6.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-3d1f221aea6976c6.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
