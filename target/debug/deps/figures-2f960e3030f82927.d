/root/repo/target/debug/deps/figures-2f960e3030f82927.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-2f960e3030f82927.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
