/root/repo/target/debug/deps/concat_tspec-b2422ee8bdcba302.d: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

/root/repo/target/debug/deps/concat_tspec-b2422ee8bdcba302: crates/tspec/src/lib.rs crates/tspec/src/builder.rs crates/tspec/src/domain.rs crates/tspec/src/format/mod.rs crates/tspec/src/format/lexer.rs crates/tspec/src/format/parser.rs crates/tspec/src/format/printer.rs crates/tspec/src/lint.rs crates/tspec/src/spec.rs

crates/tspec/src/lib.rs:
crates/tspec/src/builder.rs:
crates/tspec/src/domain.rs:
crates/tspec/src/format/mod.rs:
crates/tspec/src/format/lexer.rs:
crates/tspec/src/format/parser.rs:
crates/tspec/src/format/printer.rs:
crates/tspec/src/lint.rs:
crates/tspec/src/spec.rs:
