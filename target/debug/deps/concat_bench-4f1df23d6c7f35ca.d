/root/repo/target/debug/deps/concat_bench-4f1df23d6c7f35ca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconcat_bench-4f1df23d6c7f35ca.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconcat_bench-4f1df23d6c7f35ca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
