/root/repo/target/debug/deps/concat_tfm-7bcf4af17d34aaed.d: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

/root/repo/target/debug/deps/concat_tfm-7bcf4af17d34aaed: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

crates/tfm/src/lib.rs:
crates/tfm/src/dot.rs:
crates/tfm/src/graph.rs:
crates/tfm/src/metrics.rs:
crates/tfm/src/paths.rs:
