/root/repo/target/debug/deps/reuse_flows-ac867e50e1ef3d07.d: tests/reuse_flows.rs

/root/repo/target/debug/deps/reuse_flows-ac867e50e1ef3d07: tests/reuse_flows.rs

tests/reuse_flows.rs:
