/root/repo/target/debug/deps/concat_core-157215c53311d4b9.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-157215c53311d4b9.rlib: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-157215c53311d4b9.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
