/root/repo/target/debug/deps/concat_core-4720334deec2b82d.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/concat_core-4720334deec2b82d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
