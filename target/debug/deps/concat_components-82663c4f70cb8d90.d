/root/repo/target/debug/deps/concat_components-82663c4f70cb8d90.d: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

/root/repo/target/debug/deps/concat_components-82663c4f70cb8d90: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

crates/components/src/lib.rs:
crates/components/src/arena.rs:
crates/components/src/oblist.rs:
crates/components/src/product.rs:
crates/components/src/sortable.rs:
crates/components/src/stack.rs:
crates/components/src/stockdb.rs:
crates/components/src/typed.rs:
