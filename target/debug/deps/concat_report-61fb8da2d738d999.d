/root/repo/target/debug/deps/concat_report-61fb8da2d738d999.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_report-61fb8da2d738d999.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs Cargo.toml

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
