/root/repo/target/debug/deps/concat-08fa590544787fe2.d: src/lib.rs

/root/repo/target/debug/deps/concat-08fa590544787fe2: src/lib.rs

src/lib.rs:
