/root/repo/target/debug/deps/concat_core-be804f103bb8905f.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/concat_core-be804f103bb8905f: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
