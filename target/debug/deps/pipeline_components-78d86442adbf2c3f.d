/root/repo/target/debug/deps/pipeline_components-78d86442adbf2c3f.d: tests/pipeline_components.rs

/root/repo/target/debug/deps/pipeline_components-78d86442adbf2c3f: tests/pipeline_components.rs

tests/pipeline_components.rs:
