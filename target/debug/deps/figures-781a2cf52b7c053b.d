/root/repo/target/debug/deps/figures-781a2cf52b7c053b.d: tests/figures.rs

/root/repo/target/debug/deps/figures-781a2cf52b7c053b: tests/figures.rs

tests/figures.rs:
