/root/repo/target/debug/deps/extensions-33fca7caa11a2e01.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-33fca7caa11a2e01.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
