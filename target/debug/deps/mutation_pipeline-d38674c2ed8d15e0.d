/root/repo/target/debug/deps/mutation_pipeline-d38674c2ed8d15e0.d: tests/mutation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmutation_pipeline-d38674c2ed8d15e0.rmeta: tests/mutation_pipeline.rs Cargo.toml

tests/mutation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
