/root/repo/target/debug/deps/telemetry_pipeline-9421aaa111701c5b.d: tests/telemetry_pipeline.rs

/root/repo/target/debug/deps/telemetry_pipeline-9421aaa111701c5b: tests/telemetry_pipeline.rs

tests/telemetry_pipeline.rs:
