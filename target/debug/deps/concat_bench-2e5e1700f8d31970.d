/root/repo/target/debug/deps/concat_bench-2e5e1700f8d31970.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/concat_bench-2e5e1700f8d31970: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
