/root/repo/target/debug/deps/concat_core-4208d760de59073a.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_core-4208d760de59073a.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
