/root/repo/target/debug/deps/chaos-e9e2af4ce7175529.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-e9e2af4ce7175529.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
