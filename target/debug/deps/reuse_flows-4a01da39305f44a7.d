/root/repo/target/debug/deps/reuse_flows-4a01da39305f44a7.d: tests/reuse_flows.rs Cargo.toml

/root/repo/target/debug/deps/libreuse_flows-4a01da39305f44a7.rmeta: tests/reuse_flows.rs Cargo.toml

tests/reuse_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
