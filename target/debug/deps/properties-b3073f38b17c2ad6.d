/root/repo/target/debug/deps/properties-b3073f38b17c2ad6.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b3073f38b17c2ad6: tests/properties.rs

tests/properties.rs:
