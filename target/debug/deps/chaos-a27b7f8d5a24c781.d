/root/repo/target/debug/deps/chaos-a27b7f8d5a24c781.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-a27b7f8d5a24c781: tests/chaos.rs

tests/chaos.rs:
