/root/repo/target/debug/deps/telemetry_integration-e338de8947b89f9a.d: crates/obs/tests/telemetry_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_integration-e338de8947b89f9a.rmeta: crates/obs/tests/telemetry_integration.rs Cargo.toml

crates/obs/tests/telemetry_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
