/root/repo/target/debug/deps/mutation_pipeline-5bcaa35d9aedf6eb.d: tests/mutation_pipeline.rs

/root/repo/target/debug/deps/mutation_pipeline-5bcaa35d9aedf6eb: tests/mutation_pipeline.rs

tests/mutation_pipeline.rs:
