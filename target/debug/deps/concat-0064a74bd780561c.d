/root/repo/target/debug/deps/concat-0064a74bd780561c.d: src/lib.rs

/root/repo/target/debug/deps/concat-0064a74bd780561c: src/lib.rs

src/lib.rs:
