/root/repo/target/debug/deps/concat_obs-3e106d31caf132ca.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_obs-3e106d31caf132ca.rlib: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_obs-3e106d31caf132ca.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
