/root/repo/target/debug/deps/concat_report-3bb6d0c5a11a0962.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_report-3bb6d0c5a11a0962.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs Cargo.toml

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
