/root/repo/target/debug/deps/concat-5173be3c9b2b9db0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat-5173be3c9b2b9db0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
