/root/repo/target/debug/deps/concat_bench-edd417e609f3a6cb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bench-edd417e609f3a6cb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
