/root/repo/target/debug/deps/concat_bench-d0e6620b1355f456.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/concat_bench-d0e6620b1355f456: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
