/root/repo/target/debug/deps/concat_runtime-380956dc1d8c246a.d: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/libconcat_runtime-380956dc1d8c246a.rlib: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

/root/repo/target/debug/deps/libconcat_runtime-380956dc1d8c246a.rmeta: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs

crates/runtime/src/lib.rs:
crates/runtime/src/component.rs:
crates/runtime/src/error.rs:
crates/runtime/src/harden.rs:
crates/runtime/src/literal.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/value.rs:
