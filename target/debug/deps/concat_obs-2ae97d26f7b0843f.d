/root/repo/target/debug/deps/concat_obs-2ae97d26f7b0843f.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/debug/deps/concat_obs-2ae97d26f7b0843f: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
