/root/repo/target/debug/deps/figures-ab0d85d3afb47361.d: tests/figures.rs

/root/repo/target/debug/deps/figures-ab0d85d3afb47361: tests/figures.rs

tests/figures.rs:
