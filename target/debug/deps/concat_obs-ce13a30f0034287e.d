/root/repo/target/debug/deps/concat_obs-ce13a30f0034287e.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_obs-ce13a30f0034287e.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
