/root/repo/target/debug/deps/concat_runtime-13d87d8b4909bc18.d: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_runtime-13d87d8b4909bc18.rmeta: crates/runtime/src/lib.rs crates/runtime/src/component.rs crates/runtime/src/error.rs crates/runtime/src/harden.rs crates/runtime/src/literal.rs crates/runtime/src/rng.rs crates/runtime/src/value.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/component.rs:
crates/runtime/src/error.rs:
crates/runtime/src/harden.rs:
crates/runtime/src/literal.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
