/root/repo/target/debug/deps/concat_report-4c684302baa80f26.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_report-4c684302baa80f26.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_report-4c684302baa80f26.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
