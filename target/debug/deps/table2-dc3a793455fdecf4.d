/root/repo/target/debug/deps/table2-dc3a793455fdecf4.d: crates/bench/benches/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-dc3a793455fdecf4.rmeta: crates/bench/benches/table2.rs Cargo.toml

crates/bench/benches/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
