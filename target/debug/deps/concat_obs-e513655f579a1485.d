/root/repo/target/debug/deps/concat_obs-e513655f579a1485.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

/root/repo/target/debug/deps/concat_obs-e513655f579a1485: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
