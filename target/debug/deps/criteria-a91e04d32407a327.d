/root/repo/target/debug/deps/criteria-a91e04d32407a327.d: crates/bench/benches/criteria.rs Cargo.toml

/root/repo/target/debug/deps/libcriteria-a91e04d32407a327.rmeta: crates/bench/benches/criteria.rs Cargo.toml

crates/bench/benches/criteria.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
