/root/repo/target/debug/deps/reuse_flows-9b06d837d4a76759.d: tests/reuse_flows.rs Cargo.toml

/root/repo/target/debug/deps/libreuse_flows-9b06d837d4a76759.rmeta: tests/reuse_flows.rs Cargo.toml

tests/reuse_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
