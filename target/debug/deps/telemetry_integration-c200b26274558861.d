/root/repo/target/debug/deps/telemetry_integration-c200b26274558861.d: crates/obs/tests/telemetry_integration.rs

/root/repo/target/debug/deps/telemetry_integration-c200b26274558861: crates/obs/tests/telemetry_integration.rs

crates/obs/tests/telemetry_integration.rs:
