/root/repo/target/debug/deps/mutation_pipeline-f399cad32b8a207b.d: tests/mutation_pipeline.rs

/root/repo/target/debug/deps/mutation_pipeline-f399cad32b8a207b: tests/mutation_pipeline.rs

tests/mutation_pipeline.rs:
