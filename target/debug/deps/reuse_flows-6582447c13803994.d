/root/repo/target/debug/deps/reuse_flows-6582447c13803994.d: tests/reuse_flows.rs

/root/repo/target/debug/deps/reuse_flows-6582447c13803994: tests/reuse_flows.rs

tests/reuse_flows.rs:
