/root/repo/target/debug/deps/concat_report-f3677c6462862e1d.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_report-f3677c6462862e1d.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

/root/repo/target/debug/deps/libconcat_report-f3677c6462862e1d.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs crates/report/src/telemetry.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
crates/report/src/telemetry.rs:
