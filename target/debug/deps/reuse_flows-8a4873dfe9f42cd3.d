/root/repo/target/debug/deps/reuse_flows-8a4873dfe9f42cd3.d: tests/reuse_flows.rs

/root/repo/target/debug/deps/reuse_flows-8a4873dfe9f42cd3: tests/reuse_flows.rs

tests/reuse_flows.rs:
