/root/repo/target/debug/deps/properties-7a985ce52fd64280.d: tests/properties.rs

/root/repo/target/debug/deps/properties-7a985ce52fd64280: tests/properties.rs

tests/properties.rs:
