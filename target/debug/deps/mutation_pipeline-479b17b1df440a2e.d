/root/repo/target/debug/deps/mutation_pipeline-479b17b1df440a2e.d: tests/mutation_pipeline.rs

/root/repo/target/debug/deps/mutation_pipeline-479b17b1df440a2e: tests/mutation_pipeline.rs

tests/mutation_pipeline.rs:
