/root/repo/target/debug/deps/properties-9eb9fe9692254b25.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9eb9fe9692254b25: tests/properties.rs

tests/properties.rs:
