/root/repo/target/debug/deps/concat_driver-0d130f82477a4cd0.d: crates/driver/src/lib.rs crates/driver/src/generator.rs crates/driver/src/history.rs crates/driver/src/inputs.rs crates/driver/src/log.rs crates/driver/src/oracle.rs crates/driver/src/persist.rs crates/driver/src/render.rs crates/driver/src/retarget.rs crates/driver/src/runner.rs crates/driver/src/selection.rs crates/driver/src/testcase.rs

/root/repo/target/debug/deps/concat_driver-0d130f82477a4cd0: crates/driver/src/lib.rs crates/driver/src/generator.rs crates/driver/src/history.rs crates/driver/src/inputs.rs crates/driver/src/log.rs crates/driver/src/oracle.rs crates/driver/src/persist.rs crates/driver/src/render.rs crates/driver/src/retarget.rs crates/driver/src/runner.rs crates/driver/src/selection.rs crates/driver/src/testcase.rs

crates/driver/src/lib.rs:
crates/driver/src/generator.rs:
crates/driver/src/history.rs:
crates/driver/src/inputs.rs:
crates/driver/src/log.rs:
crates/driver/src/oracle.rs:
crates/driver/src/persist.rs:
crates/driver/src/render.rs:
crates/driver/src/retarget.rs:
crates/driver/src/runner.rs:
crates/driver/src/selection.rs:
crates/driver/src/testcase.rs:
