/root/repo/target/debug/deps/table1-55ee6aeb6fb4aa24.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-55ee6aeb6fb4aa24.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
