/root/repo/target/debug/deps/telemetry_integration-238e176ad713e044.d: crates/obs/tests/telemetry_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_integration-238e176ad713e044.rmeta: crates/obs/tests/telemetry_integration.rs Cargo.toml

crates/obs/tests/telemetry_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
