/root/repo/target/debug/deps/extensions-74508a1d6a053359.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-74508a1d6a053359.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
