/root/repo/target/debug/deps/concat_mutation-60004c17b10c80e1.d: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_mutation-60004c17b10c80e1.rmeta: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs Cargo.toml

crates/mutation/src/lib.rs:
crates/mutation/src/analysis.rs:
crates/mutation/src/enumerate.rs:
crates/mutation/src/fault.rs:
crates/mutation/src/inventory.rs:
crates/mutation/src/matrix.rs:
crates/mutation/src/operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
