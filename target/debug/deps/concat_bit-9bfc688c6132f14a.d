/root/repo/target/debug/deps/concat_bit-9bfc688c6132f14a.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bit-9bfc688c6132f14a.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs Cargo.toml

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
