/root/repo/target/debug/deps/concat_core-394ce02579c086e3.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-394ce02579c086e3.rlib: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-394ce02579c086e3.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
