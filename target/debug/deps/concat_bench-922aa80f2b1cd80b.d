/root/repo/target/debug/deps/concat_bench-922aa80f2b1cd80b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bench-922aa80f2b1cd80b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
