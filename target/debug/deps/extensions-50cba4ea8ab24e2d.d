/root/repo/target/debug/deps/extensions-50cba4ea8ab24e2d.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-50cba4ea8ab24e2d: tests/extensions.rs

tests/extensions.rs:
