/root/repo/target/debug/deps/figures-74ef63933f652cff.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-74ef63933f652cff.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
