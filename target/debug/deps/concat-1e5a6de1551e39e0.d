/root/repo/target/debug/deps/concat-1e5a6de1551e39e0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconcat-1e5a6de1551e39e0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
