/root/repo/target/debug/deps/extensions-d12de72668154c1d.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-d12de72668154c1d: tests/extensions.rs

tests/extensions.rs:
