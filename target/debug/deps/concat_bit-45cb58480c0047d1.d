/root/repo/target/debug/deps/concat_bit-45cb58480c0047d1.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/debug/deps/concat_bit-45cb58480c0047d1: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
