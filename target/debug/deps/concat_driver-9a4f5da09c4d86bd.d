/root/repo/target/debug/deps/concat_driver-9a4f5da09c4d86bd.d: crates/driver/src/lib.rs crates/driver/src/generator.rs crates/driver/src/history.rs crates/driver/src/inputs.rs crates/driver/src/log.rs crates/driver/src/oracle.rs crates/driver/src/persist.rs crates/driver/src/render.rs crates/driver/src/retarget.rs crates/driver/src/runner.rs crates/driver/src/selection.rs crates/driver/src/testcase.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_driver-9a4f5da09c4d86bd.rmeta: crates/driver/src/lib.rs crates/driver/src/generator.rs crates/driver/src/history.rs crates/driver/src/inputs.rs crates/driver/src/log.rs crates/driver/src/oracle.rs crates/driver/src/persist.rs crates/driver/src/render.rs crates/driver/src/retarget.rs crates/driver/src/runner.rs crates/driver/src/selection.rs crates/driver/src/testcase.rs Cargo.toml

crates/driver/src/lib.rs:
crates/driver/src/generator.rs:
crates/driver/src/history.rs:
crates/driver/src/inputs.rs:
crates/driver/src/log.rs:
crates/driver/src/oracle.rs:
crates/driver/src/persist.rs:
crates/driver/src/render.rs:
crates/driver/src/retarget.rs:
crates/driver/src/runner.rs:
crates/driver/src/selection.rs:
crates/driver/src/testcase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
