/root/repo/target/debug/deps/perf-bbd27d98f8b0f35c.d: crates/bench/benches/perf.rs Cargo.toml

/root/repo/target/debug/deps/libperf-bbd27d98f8b0f35c.rmeta: crates/bench/benches/perf.rs Cargo.toml

crates/bench/benches/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
