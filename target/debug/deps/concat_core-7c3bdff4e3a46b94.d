/root/repo/target/debug/deps/concat_core-7c3bdff4e3a46b94.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-7c3bdff4e3a46b94.rlib: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

/root/repo/target/debug/deps/libconcat_core-7c3bdff4e3a46b94.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
