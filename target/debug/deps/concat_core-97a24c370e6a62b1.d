/root/repo/target/debug/deps/concat_core-97a24c370e6a62b1.d: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_core-97a24c370e6a62b1.rmeta: crates/core/src/lib.rs crates/core/src/assess.rs crates/core/src/bundle.rs crates/core/src/consumer.rs crates/core/src/interclass.rs crates/core/src/producer.rs crates/core/src/regression.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/assess.rs:
crates/core/src/bundle.rs:
crates/core/src/consumer.rs:
crates/core/src/interclass.rs:
crates/core/src/producer.rs:
crates/core/src/regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
