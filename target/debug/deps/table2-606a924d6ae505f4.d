/root/repo/target/debug/deps/table2-606a924d6ae505f4.d: crates/bench/benches/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-606a924d6ae505f4.rmeta: crates/bench/benches/table2.rs Cargo.toml

crates/bench/benches/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
