/root/repo/target/debug/deps/concat_bit-99b9cf3bd54aa483.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_bit-99b9cf3bd54aa483.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs Cargo.toml

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
