/root/repo/target/debug/deps/pipeline_components-f17076540d18b1b9.d: tests/pipeline_components.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_components-f17076540d18b1b9.rmeta: tests/pipeline_components.rs Cargo.toml

tests/pipeline_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
