/root/repo/target/debug/deps/figures-7ddf5a5c506bee12.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-7ddf5a5c506bee12.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
