/root/repo/target/debug/deps/concat_tfm-9bc8219da72bcf89.d: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

/root/repo/target/debug/deps/libconcat_tfm-9bc8219da72bcf89.rlib: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

/root/repo/target/debug/deps/libconcat_tfm-9bc8219da72bcf89.rmeta: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs

crates/tfm/src/lib.rs:
crates/tfm/src/dot.rs:
crates/tfm/src/graph.rs:
crates/tfm/src/metrics.rs:
crates/tfm/src/paths.rs:
