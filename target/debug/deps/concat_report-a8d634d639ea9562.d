/root/repo/target/debug/deps/concat_report-a8d634d639ea9562.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

/root/repo/target/debug/deps/libconcat_report-a8d634d639ea9562.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

/root/repo/target/debug/deps/libconcat_report-a8d634d639ea9562.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
