/root/repo/target/debug/deps/concat_tfm-2954b5a202992457.d: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_tfm-2954b5a202992457.rmeta: crates/tfm/src/lib.rs crates/tfm/src/dot.rs crates/tfm/src/graph.rs crates/tfm/src/metrics.rs crates/tfm/src/paths.rs Cargo.toml

crates/tfm/src/lib.rs:
crates/tfm/src/dot.rs:
crates/tfm/src/graph.rs:
crates/tfm/src/metrics.rs:
crates/tfm/src/paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
