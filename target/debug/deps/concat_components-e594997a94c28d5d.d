/root/repo/target/debug/deps/concat_components-e594997a94c28d5d.d: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

/root/repo/target/debug/deps/concat_components-e594997a94c28d5d: crates/components/src/lib.rs crates/components/src/arena.rs crates/components/src/oblist.rs crates/components/src/product.rs crates/components/src/sortable.rs crates/components/src/stack.rs crates/components/src/stockdb.rs crates/components/src/typed.rs

crates/components/src/lib.rs:
crates/components/src/arena.rs:
crates/components/src/oblist.rs:
crates/components/src/product.rs:
crates/components/src/sortable.rs:
crates/components/src/stack.rs:
crates/components/src/stockdb.rs:
crates/components/src/typed.rs:
