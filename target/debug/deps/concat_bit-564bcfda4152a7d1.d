/root/repo/target/debug/deps/concat_bit-564bcfda4152a7d1.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/debug/deps/concat_bit-564bcfda4152a7d1: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
