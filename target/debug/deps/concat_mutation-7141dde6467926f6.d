/root/repo/target/debug/deps/concat_mutation-7141dde6467926f6.d: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

/root/repo/target/debug/deps/libconcat_mutation-7141dde6467926f6.rlib: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

/root/repo/target/debug/deps/libconcat_mutation-7141dde6467926f6.rmeta: crates/mutation/src/lib.rs crates/mutation/src/analysis.rs crates/mutation/src/enumerate.rs crates/mutation/src/fault.rs crates/mutation/src/inventory.rs crates/mutation/src/matrix.rs crates/mutation/src/operators.rs

crates/mutation/src/lib.rs:
crates/mutation/src/analysis.rs:
crates/mutation/src/enumerate.rs:
crates/mutation/src/fault.rs:
crates/mutation/src/inventory.rs:
crates/mutation/src/matrix.rs:
crates/mutation/src/operators.rs:
