/root/repo/target/debug/deps/concat-104df54c3a7725a2.d: src/lib.rs

/root/repo/target/debug/deps/libconcat-104df54c3a7725a2.rlib: src/lib.rs

/root/repo/target/debug/deps/libconcat-104df54c3a7725a2.rmeta: src/lib.rs

src/lib.rs:
