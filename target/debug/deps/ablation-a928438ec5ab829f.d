/root/repo/target/debug/deps/ablation-a928438ec5ab829f.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-a928438ec5ab829f.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
