/root/repo/target/debug/deps/concat_obs-8e153217039b9de8.d: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libconcat_obs-8e153217039b9de8.rmeta: crates/obs/src/lib.rs crates/obs/src/collector.rs crates/obs/src/event.rs crates/obs/src/histogram.rs crates/obs/src/summary.rs crates/obs/src/telemetry.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/collector.rs:
crates/obs/src/event.rs:
crates/obs/src/histogram.rs:
crates/obs/src/summary.rs:
crates/obs/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
