/root/repo/target/debug/deps/concat_bench-d65345ad50b60b3e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/concat_bench-d65345ad50b60b3e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
