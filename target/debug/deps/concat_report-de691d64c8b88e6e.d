/root/repo/target/debug/deps/concat_report-de691d64c8b88e6e.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

/root/repo/target/debug/deps/concat_report-de691d64c8b88e6e: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/mutation_tables.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/mutation_tables.rs:
crates/report/src/table.rs:
