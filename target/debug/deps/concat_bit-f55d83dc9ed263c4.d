/root/repo/target/debug/deps/concat_bit-f55d83dc9ed263c4.d: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/debug/deps/libconcat_bit-f55d83dc9ed263c4.rlib: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

/root/repo/target/debug/deps/libconcat_bit-f55d83dc9ed263c4.rmeta: crates/bit/src/lib.rs crates/bit/src/assertions.rs crates/bit/src/built_in_test.rs crates/bit/src/control.rs crates/bit/src/report.rs

crates/bit/src/lib.rs:
crates/bit/src/assertions.rs:
crates/bit/src/built_in_test.rs:
crates/bit/src/control.rs:
crates/bit/src/report.rs:
