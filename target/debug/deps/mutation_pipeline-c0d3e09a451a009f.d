/root/repo/target/debug/deps/mutation_pipeline-c0d3e09a451a009f.d: tests/mutation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmutation_pipeline-c0d3e09a451a009f.rmeta: tests/mutation_pipeline.rs Cargo.toml

tests/mutation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
