/root/repo/target/debug/examples/interclass_station-9a2b33f2caf9bf3f.d: examples/interclass_station.rs

/root/repo/target/debug/examples/interclass_station-9a2b33f2caf9bf3f: examples/interclass_station.rs

examples/interclass_station.rs:
