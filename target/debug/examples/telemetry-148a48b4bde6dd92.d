/root/repo/target/debug/examples/telemetry-148a48b4bde6dd92.d: examples/telemetry.rs Cargo.toml

/root/repo/target/debug/examples/libtelemetry-148a48b4bde6dd92.rmeta: examples/telemetry.rs Cargo.toml

examples/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
