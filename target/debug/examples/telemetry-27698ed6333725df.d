/root/repo/target/debug/examples/telemetry-27698ed6333725df.d: examples/telemetry.rs

/root/repo/target/debug/examples/telemetry-27698ed6333725df: examples/telemetry.rs

examples/telemetry.rs:
