/root/repo/target/debug/examples/stock_control-bf72507b86806fdf.d: examples/stock_control.rs Cargo.toml

/root/repo/target/debug/examples/libstock_control-bf72507b86806fdf.rmeta: examples/stock_control.rs Cargo.toml

examples/stock_control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
