/root/repo/target/debug/examples/stock_control-a8b8b5228f2fef07.d: examples/stock_control.rs

/root/repo/target/debug/examples/stock_control-a8b8b5228f2fef07: examples/stock_control.rs

examples/stock_control.rs:
