/root/repo/target/debug/examples/library_reuse-957ff12f10b376a0.d: examples/library_reuse.rs

/root/repo/target/debug/examples/library_reuse-957ff12f10b376a0: examples/library_reuse.rs

examples/library_reuse.rs:
