/root/repo/target/debug/examples/library_reuse-3c99ef3c37f8ccad.d: examples/library_reuse.rs

/root/repo/target/debug/examples/library_reuse-3c99ef3c37f8ccad: examples/library_reuse.rs

examples/library_reuse.rs:
