/root/repo/target/debug/examples/telemetry-cea31381e52533d7.d: examples/telemetry.rs Cargo.toml

/root/repo/target/debug/examples/libtelemetry-cea31381e52533d7.rmeta: examples/telemetry.rs Cargo.toml

examples/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
