/root/repo/target/debug/examples/interclass_station-e7710bf83208c914.d: examples/interclass_station.rs Cargo.toml

/root/repo/target/debug/examples/libinterclass_station-e7710bf83208c914.rmeta: examples/interclass_station.rs Cargo.toml

examples/interclass_station.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
