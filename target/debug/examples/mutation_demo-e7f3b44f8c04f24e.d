/root/repo/target/debug/examples/mutation_demo-e7f3b44f8c04f24e.d: examples/mutation_demo.rs Cargo.toml

/root/repo/target/debug/examples/libmutation_demo-e7f3b44f8c04f24e.rmeta: examples/mutation_demo.rs Cargo.toml

examples/mutation_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
