/root/repo/target/debug/examples/stock_control-c067a0a69b00d3ba.d: examples/stock_control.rs Cargo.toml

/root/repo/target/debug/examples/libstock_control-c067a0a69b00d3ba.rmeta: examples/stock_control.rs Cargo.toml

examples/stock_control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
