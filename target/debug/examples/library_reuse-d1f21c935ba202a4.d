/root/repo/target/debug/examples/library_reuse-d1f21c935ba202a4.d: examples/library_reuse.rs Cargo.toml

/root/repo/target/debug/examples/liblibrary_reuse-d1f21c935ba202a4.rmeta: examples/library_reuse.rs Cargo.toml

examples/library_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
