/root/repo/target/debug/examples/interclass_station-c55ed1f57525e517.d: examples/interclass_station.rs

/root/repo/target/debug/examples/interclass_station-c55ed1f57525e517: examples/interclass_station.rs

examples/interclass_station.rs:
