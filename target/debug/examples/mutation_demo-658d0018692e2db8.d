/root/repo/target/debug/examples/mutation_demo-658d0018692e2db8.d: examples/mutation_demo.rs

/root/repo/target/debug/examples/mutation_demo-658d0018692e2db8: examples/mutation_demo.rs

examples/mutation_demo.rs:
