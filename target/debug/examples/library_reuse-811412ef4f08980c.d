/root/repo/target/debug/examples/library_reuse-811412ef4f08980c.d: examples/library_reuse.rs Cargo.toml

/root/repo/target/debug/examples/liblibrary_reuse-811412ef4f08980c.rmeta: examples/library_reuse.rs Cargo.toml

examples/library_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
