/root/repo/target/debug/examples/mutation_demo-11007394dded6690.d: examples/mutation_demo.rs

/root/repo/target/debug/examples/mutation_demo-11007394dded6690: examples/mutation_demo.rs

examples/mutation_demo.rs:
