/root/repo/target/debug/examples/quickstart-86dd2ce8e752644e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-86dd2ce8e752644e: examples/quickstart.rs

examples/quickstart.rs:
