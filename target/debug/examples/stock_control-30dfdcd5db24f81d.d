/root/repo/target/debug/examples/stock_control-30dfdcd5db24f81d.d: examples/stock_control.rs

/root/repo/target/debug/examples/stock_control-30dfdcd5db24f81d: examples/stock_control.rs

examples/stock_control.rs:
