/root/repo/target/debug/examples/interclass_station-1a81d9bf4a913f70.d: examples/interclass_station.rs Cargo.toml

/root/repo/target/debug/examples/libinterclass_station-1a81d9bf4a913f70.rmeta: examples/interclass_station.rs Cargo.toml

examples/interclass_station.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
