/root/repo/target/debug/examples/quickstart-a71e6d09ca0431f8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a71e6d09ca0431f8: examples/quickstart.rs

examples/quickstart.rs:
