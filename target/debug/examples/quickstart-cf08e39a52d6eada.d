/root/repo/target/debug/examples/quickstart-cf08e39a52d6eada.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-cf08e39a52d6eada.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
