/root/repo/target/debug/examples/mutation_demo-a3674184f7589db6.d: examples/mutation_demo.rs

/root/repo/target/debug/examples/mutation_demo-a3674184f7589db6: examples/mutation_demo.rs

examples/mutation_demo.rs:
