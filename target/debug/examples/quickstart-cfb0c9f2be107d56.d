/root/repo/target/debug/examples/quickstart-cfb0c9f2be107d56.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cfb0c9f2be107d56: examples/quickstart.rs

examples/quickstart.rs:
