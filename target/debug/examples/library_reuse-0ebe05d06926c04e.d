/root/repo/target/debug/examples/library_reuse-0ebe05d06926c04e.d: examples/library_reuse.rs

/root/repo/target/debug/examples/library_reuse-0ebe05d06926c04e: examples/library_reuse.rs

examples/library_reuse.rs:
