/root/repo/target/debug/examples/mutation_demo-b818be92b98ad260.d: examples/mutation_demo.rs Cargo.toml

/root/repo/target/debug/examples/libmutation_demo-b818be92b98ad260.rmeta: examples/mutation_demo.rs Cargo.toml

examples/mutation_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
