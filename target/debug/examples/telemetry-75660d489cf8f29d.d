/root/repo/target/debug/examples/telemetry-75660d489cf8f29d.d: examples/telemetry.rs

/root/repo/target/debug/examples/telemetry-75660d489cf8f29d: examples/telemetry.rs

examples/telemetry.rs:
