/root/repo/target/debug/examples/dbg_chaos-9513547f67fcd42d.d: examples/dbg_chaos.rs

/root/repo/target/debug/examples/dbg_chaos-9513547f67fcd42d: examples/dbg_chaos.rs

examples/dbg_chaos.rs:
