/root/repo/target/debug/examples/stock_control-06c7cb8b221dd4be.d: examples/stock_control.rs

/root/repo/target/debug/examples/stock_control-06c7cb8b221dd4be: examples/stock_control.rs

examples/stock_control.rs:
