/root/repo/target/debug/examples/interclass_station-1bb27501b4a73562.d: examples/interclass_station.rs

/root/repo/target/debug/examples/interclass_station-1bb27501b4a73562: examples/interclass_station.rs

examples/interclass_station.rs:
