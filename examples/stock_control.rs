//! The paper's running example: the warehouse stock control system
//! (Figures 1–3).
//!
//! Shows the `Product` component end to end: the Figure-2 transaction flow
//! model with the use-case path highlighted, the Figure-3 t-spec text, a
//! consumer self-test session against the in-memory stock database, and
//! the Figure-6 C++ driver text Concat would have generated.
//!
//! Run with: `cargo run --example stock_control`

use concat::components::{product_spec, ProductFactory, FIGURE2_SCENARIO};
use concat::core::{Consumer, Producer, SelfTestableBuilder};
use concat::driver::render_cpp_test_case;
use concat::tfm::{enumerate_transactions, to_dot_highlighted};
use concat::tspec::print_tspec;
use std::rc::Rc;

fn main() {
    let spec = product_spec();

    // ------------------------------------------------------------------
    // Figure 3: the t-spec text.
    // ------------------------------------------------------------------
    println!("== Figure 3: t-spec of class Product ==\n");
    println!("{}", print_tspec(&spec));

    // ------------------------------------------------------------------
    // Figure 2: the TFM with the use-case scenario highlighted.
    // ------------------------------------------------------------------
    let transactions = enumerate_transactions(&spec.tfm);
    let scenario = transactions
        .iter()
        .find(|t| {
            let labels: Vec<&str> = t
                .nodes
                .iter()
                .map(|id| spec.tfm.node(*id).label.as_str())
                .collect();
            labels == FIGURE2_SCENARIO
        })
        .expect("the Figure-2 scenario is a transaction of the model");
    println!("== Figure 2: TFM of class Product (scenario highlighted) ==\n");
    println!("{}", to_dot_highlighted(&spec.tfm, scenario));
    println!(
        "The use-case scenario exercises: {}\n",
        scenario.describe(&spec.tfm)
    );

    // ------------------------------------------------------------------
    // Consumer session.
    // ------------------------------------------------------------------
    let bundle = SelfTestableBuilder::new(spec, Rc::new(ProductFactory::new())).build();
    Producer::package(&bundle).expect("coherent packaging");
    let consumer = Consumer::with_seed(1964);
    let report = consumer.self_test(&bundle).expect("generation succeeds");
    println!("== Consumer self-test ==\n{}\n", report.summary());
    println!(
        "(Transactions that hit a database precondition are the paper's \
         'error-recovery' transactions; they are logged, not hidden.)\n"
    );

    // ------------------------------------------------------------------
    // Figure 6: the generated C++ driver for the scenario's test case.
    // ------------------------------------------------------------------
    let case = report
        .suite
        .iter()
        .find(|c| c.node_path == FIGURE2_SCENARIO)
        .expect("a case covers the scenario");
    println!("== Figure 6: generated C++ test case for the scenario ==\n");
    println!("{}", render_cpp_test_case(case));
}
