//! Hierarchical incremental test reuse (paper §3.4.2) on the
//! `CObList` → `CSortableObList` hierarchy.
//!
//! The subclass inherits every base method unmodified and adds five new
//! ones. The transaction-level reuse rule therefore partitions its test
//! suite into:
//!
//! * **skipped** cases — transactions made only of inherited methods,
//!   which the rule says need no re-run (the cost saving…);
//! * **retest** cases — transactions touching new methods.
//!
//! The paper's Table 3 shows the danger of the saving; this example shows
//! the partition itself and runs the reduced suite.
//!
//! Run with: `cargo run --example library_reuse`

use concat::components::{
    sortable_inheritance_map, sortable_inventory, sortable_spec, CSortableObListFactory,
};
use concat::core::{Consumer, Producer, SelfTestableBuilder};
use concat::driver::ReuseDecision;
use concat::mutation::MutationSwitch;
use std::rc::Rc;

fn main() {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .inheritance(sortable_inheritance_map())
    .build();
    Producer::package(&bundle).expect("coherent packaging");

    let consumer = Consumer::with_seed(2001);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    println!(
        "CSortableObList suite: {} transaction(s), {} test case(s)\n",
        suite.stats.transactions,
        suite.len()
    );

    let plan = consumer
        .subclass_plan(&bundle, &suite)
        .expect("bundle carries a map");
    let (skip, retest, obsolete) = plan.counts();
    println!("Reuse plan (transaction-level Harrold rule):");
    println!("  skip (inherited-only transactions): {skip}");
    println!("  retest (touch new methods):         {retest}");
    println!("  obsolete:                           {obsolete}\n");

    println!("Example decisions:");
    for (case_id, decision) in plan.decisions.iter().take(6) {
        let case = suite
            .cases
            .iter()
            .find(|c| c.id == *case_id)
            .expect("case exists");
        let methods: Vec<&str> = case.method_names();
        println!("  TC{case_id:<4} {decision:<22} {}", methods.join(" -> "));
    }
    fn _type_check(d: &ReuseDecision) -> &ReuseDecision {
        d
    }

    // Run only the reduced suite — what the §3.4.2 policy would actually
    // execute for the subclass.
    let reduced = suite.filtered(&plan.reused_case_ids());
    let report = consumer.run_suite(&bundle, &reduced).expect("runs");
    println!("\nReduced suite run: {}", report.summary());
    println!(
        "\nTable 3 of the paper measures what this saving costs in\n\
         fault-detection power — regenerate it with:\n\
         cargo bench -p concat-bench --bench table3"
    );
}
