//! End-to-end interface mutation analysis (paper §4) in miniature.
//!
//! Runs the full pipeline on one method of `CSortableObList`: enumerate
//! mutants with the Table-1 operators, execute the generated suite against
//! every mutant, classify kills (crash / assertion violation / output
//! difference), probe survivors for equivalence, and print the score
//! table. A second section demonstrates the `workers` knob on a
//! stall-prone subject: hanging mutants wait out their watchdog deadlines
//! concurrently, so the sharded analysis finishes measurably faster while
//! producing verdict-for-verdict identical results.
//!
//! Run with: `cargo run --release --example mutation_demo`
//!
//! A second mode exercises the durable, resumable campaign path:
//! `mutation_demo campaign <journal> <report>` runs a multi-second
//! analysis journaling every verdict to `<journal>`, then writes the
//! score table to `<report>` (atomically — a kill mid-campaign leaves no
//! report). Killed and rerun with the same journal, the campaign resumes
//! from the recorded verdicts and the final report is byte-identical to
//! an uninterrupted run; CI's `resume` job SIGKILLs this mode mid-flight
//! and diffs the reports.
//!
//! The campaign mode takes three optional flags: `--isolation
//! {thread,process}` selects how mutants are contained (process shards
//! are self-execs of this binary via the hidden `shard-worker campaign`
//! entry point, supervised with heartbeat liveness and respawn),
//! `--shards N` sets the worker/shard count, and `--incremental` turns
//! on change-aware resume (per-method sub-fingerprints in the journal;
//! the warm run prints `replayed N of M verdicts` to stdout). Verdicts
//! and the report are byte-identical across both modes and every shard
//! count; CI's `isolation` job SIGKILLs a process shard mid-run and
//! `cmp`s the report against the in-thread golden, and its
//! `incremental` job runs the campaign twice warm and `cmp`s the
//! reports.
//!
//! A long-running mode, `mutation_demo campaign-server <dir> [--fleet N]
//! [--isolation {thread,process}] [--resume]`, hosts the fault-tolerant
//! campaign orchestration service: one supervised fleet of `N` slot
//! workers multiplexing mutants from every active campaign. It speaks a
//! line-oriented control protocol on stdin (responses on stdout):
//!
//! ```text
//! submit <name> <subject> [--priority N] [--budget N]
//! cancel <name>
//! status <name>
//! list
//! shutdown
//! ```
//!
//! `<subject>` is `delay` or `sortable`. Each campaign journals to
//! `<dir>/<name>.journal` and, on completion, writes `<dir>/<name>.report`
//! — byte-identical to the solo `campaign` / `verdicts` mode report for
//! the same subject, regardless of fleet size, neighbors, or crash
//! schedule. `<dir>/server.manifest` tracks every campaign's phase
//! (rewritten atomically), so after a SIGTERM the journals are the
//! checkpoint and `--resume` re-submits every non-completed campaign.
//! On exit the service writes `<dir>/fleet.report`: the per-campaign
//! fleet table plus the harness-health counters
//! (`orchestrator.admitted/rejected/cancelled/resumed/...`). Process
//! isolation self-execs this binary via the hidden `shard-worker server`
//! entry, which rebuilds the campaign named by `CONCAT_SERVER_SUBJECT`.
//!
//! A third mode, `mutation_demo trace <trace.json> <report>`, runs the
//! campaign with the flight recorder attached: the recorded span tree is
//! exported as a Chrome-trace file (load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>), the hot-path attribution and harness
//! health tables go to stdout, and `<report>` gets the verdicts (score
//! table + summary — deliberately timing-free). A fourth mode,
//! `mutation_demo verdicts <report>`, writes the same verdict report
//! from an *untraced* run of the identical campaign; CI's `bench-smoke`
//! job `cmp`s the two to prove the recorder perturbs nothing, and
//! uploads the trace and BENCH_6.json as artifacts.
//!
//! A fifth mode, `mutation_demo invariant <transcript> <report> [--seed N]
//! [--corpus <dir>]`, runs the stateful invariant-fuzzing campaign on
//! `CSortableObList` (see `invariant_mode`); CI's `invariant` job builds
//! it with `--features seeded-bugs`, `cmp`s two same-seed runs, and
//! smoke-tests replay-from-corpus.

use concat::bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat::components::{sortable_inventory, sortable_spec, CSortableObListFactory};
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::mutation::{
    AmplifyConfig, CampaignEnd, CampaignId, CampaignStatus, ClassInventory, ClonableFactory,
    IsolationMode, KillReason, MethodInventory, MutantStatus, MutationMatrix, MutationRun,
    MutationSwitch, Orchestrator, OrchestratorConfig, ProcessIsolation, VarEnv,
};
use concat::obs::{chrome_trace, MemorySink, Telemetry};
use concat::report::{
    render_amplification_table, render_attribution, render_fleet_table, render_harness_health,
    render_score_table, summarize_run, FleetCampaignRow,
};
use concat::runtime::{
    unknown_method, write_atomic, AssertionViolation, Budget, Component, InvokeResult,
    TestException, Value,
};
use concat::tspec::{ClassSpec, ClassSpecBuilder, MethodCategory};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Hidden entry point: this binary re-executed as one process shard of
    // the campaign below. Must be checked before anything else — the
    // supervisor controls the arguments.
    if args.len() >= 3 && args[1] == "shard-worker" && args[2] == "campaign" {
        std::process::exit(campaign_shard_worker());
    }
    if args.len() >= 3 && args[1] == "shard-worker" && args[2] == "server" {
        std::process::exit(server_shard_worker());
    }
    if args.len() >= 3 && args[1] == "campaign-server" {
        campaign_server_mode(&args[2], &args[3..]);
        return;
    }
    if args.len() >= 4 && args[1] == "campaign" {
        let (process, shards, incremental) = parse_campaign_flags(&args[4..]);
        campaign_mode(&args[2], &args[3], process, shards, incremental);
        return;
    }
    if args.len() == 4 && args[1] == "trace" {
        trace_mode(&args[2], &args[3]);
        return;
    }
    if args.len() == 3 && args[1] == "verdicts" {
        verdicts_mode(&args[2]);
        return;
    }
    if args.len() >= 4 && args[1] == "invariant" {
        let mut seed = 42u64;
        let mut corpus = None;
        let mut rest = args[4..].iter();
        while let Some(arg) = rest.next() {
            match arg.as_str() {
                "--seed" => {
                    seed = rest
                        .next()
                        .and_then(|n| n.parse().ok())
                        .expect("--seed takes a number");
                }
                "--corpus" => {
                    corpus = Some(rest.next().expect("--corpus takes a directory").clone());
                }
                other => panic!("unknown invariant flag {other:?}"),
            }
        }
        invariant_mode(&args[2], &args[3], seed, corpus.as_deref());
        return;
    }
    if args.len() >= 3 && args[1] == "amplify" {
        let mut workers = None;
        let mut corpus = None;
        let mut rest = args[3..].iter();
        while let Some(arg) = rest.next() {
            if arg == "--corpus" {
                corpus = Some(rest.next().expect("--corpus takes a directory").clone());
            } else {
                workers = Some(arg.parse().expect("workers is a number"));
            }
        }
        amplify_mode(&args[2], workers, corpus.as_deref());
        return;
    }
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .build();

    let consumer = Consumer::with_seed(1999);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let targets = ["Sort1"];
    println!(
        "Analyzing method {} with {} test case(s)…\n",
        targets[0],
        suite.len()
    );

    let run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[4242])
        .expect("bundle carries mutation support");

    println!(
        "{}",
        render_score_table(
            "Mutation analysis of Sort1",
            &MutationMatrix::from_run(&run, &targets)
        )
    );
    println!("{}\n", summarize_run(&run));

    println!("A few individual verdicts:");
    for result in run.results.iter().take(10) {
        let verdict = match &result.status {
            MutantStatus::Killed {
                reason: KillReason::Crash,
                by_case,
            } => {
                format!("KILLED by crash (TC{by_case})")
            }
            MutantStatus::Killed {
                reason: KillReason::Assertion,
                by_case,
            } => {
                format!("KILLED by assertion violation (TC{by_case})")
            }
            MutantStatus::Killed {
                reason: KillReason::OutputDiff,
                by_case,
            } => {
                format!("KILLED by output difference (TC{by_case})")
            }
            MutantStatus::Survived => "SURVIVED (a genuine test-suite escape)".to_owned(),
            MutantStatus::PresumedEquivalent => "presumed equivalent".to_owned(),
            MutantStatus::Quarantined { reason } => {
                format!("QUARANTINED ({reason}; excluded from score)")
            }
        };
        println!("  {:55} {verdict}", result.mutant.to_string());
    }

    parallel_section();
}

/// A component whose two methods each read a loop guard through the
/// mutation switch; mutants forcing a guard `<= 0` loop until the
/// watchdog deadline fires. That wait is wall-clock, not CPU, so shards
/// serve their deadlines concurrently even on a single core — the
/// workload where the `workers` knob pays off most.
struct Delay {
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Delay {
    const CLASS: &'static str = "Delay";

    fn guarded_loop(&self, method: &'static str, var: &'static str) -> InvokeResult {
        let env = VarEnv::new();
        loop {
            let guard = self.switch.read_int(method, 0, var, 1, &env);
            if guard > 0 {
                return Ok(Value::Int(guard));
            }
            // Sleep between instrumented reads (each is a cancellation
            // point) so a hanging mutant waits rather than burns CPU.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Component for Delay {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Work", "Rest", "~Delay"]
    }

    fn invoke(&mut self, method: &str, _a: &[Value]) -> InvokeResult {
        match method {
            "Work" => self.guarded_loop("Work", "step"),
            "Rest" => self.guarded_loop("Rest", "pause"),
            "~Delay" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Delay {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        StateReport::new()
    }
}

struct DelayFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for DelayFactory {
    fn class_name(&self) -> &str {
        Delay::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        _a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Delay" => Ok(Box::new(Delay {
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method(Delay::CLASS, other)),
        }
    }
}

struct DelayShards;

impl ClonableFactory for DelayShards {
    fn class_name(&self) -> &str {
        Delay::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(DelayFactory {
            switch: switch.clone(),
        })
    }
}

fn delay_spec() -> ClassSpec {
    ClassSpecBuilder::new(Delay::CLASS)
        .constructor("m1", "Delay")
        .method("m2", "Work", MethodCategory::Update)
        .returns("int")
        .method("m3", "Rest", MethodCategory::Update)
        .returns("int")
        .destructor("m4", "~Delay")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2"])
        .task_node("n3", ["m3"])
        .death_node("n4", ["m4"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n1", "n3")
        .edge("n2", "n4")
        .edge("n3", "n4")
        .edge("n1", "n4")
        .build()
        .expect("Delay spec is valid")
}

fn delay_inventory() -> ClassInventory {
    ClassInventory::new(Delay::CLASS)
        .method(
            MethodInventory::new("Work")
                .locals(["step"])
                .site(0, "step", "loop guard"),
        )
        .method(
            MethodInventory::new("Rest")
                .locals(["pause"])
                .site(0, "pause", "loop guard"),
        )
}

fn delay_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        delay_spec(),
        Rc::new(DelayFactory {
            switch: switch.clone(),
        }),
    )
    .mutation(delay_inventory(), switch)
    .mutation_shards(Arc::new(DelayShards))
    .build()
}

/// The `campaign <journal> <report>` mode: a deliberately slow, journaled
/// campaign on the `Delay` subject — its hanging mutants wait out watchdog
/// deadlines, stretching the run past the point where CI's `resume` job
/// SIGKILLs it. Verdicts are journaled as they land, so the rerun replays
/// the survivors and re-executes only unfinished mutants; the report is
/// written atomically at the end and must be byte-identical whether or
/// not the campaign was interrupted.
fn campaign_mode(journal: &str, report: &str, process: bool, shards: usize, incremental: bool) {
    // ~10 hanging mutants x one 300 ms deadline per reached case, over 2
    // workers: the uninterrupted campaign takes well over 5 s, so CI's
    // kill at 2 s lands mid-flight with verdicts already journaled.
    let bundle = delay_bundle();
    let sink = Arc::new(MemorySink::new());
    let mut consumer = campaign_consumer()
        .with_workers(shards)
        .with_journal(journal);
    if incremental {
        // The replay count goes to stdout only; the report stays
        // timing- and telemetry-free so warm and cold runs `cmp` equal.
        consumer = consumer
            .incremental()
            .with_telemetry(Telemetry::new(sink.clone()));
    }
    if process {
        consumer = consumer.with_isolation(IsolationMode::Process(ProcessIsolation::new([
            "shard-worker",
            "campaign",
        ])));
    }
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let targets = CAMPAIGN_TARGETS;
    let started = Instant::now();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[])
        .expect("bundle carries mutation support and shards");
    write_atomic(report, campaign_report(&run).as_bytes()).expect("report written atomically");
    if incremental {
        let summary = sink.summary();
        let replayed = summary
            .counters
            .get("mutation.replayed")
            .copied()
            .unwrap_or(0);
        println!("replayed {replayed} of {} verdicts", run.total());
    }
    println!(
        "campaign complete in {:?}: {}",
        started.elapsed(),
        summarize_run(&run)
    );
}

/// The targets the resumable campaign (and its shard workers) analyze.
const CAMPAIGN_TARGETS: [&str; 2] = ["Work", "Rest"];

/// Renders the timing-free report of the resumable `Delay` campaign —
/// shared by the solo `campaign` mode and the campaign server, which must
/// produce byte-identical text for the same verdicts.
fn campaign_report(run: &MutationRun) -> String {
    format!(
        "{}\n{}\n",
        render_score_table(
            "Delay campaign (resumable)",
            &MutationMatrix::from_run(run, &CAMPAIGN_TARGETS)
        ),
        summarize_run(run)
    )
}

/// The campaign's consumer, minus journal/workers/isolation — everything
/// that feeds the campaign fingerprint. The supervisor and every shard
/// worker must build it identically; journal path, worker count and
/// isolation mode are fingerprint-excluded and may differ.
fn campaign_consumer() -> Consumer {
    Consumer::with_seed(2024)
        .with_budget(Budget::unlimited().with_deadline(Duration::from_millis(300)))
}

/// Parses the campaign mode's optional `--isolation {thread,process}`,
/// `--shards N` and `--incremental` flags; defaults are thread isolation
/// over 2 shards without incremental resume (the historical `campaign`
/// behaviour).
fn parse_campaign_flags(rest: &[String]) -> (bool, usize, bool) {
    let mut process = false;
    let mut shards = 2usize;
    let mut incremental = false;
    let mut args = rest.iter();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--isolation" => match args.next().map(String::as_str) {
                Some("process") => process = true,
                Some("thread") => process = false,
                other => panic!("--isolation takes thread|process, got {other:?}"),
            },
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--shards takes a positive integer");
            }
            "--incremental" => incremental = true,
            other => panic!("unknown campaign flag {other:?}"),
        }
    }
    (process, shards.max(1), incremental)
}

/// The shard-worker half of the process-isolated campaign: rebuilds the
/// identical bundle and consumer, then runs the assigned mutant slice,
/// streaming verdicts to stdout for the supervising `campaign` process.
fn campaign_shard_worker() -> i32 {
    let bundle = delay_bundle();
    let consumer = campaign_consumer();
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    consumer
        .run_shard_worker(&bundle, &suite, &CAMPAIGN_TARGETS, &[])
        .expect("bundle carries mutation support and shards")
}

/// The targets the trace/verdicts campaign analyzes.
const TRACE_TARGETS: [&str; 2] = ["Sort1", "FindMax"];

/// The sharded `CSortableObList` bundle behind the `trace`/`verdicts`
/// modes and the server's `sortable` subject.
fn sortable_server_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build()
}

/// The fixed campaign behind the `trace` and `verdicts` modes: the
/// `CSortableObList` subject over two workers, seed 1999, probe seed
/// 4242. Both modes must run the *identical* configuration — CI `cmp`s
/// their verdict reports to prove tracing changes nothing.
fn trace_campaign(telemetry: Telemetry) -> concat::mutation::MutationRun {
    let bundle = sortable_server_bundle();
    let consumer = Consumer::with_seed(1999)
        .with_telemetry(telemetry)
        .with_workers(2);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    consumer
        .evaluate_quality(&bundle, &suite, &TRACE_TARGETS, &[4242])
        .expect("bundle carries mutation support and shards")
}

/// Renders the timing-free verdict report both modes write.
fn verdict_report(run: &concat::mutation::MutationRun) -> String {
    format!(
        "{}\n{}\n",
        render_score_table(
            "Flight-recorder campaign (CSortableObList)",
            &MutationMatrix::from_run(run, &TRACE_TARGETS)
        ),
        summarize_run(run)
    )
}

// ---------------------------------------------------------------------
// campaign-server mode
// ---------------------------------------------------------------------

/// Environment variable through which the campaign server tells its
/// process shards which subject's campaign to rebuild.
const SERVER_SUBJECT_ENV: &str = "CONCAT_SERVER_SUBJECT";

/// One `server.manifest` line: a campaign the service accepted, with
/// everything needed to resubmit it after a restart.
#[derive(Clone)]
struct ManifestEntry {
    name: String,
    subject: String,
    priority: u8,
    budget: Option<u64>,
    phase: String,
}

/// State shared between the command loop and the per-campaign waiter
/// threads: the manifest, in order of first submission, mirrored
/// atomically to `<dir>/server.manifest` on every change.
struct ServerState {
    dir: PathBuf,
    manifest: Mutex<Vec<ManifestEntry>>,
}

impl ServerState {
    /// Upserts `entry` (keyed by name) and rewrites the manifest.
    fn record(&self, entry: ManifestEntry) {
        let mut manifest = self.manifest.lock().expect("manifest lock");
        match manifest.iter_mut().find(|e| e.name == entry.name) {
            Some(existing) => *existing = entry,
            None => manifest.push(entry),
        }
        self.rewrite(&manifest);
    }

    /// Flips one campaign's recorded phase and rewrites the manifest.
    fn set_phase(&self, name: &str, phase: &str) {
        let mut manifest = self.manifest.lock().expect("manifest lock");
        if let Some(entry) = manifest.iter_mut().find(|e| e.name == name) {
            entry.phase = phase.to_owned();
        }
        self.rewrite(&manifest);
    }

    /// Writes `server.manifest` atomically — the durable restart index a
    /// `--resume` run reads back. A SIGTERM needs no special handling:
    /// journals are write-ahead per verdict, so manifest + journals are
    /// always a consistent checkpoint.
    fn rewrite(&self, manifest: &[ManifestEntry]) {
        let mut text = String::new();
        for e in manifest {
            let budget = e.budget.map_or_else(|| "-".to_owned(), |b| b.to_string());
            text.push_str(&format!(
                "campaign {} {} {} {} {}\n",
                e.name, e.subject, e.priority, budget, e.phase
            ));
        }
        write_atomic(self.dir.join("server.manifest"), text.as_bytes())
            .expect("manifest written atomically");
    }
}

/// Reads `server.manifest` back: one
/// `campaign <name> <subject> <priority> <budget|-> <phase>` line per
/// campaign. Unparseable lines are skipped.
fn read_manifest(path: &Path) -> Vec<ManifestEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let tok: Vec<&str> = line.split_whitespace().collect();
            if tok.len() != 6 || tok[0] != "campaign" {
                return None;
            }
            Some(ManifestEntry {
                name: tok[1].to_owned(),
                subject: tok[2].to_owned(),
                priority: tok[3].parse().unwrap_or(0),
                budget: tok[4].parse().ok(),
                phase: tok[5].to_owned(),
            })
        })
        .collect()
}

/// Builds one subject's campaign request for the server: `delay` is the
/// resumable hanging-mutant campaign (the solo `campaign` mode's exact
/// inputs), `sortable` the `CSortableObList` campaign (the `verdicts`
/// mode's exact inputs) — so each finished campaign's report can be
/// `cmp`-verified against the corresponding solo mode. Returns `None`
/// for unknown subjects.
fn server_request(
    name: &str,
    subject: &str,
    process: bool,
    journal: PathBuf,
) -> Option<concat::mutation::CampaignRequest> {
    let (bundle, consumer, targets, probes): (SelfTestable, Consumer, &[&str], &[u64]) =
        match subject {
            "delay" => (delay_bundle(), campaign_consumer(), &CAMPAIGN_TARGETS, &[]),
            "sortable" => (
                sortable_server_bundle(),
                Consumer::with_seed(1999),
                &TRACE_TARGETS,
                &[4242],
            ),
            _ => return None,
        };
    let mut consumer = consumer.with_journal(journal);
    if process {
        consumer = consumer.with_isolation(IsolationMode::Process(
            ProcessIsolation::new(["shard-worker", "server"]).env(SERVER_SUBJECT_ENV, subject),
        ));
    }
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let mut request = consumer
        .campaign_request(&bundle, &suite, targets, probes)
        .expect("bundle carries mutation support and shards");
    request.name = name.to_owned();
    Some(request)
}

/// The shard-worker half of the process-isolated server: rebuilds the
/// subject named by `CONCAT_SERVER_SUBJECT` and runs the mutant slice
/// assigned through the `CONCAT_SHARD_*` environment.
fn server_shard_worker() -> i32 {
    let subject = std::env::var(SERVER_SUBJECT_ENV).expect("supervisor sets the subject");
    let (bundle, consumer, targets, probes): (SelfTestable, Consumer, &[&str], &[u64]) =
        match subject.as_str() {
            "delay" => (delay_bundle(), campaign_consumer(), &CAMPAIGN_TARGETS, &[]),
            "sortable" => (
                sortable_server_bundle(),
                Consumer::with_seed(1999),
                &TRACE_TARGETS,
                &[4242],
            ),
            other => panic!("unknown server subject {other:?}"),
        };
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    consumer
        .run_shard_worker(&bundle, &suite, targets, probes)
        .expect("bundle carries mutation support and shards")
}

/// The report a finished server campaign writes — the same timing-free
/// text the solo mode for its subject produces.
fn server_report(subject: &str, run: &MutationRun) -> String {
    if subject == "sortable" {
        verdict_report(run)
    } else {
        campaign_report(run)
    }
}

/// Parses `campaign-server` flags: `--fleet N` (slot workers, default 2),
/// `--isolation {thread,process}` (default thread) and `--resume`
/// (resubmit every non-completed manifest campaign on startup).
fn parse_server_flags(rest: &[String]) -> (usize, bool, bool) {
    let mut fleet = 2usize;
    let mut process = false;
    let mut resume = false;
    let mut args = rest.iter();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fleet" => {
                fleet = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--fleet takes a positive integer");
            }
            "--isolation" => match args.next().map(String::as_str) {
                Some("process") => process = true,
                Some("thread") => process = false,
                other => panic!("--isolation takes thread|process, got {other:?}"),
            },
            "--resume" => resume = true,
            other => panic!("unknown campaign-server flag {other:?}"),
        }
    }
    (fleet.max(1), process, resume)
}

/// Parses `submit`'s optional `--priority N` and `--budget N` flags;
/// unknown tokens are ignored.
fn parse_submit_flags(rest: &[&str]) -> (u8, Option<u64>) {
    let mut priority = 0u8;
    let mut budget = None;
    let mut args = rest.iter();
    while let Some(flag) = args.next() {
        match *flag {
            "--priority" => priority = args.next().and_then(|n| n.parse().ok()).unwrap_or(0),
            "--budget" => budget = args.next().and_then(|n| n.parse().ok()),
            _ => {}
        }
    }
    (priority, budget)
}

/// One protocol response line, flushed immediately — the server's stdout
/// is usually a pipe, and the driving harness waits on these lines.
fn respond(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// The `status`/`list` response line for one campaign.
fn status_line(status: &CampaignStatus) -> String {
    format!(
        "status {} {} {} {}/{} executed={} replayed={} prio={}",
        status.id,
        status.name,
        status.phase,
        status.done,
        status.total,
        status.executed,
        status.replayed,
        status.priority
    )
}

/// Submits one campaign to the fleet: builds the subject's request,
/// applies the scheduling metadata, records the manifest entry, and
/// registers the waiter that writes the report when the campaign ends.
fn server_submit(
    state: &Arc<ServerState>,
    orch: &Arc<Orchestrator>,
    names: &mut HashMap<String, CampaignId>,
    waiters: &mut Vec<std::thread::JoinHandle<()>>,
    entry: ManifestEntry,
    process: bool,
    resumed: bool,
) {
    if let Some(&id) = names.get(&entry.name) {
        if orch.status(id).is_some_and(|s| !s.phase.is_terminal()) {
            // Two live campaigns must never share one journal.
            respond(&format!(
                "err campaign {} already active as {id}",
                entry.name
            ));
            return;
        }
    }
    let journal = state.dir.join(format!("{}.journal", entry.name));
    let Some(mut request) = server_request(&entry.name, &entry.subject, process, journal) else {
        respond(&format!("err unknown subject {:?}", entry.subject));
        return;
    };
    request.priority = entry.priority;
    request.mutant_budget = entry.budget;
    let total = request.mutants.len();
    match orch.submit(request) {
        Ok(id) => {
            names.insert(entry.name.clone(), id);
            let verb = if resumed { "resumed" } else { "submitted" };
            respond(&format!("ok {verb} {id} {} total={total}", entry.name));
            state.record(ManifestEntry {
                phase: "queued".to_owned(),
                ..entry.clone()
            });
            waiters.push(spawn_waiter(state, orch, id, entry));
        }
        Err(err) => respond(&format!("err {err}")),
    }
}

/// Waits for one campaign to end, then writes its report (completed and
/// degraded runs — a cancelled campaign's checkpoint is its journal),
/// flips its manifest phase, and announces the event on stdout.
fn spawn_waiter(
    state: &Arc<ServerState>,
    orch: &Arc<Orchestrator>,
    id: CampaignId,
    entry: ManifestEntry,
) -> std::thread::JoinHandle<()> {
    let state = Arc::clone(state);
    let orch = Arc::clone(orch);
    std::thread::spawn(move || {
        let Some(outcome) = orch.wait(id) else {
            return;
        };
        let report = state.dir.join(format!("{}.report", entry.name));
        let phase = match &outcome.end {
            CampaignEnd::Completed(run) => {
                write_atomic(&report, server_report(&entry.subject, run).as_bytes())
                    .expect("report written atomically");
                "completed".to_owned()
            }
            CampaignEnd::Cancelled => "cancelled".to_owned(),
            CampaignEnd::Degraded { reason, partial } => {
                write_atomic(&report, server_report(&entry.subject, partial).as_bytes())
                    .expect("report written atomically");
                format!("degraded({reason})")
            }
        };
        state.set_phase(&entry.name, &phase);
        respond(&format!("event {id} {} {phase}", entry.name));
    })
}

/// Writes `<dir>/fleet.report`: the per-campaign fleet table (phase,
/// merge progress, priority, effective slot supervision deadlines) plus
/// the fleet harness-health counters
/// (`orchestrator.admitted/rejected/cancelled/resumed/...`).
fn write_fleet_report(dir: &Path, statuses: &[CampaignStatus], sink: &MemorySink) {
    let rows: Vec<FleetCampaignRow> = statuses
        .iter()
        .map(|s| FleetCampaignRow {
            id: s.id.to_string(),
            name: s.name.clone(),
            phase: s.phase.to_string(),
            done: s.done,
            total: s.total,
            executed: s.executed,
            replayed: s.replayed,
            priority: s.priority,
            startup_grace_ms: s.slot.startup_grace.as_millis() as u64,
            heartbeat_timeout_ms: s.slot.heartbeat_timeout.as_millis() as u64,
            term_grace_ms: s.slot.term_grace.as_millis() as u64,
        })
        .collect();
    let text = format!(
        "{}\n{}",
        render_fleet_table("Fleet campaigns", &rows),
        render_harness_health("Fleet harness health", &sink.summary())
    );
    write_atomic(dir.join("fleet.report"), text.as_bytes())
        .expect("fleet report written atomically");
}

/// The `campaign-server <dir>` mode: the long-running orchestration
/// service. Reads control commands from stdin (see the module docs for
/// the grammar) and exits once stdin closes — or a `shutdown` command
/// arrives — and every campaign reached a terminal phase.
fn campaign_server_mode(dir: &str, flags: &[String]) {
    let (fleet, process, resume) = parse_server_flags(flags);
    std::fs::create_dir_all(dir).expect("server directory exists");
    let dir = PathBuf::from(dir);
    let fleet_sink = Arc::new(MemorySink::new());
    let orch = Arc::new(Orchestrator::start(OrchestratorConfig {
        slots: fleet,
        lease_size: 4,
        telemetry: Telemetry::new(fleet_sink.clone()),
        ..OrchestratorConfig::default()
    }));
    let state = Arc::new(ServerState {
        dir: dir.clone(),
        manifest: Mutex::new(read_manifest(&dir.join("server.manifest"))),
    });
    let mut names: HashMap<String, CampaignId> = HashMap::new();
    let mut waiters: Vec<std::thread::JoinHandle<()>> = Vec::new();
    respond(&format!(
        "ready fleet={fleet} isolation={}",
        if process { "process" } else { "thread" }
    ));

    if resume {
        let recorded: Vec<ManifestEntry> = state.manifest.lock().expect("manifest lock").clone();
        for entry in recorded {
            if entry.phase != "completed" {
                server_submit(
                    &state,
                    &orch,
                    &mut names,
                    &mut waiters,
                    entry,
                    process,
                    true,
                );
            }
        }
    }

    let stdin = std::io::stdin();
    let mut shutdown_requested = false;
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let tok: Vec<&str> = line.split_whitespace().collect();
        match tok.first().copied() {
            None => {}
            Some("submit") if tok.len() >= 3 => {
                let (priority, budget) = parse_submit_flags(&tok[3..]);
                let entry = ManifestEntry {
                    name: tok[1].to_owned(),
                    subject: tok[2].to_owned(),
                    priority,
                    budget,
                    phase: "queued".to_owned(),
                };
                server_submit(
                    &state,
                    &orch,
                    &mut names,
                    &mut waiters,
                    entry,
                    process,
                    false,
                );
            }
            Some("cancel") if tok.len() == 2 => match names.get(tok[1]) {
                Some(&id) if orch.cancel(id) => respond(&format!("ok cancelled {id} {}", tok[1])),
                Some(&id) => respond(&format!("err campaign {id} already terminal")),
                None => respond(&format!("err unknown campaign {}", tok[1])),
            },
            Some("status") if tok.len() == 2 => {
                match names.get(tok[1]).and_then(|&id| orch.status(id)) {
                    Some(status) => respond(&status_line(&status)),
                    None => respond(&format!("err unknown campaign {}", tok[1])),
                }
            }
            Some("list") => {
                let statuses = orch.list();
                for status in &statuses {
                    respond(&status_line(status));
                }
                respond(&format!("ok list {}", statuses.len()));
            }
            Some("shutdown") => {
                shutdown_requested = true;
                respond("ok shutdown");
                break;
            }
            Some(other) => respond(&format!("err unknown command {other:?}")),
        }
    }

    if shutdown_requested {
        // Graceful stop: cancel whatever is still running; the journals
        // keep every campaign's verified prefix for a `--resume`.
        for status in orch.list() {
            if !status.phase.is_terminal() {
                orch.cancel(status.id);
            }
        }
    }
    // Natural exit: stdin closed, so wait for every campaign to reach a
    // terminal phase (each waiter returns exactly then).
    for waiter in waiters {
        let _ = waiter.join();
    }
    write_fleet_report(&dir, &orch.list(), &fleet_sink);
    if let Ok(orch) = Arc::try_unwrap(orch) {
        orch.shutdown();
    }
    respond("server exit");
}

/// The `trace <trace.json> <report>` mode: the flight recorder end to
/// end. Runs the campaign with a `MemorySink` recording the causal span
/// tree, exports it as a Chrome-trace file for `chrome://tracing` /
/// Perfetto, prints the hot-path attribution and harness-health tables,
/// and writes the timing-free verdict report for CI to `cmp` against
/// the untraced `verdicts` mode.
fn trace_mode(trace_path: &str, report: &str) {
    let sink = Arc::new(MemorySink::new());
    let started = Instant::now();
    let run = trace_campaign(Telemetry::new(sink.clone()));

    let events = sink.events();
    concat::runtime::write_atomic(trace_path, chrome_trace(&events).as_bytes())
        .expect("trace written atomically");
    concat::runtime::write_atomic(report, verdict_report(&run).as_bytes())
        .expect("report written atomically");

    println!(
        "{}",
        render_attribution("Hot-path attribution (traced campaign)", &events)
    );
    println!(
        "{}",
        render_harness_health("Harness health", &sink.summary())
    );
    let heartbeats = sink
        .summary()
        .snapshots
        .iter()
        .filter(|s| s.name == "campaign.progress")
        .count();
    println!(
        "traced campaign complete in {:?}: {} events recorded, {heartbeats} heartbeat(s); \
         trace -> {trace_path}, verdicts -> {report}",
        started.elapsed(),
        events.len(),
    );
}

/// The `verdicts <report>` mode: the identical campaign with telemetry
/// fully detached, writing the same verdict report.
fn verdicts_mode(report: &str) {
    let started = Instant::now();
    let run = trace_campaign(Telemetry::disabled());
    concat::runtime::write_atomic(report, verdict_report(&run).as_bytes())
        .expect("report written atomically");
    println!(
        "untraced campaign complete in {:?}: verdicts -> {report}",
        started.elapsed()
    );
}

/// The `amplify <report> [workers] [--corpus <dir>]` mode:
/// mutation-driven test amplification on `CSortableObList`. A
/// deliberately thin base suite leaves survivors; the loop synthesizes
/// targeted candidates (boundary values, re-seeded draws, deeper TFM
/// paths) and keeps the killers. With `--corpus`, killers deposited by a
/// previous run replay as round-1 candidates before any synthesis, and
/// this run's killers are deposited back. The report (score table,
/// amplification rounds, summary) is written atomically and contains no
/// volatile counters, so CI `cmp`s it across worker counts and across
/// seeded reruns.
fn amplify_mode(report: &str, workers: Option<usize>, corpus: Option<&str>) {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build();
    let sink = Arc::new(MemorySink::new());
    let mut consumer = Consumer::with_config(concat::driver::GeneratorConfig {
        seed: 1999,
        expansion: concat::driver::Expansion::Covering { repeats: 1 },
        ..concat::driver::GeneratorConfig::default()
    });
    if let Some(workers) = workers {
        consumer = consumer.with_workers(workers);
    }
    if let Some(dir) = corpus {
        // Corpus accounting goes to stdout only, keeping the report
        // comparable across runs that seed different amounts.
        consumer = consumer
            .with_corpus(dir)
            .with_telemetry(Telemetry::new(sink.clone()));
    }
    let full = consumer.generate(&bundle).expect("generation succeeds");
    // A thin slice of the covering suite: weak enough to leave survivors.
    let ids: Vec<usize> = full.cases.iter().map(|c| c.id).take(6).collect();
    let base = full.filtered(&ids);
    let targets = ["Sort1", "FindMax"];
    let started = Instant::now();
    let outcome = consumer
        .amplify_quality(&bundle, &base, &targets, &[4242], &AmplifyConfig::default())
        .expect("bundle carries mutation support and shards");
    assert!(
        outcome.final_score() > outcome.baseline_score,
        "amplification must strictly improve the score: {:.3} -> {:.3}",
        outcome.baseline_score,
        outcome.final_score()
    );
    assert!(
        outcome.total_kills() >= 3,
        "amplification killed only {} previously surviving mutant(s): {:?}",
        outcome.total_kills(),
        outcome.rounds
    );
    let text = format!(
        "{}\n{}\n{}\n",
        render_score_table(
            "CSortableObList after amplification",
            &MutationMatrix::from_run(&outcome.run, &targets)
        ),
        render_amplification_table(
            "Amplification rounds",
            &outcome.rounds,
            outcome.baseline_score,
            outcome.final_score()
        ),
        summarize_run(&outcome.run)
    );
    concat::runtime::write_atomic(report, text.as_bytes()).expect("report written atomically");
    if corpus.is_some() {
        let summary = sink.summary();
        let seeded = summary.counters.get("corpus.seeded").copied().unwrap_or(0);
        let deposited = summary
            .counters
            .get("corpus.deposited")
            .copied()
            .unwrap_or(0);
        let examined: u64 = outcome.rounds.iter().map(|r| r.candidates as u64).sum();
        println!(
            "corpus: seeded {seeded} candidate(s), deposited {deposited} killer(s), \
             synthesized {} candidate(s)",
            examined.saturating_sub(seeded)
        );
    }
    println!(
        "amplification complete in {:?}: {} case(s) -> {} case(s), score {:.1}% -> {:.1}%",
        started.elapsed(),
        base.len(),
        outcome.suite.len(),
        outcome.baseline_score * 100.0,
        outcome.final_score() * 100.0
    );
}

/// The `invariant <transcript> <report> [--seed N] [--corpus <dir>]`
/// mode: a stateful invariant-fuzzing campaign on `CSortableObList`.
/// Seeded random walks over the TFM interleave two live lists, checking
/// the BIT class invariant and every t-spec invariant clause after each
/// call; failures are shrunk to a minimal reproducer. The transcript
/// (every walk's call-by-call log plus the shrunk breakers) and the
/// report are written atomically and are byte-identical for the same
/// seed against a fresh corpus — CI `cmp`s two same-seed runs. With
/// `--corpus`, breakers deposited by a previous run replay before any
/// fuzzing. Build with `--features seeded-bugs` to arm the deliberate
/// cross-object cache-desync fault this campaign exists to catch.
fn invariant_mode(transcript_path: &str, report: &str, seed: u64, corpus: Option<&str>) {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .build();
    let config = concat::driver::WalkConfig::new(seed)
        .with_walks(6)
        .with_calls_per_walk(120)
        .with_objects(2);
    let mut consumer = Consumer::with_seed(seed);
    if let Some(dir) = corpus {
        consumer = consumer.with_corpus(dir);
    }
    let started = Instant::now();
    let campaign = consumer.invariant_campaign(&bundle, &config);

    let mut transcript = format!("invariant campaign: CSortableObList seed {seed}\n");
    for (i, walk) in campaign.transcripts.iter().enumerate() {
        transcript.push_str(&format!("=== walk {i} ===\n{walk}"));
    }
    for breaker in &campaign.breakers {
        let source = match (breaker.from_corpus, breaker.walk) {
            (true, _) => "corpus".to_owned(),
            (false, Some(i)) => format!("walk {i}"),
            (false, None) => "-".to_owned(),
        };
        transcript.push_str(&format!(
            "=== breaker ({source}, {} -> {} calls) ===\n{}",
            breaker.original_calls,
            breaker.shrunk.call_count(),
            concat::driver::save_sequence(&breaker.shrunk)
        ));
    }
    write_atomic(transcript_path, transcript.as_bytes()).expect("transcript written atomically");
    write_atomic(
        report,
        concat::report::render_invariant_table(&campaign.summary, &campaign.breakers).as_bytes(),
    )
    .expect("report written atomically");

    if cfg!(feature = "seeded-bugs") {
        assert!(
            campaign.summary.failures > 0 || campaign.summary.replayed_failing > 0,
            "the seeded cross-object fault must be caught"
        );
        for breaker in campaign.fresh_breakers() {
            assert!(
                breaker.shrunk.call_count() <= 10,
                "reproducer must shrink to <= 10 calls, got {}",
                breaker.shrunk.call_count()
            );
        }
    } else {
        assert!(
            campaign.clean(),
            "unseeded CSortableObList must hold its invariants"
        );
    }
    println!(
        "invariant campaign complete in {:?}: {} walk(s), {} call(s), {} check(s), \
         {} failure(s), {} replay(s); transcript -> {transcript_path}, report -> {report}",
        started.elapsed(),
        campaign.summary.walks,
        campaign.summary.calls,
        campaign.summary.checks,
        campaign.summary.failures,
        campaign.summary.replayed,
    );
}

fn parallel_section() {
    println!("\n=== Parallel mutation analysis (the `workers` knob) ===\n");
    let deadline = Duration::from_millis(150);
    let bundle = delay_bundle();
    let suite = Consumer::with_seed(2024)
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .generate(&bundle)
        .expect("generation succeeds");
    let targets = ["Work", "Rest"];

    let mut timed = Vec::new();
    for workers in [1usize, 4] {
        let consumer = Consumer::with_seed(2024)
            .with_budget(Budget::unlimited().with_deadline(deadline))
            .with_workers(workers);
        let started = Instant::now();
        let run = consumer
            .evaluate_quality(&bundle, &suite, &targets, &[])
            .expect("bundle carries mutation support and shards");
        let elapsed = started.elapsed();
        println!(
            "workers = {workers}: {} mutants ({} quarantined by watchdog) in {elapsed:?}",
            run.total(),
            run.quarantined(),
        );
        timed.push((run, elapsed));
    }
    let (sequential, sequential_elapsed) = &timed[0];
    let (parallel, parallel_elapsed) = &timed[1];
    assert_eq!(
        sequential.results, parallel.results,
        "verdicts must be byte-identical for every worker count"
    );
    let speedup = sequential_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64();
    println!(
        "\nIdentical verdicts, mutation score {:.2} both ways; speedup {speedup:.1}x",
        parallel.score()
    );
    assert!(
        speedup >= 2.0,
        "expected >= 2x from overlapping deadline waits, measured {speedup:.2}x"
    );
}
