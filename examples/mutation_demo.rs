//! End-to-end interface mutation analysis (paper §4) in miniature.
//!
//! Runs the full pipeline on one method of `CSortableObList`: enumerate
//! mutants with the Table-1 operators, execute the generated suite against
//! every mutant, classify kills (crash / assertion violation / output
//! difference), probe survivors for equivalence, and print the score
//! table. A second section demonstrates the `workers` knob on a
//! stall-prone subject: hanging mutants wait out their watchdog deadlines
//! concurrently, so the sharded analysis finishes measurably faster while
//! producing verdict-for-verdict identical results.
//!
//! Run with: `cargo run --release --example mutation_demo`
//!
//! A second mode exercises the durable, resumable campaign path:
//! `mutation_demo campaign <journal> <report>` runs a multi-second
//! analysis journaling every verdict to `<journal>`, then writes the
//! score table to `<report>` (atomically — a kill mid-campaign leaves no
//! report). Killed and rerun with the same journal, the campaign resumes
//! from the recorded verdicts and the final report is byte-identical to
//! an uninterrupted run; CI's `resume` job SIGKILLs this mode mid-flight
//! and diffs the reports.
//!
//! The campaign mode takes three optional flags: `--isolation
//! {thread,process}` selects how mutants are contained (process shards
//! are self-execs of this binary via the hidden `shard-worker campaign`
//! entry point, supervised with heartbeat liveness and respawn),
//! `--shards N` sets the worker/shard count, and `--incremental` turns
//! on change-aware resume (per-method sub-fingerprints in the journal;
//! the warm run prints `replayed N of M verdicts` to stdout). Verdicts
//! and the report are byte-identical across both modes and every shard
//! count; CI's `isolation` job SIGKILLs a process shard mid-run and
//! `cmp`s the report against the in-thread golden, and its
//! `incremental` job runs the campaign twice warm and `cmp`s the
//! reports.
//!
//! A third mode, `mutation_demo trace <trace.json> <report>`, runs the
//! campaign with the flight recorder attached: the recorded span tree is
//! exported as a Chrome-trace file (load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>), the hot-path attribution and harness
//! health tables go to stdout, and `<report>` gets the verdicts (score
//! table + summary — deliberately timing-free). A fourth mode,
//! `mutation_demo verdicts <report>`, writes the same verdict report
//! from an *untraced* run of the identical campaign; CI's `bench-smoke`
//! job `cmp`s the two to prove the recorder perturbs nothing, and
//! uploads the trace and BENCH_6.json as artifacts.

use concat::bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat::components::{sortable_inventory, sortable_spec, CSortableObListFactory};
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::mutation::{
    AmplifyConfig, ClassInventory, ClonableFactory, IsolationMode, KillReason, MethodInventory,
    MutantStatus, MutationMatrix, MutationSwitch, ProcessIsolation, VarEnv,
};
use concat::obs::{chrome_trace, MemorySink, Telemetry};
use concat::report::{
    render_amplification_table, render_attribution, render_harness_health, render_score_table,
    summarize_run,
};
use concat::runtime::{
    unknown_method, AssertionViolation, Budget, Component, InvokeResult, TestException, Value,
};
use concat::tspec::{ClassSpec, ClassSpecBuilder, MethodCategory};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Hidden entry point: this binary re-executed as one process shard of
    // the campaign below. Must be checked before anything else — the
    // supervisor controls the arguments.
    if args.len() >= 3 && args[1] == "shard-worker" && args[2] == "campaign" {
        std::process::exit(campaign_shard_worker());
    }
    if args.len() >= 4 && args[1] == "campaign" {
        let (process, shards, incremental) = parse_campaign_flags(&args[4..]);
        campaign_mode(&args[2], &args[3], process, shards, incremental);
        return;
    }
    if args.len() == 4 && args[1] == "trace" {
        trace_mode(&args[2], &args[3]);
        return;
    }
    if args.len() == 3 && args[1] == "verdicts" {
        verdicts_mode(&args[2]);
        return;
    }
    if args.len() >= 3 && args[1] == "amplify" {
        let mut workers = None;
        let mut corpus = None;
        let mut rest = args[3..].iter();
        while let Some(arg) = rest.next() {
            if arg == "--corpus" {
                corpus = Some(rest.next().expect("--corpus takes a directory").clone());
            } else {
                workers = Some(arg.parse().expect("workers is a number"));
            }
        }
        amplify_mode(&args[2], workers, corpus.as_deref());
        return;
    }
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .build();

    let consumer = Consumer::with_seed(1999);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let targets = ["Sort1"];
    println!(
        "Analyzing method {} with {} test case(s)…\n",
        targets[0],
        suite.len()
    );

    let run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[4242])
        .expect("bundle carries mutation support");

    println!(
        "{}",
        render_score_table(
            "Mutation analysis of Sort1",
            &MutationMatrix::from_run(&run, &targets)
        )
    );
    println!("{}\n", summarize_run(&run));

    println!("A few individual verdicts:");
    for result in run.results.iter().take(10) {
        let verdict = match &result.status {
            MutantStatus::Killed {
                reason: KillReason::Crash,
                by_case,
            } => {
                format!("KILLED by crash (TC{by_case})")
            }
            MutantStatus::Killed {
                reason: KillReason::Assertion,
                by_case,
            } => {
                format!("KILLED by assertion violation (TC{by_case})")
            }
            MutantStatus::Killed {
                reason: KillReason::OutputDiff,
                by_case,
            } => {
                format!("KILLED by output difference (TC{by_case})")
            }
            MutantStatus::Survived => "SURVIVED (a genuine test-suite escape)".to_owned(),
            MutantStatus::PresumedEquivalent => "presumed equivalent".to_owned(),
            MutantStatus::Quarantined { reason } => {
                format!("QUARANTINED ({reason}; excluded from score)")
            }
        };
        println!("  {:55} {verdict}", result.mutant.to_string());
    }

    parallel_section();
}

/// A component whose two methods each read a loop guard through the
/// mutation switch; mutants forcing a guard `<= 0` loop until the
/// watchdog deadline fires. That wait is wall-clock, not CPU, so shards
/// serve their deadlines concurrently even on a single core — the
/// workload where the `workers` knob pays off most.
struct Delay {
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Delay {
    const CLASS: &'static str = "Delay";

    fn guarded_loop(&self, method: &'static str, var: &'static str) -> InvokeResult {
        let env = VarEnv::new();
        loop {
            let guard = self.switch.read_int(method, 0, var, 1, &env);
            if guard > 0 {
                return Ok(Value::Int(guard));
            }
            // Sleep between instrumented reads (each is a cancellation
            // point) so a hanging mutant waits rather than burns CPU.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Component for Delay {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Work", "Rest", "~Delay"]
    }

    fn invoke(&mut self, method: &str, _a: &[Value]) -> InvokeResult {
        match method {
            "Work" => self.guarded_loop("Work", "step"),
            "Rest" => self.guarded_loop("Rest", "pause"),
            "~Delay" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Delay {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        StateReport::new()
    }
}

struct DelayFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for DelayFactory {
    fn class_name(&self) -> &str {
        Delay::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        _a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Delay" => Ok(Box::new(Delay {
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method(Delay::CLASS, other)),
        }
    }
}

struct DelayShards;

impl ClonableFactory for DelayShards {
    fn class_name(&self) -> &str {
        Delay::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(DelayFactory {
            switch: switch.clone(),
        })
    }
}

fn delay_spec() -> ClassSpec {
    ClassSpecBuilder::new(Delay::CLASS)
        .constructor("m1", "Delay")
        .method("m2", "Work", MethodCategory::Update)
        .returns("int")
        .method("m3", "Rest", MethodCategory::Update)
        .returns("int")
        .destructor("m4", "~Delay")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2"])
        .task_node("n3", ["m3"])
        .death_node("n4", ["m4"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n1", "n3")
        .edge("n2", "n4")
        .edge("n3", "n4")
        .edge("n1", "n4")
        .build()
        .expect("Delay spec is valid")
}

fn delay_inventory() -> ClassInventory {
    ClassInventory::new(Delay::CLASS)
        .method(
            MethodInventory::new("Work")
                .locals(["step"])
                .site(0, "step", "loop guard"),
        )
        .method(
            MethodInventory::new("Rest")
                .locals(["pause"])
                .site(0, "pause", "loop guard"),
        )
}

fn delay_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        delay_spec(),
        Rc::new(DelayFactory {
            switch: switch.clone(),
        }),
    )
    .mutation(delay_inventory(), switch)
    .mutation_shards(Arc::new(DelayShards))
    .build()
}

/// The `campaign <journal> <report>` mode: a deliberately slow, journaled
/// campaign on the `Delay` subject — its hanging mutants wait out watchdog
/// deadlines, stretching the run past the point where CI's `resume` job
/// SIGKILLs it. Verdicts are journaled as they land, so the rerun replays
/// the survivors and re-executes only unfinished mutants; the report is
/// written atomically at the end and must be byte-identical whether or
/// not the campaign was interrupted.
fn campaign_mode(journal: &str, report: &str, process: bool, shards: usize, incremental: bool) {
    // ~10 hanging mutants x one 300 ms deadline per reached case, over 2
    // workers: the uninterrupted campaign takes well over 5 s, so CI's
    // kill at 2 s lands mid-flight with verdicts already journaled.
    let bundle = delay_bundle();
    let sink = Arc::new(MemorySink::new());
    let mut consumer = campaign_consumer()
        .with_workers(shards)
        .with_journal(journal);
    if incremental {
        // The replay count goes to stdout only; the report stays
        // timing- and telemetry-free so warm and cold runs `cmp` equal.
        consumer = consumer
            .incremental()
            .with_telemetry(Telemetry::new(sink.clone()));
    }
    if process {
        consumer = consumer.with_isolation(IsolationMode::Process(ProcessIsolation::new([
            "shard-worker",
            "campaign",
        ])));
    }
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let targets = CAMPAIGN_TARGETS;
    let started = Instant::now();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[])
        .expect("bundle carries mutation support and shards");
    let text = format!(
        "{}\n{}\n",
        render_score_table(
            "Delay campaign (resumable)",
            &MutationMatrix::from_run(&run, &targets)
        ),
        summarize_run(&run)
    );
    concat::runtime::write_atomic(report, text.as_bytes()).expect("report written atomically");
    if incremental {
        let summary = sink.summary();
        let replayed = summary
            .counters
            .get("mutation.replayed")
            .copied()
            .unwrap_or(0);
        println!("replayed {replayed} of {} verdicts", run.total());
    }
    println!(
        "campaign complete in {:?}: {}",
        started.elapsed(),
        summarize_run(&run)
    );
}

/// The targets the resumable campaign (and its shard workers) analyze.
const CAMPAIGN_TARGETS: [&str; 2] = ["Work", "Rest"];

/// The campaign's consumer, minus journal/workers/isolation — everything
/// that feeds the campaign fingerprint. The supervisor and every shard
/// worker must build it identically; journal path, worker count and
/// isolation mode are fingerprint-excluded and may differ.
fn campaign_consumer() -> Consumer {
    Consumer::with_seed(2024)
        .with_budget(Budget::unlimited().with_deadline(Duration::from_millis(300)))
}

/// Parses the campaign mode's optional `--isolation {thread,process}`,
/// `--shards N` and `--incremental` flags; defaults are thread isolation
/// over 2 shards without incremental resume (the historical `campaign`
/// behaviour).
fn parse_campaign_flags(rest: &[String]) -> (bool, usize, bool) {
    let mut process = false;
    let mut shards = 2usize;
    let mut incremental = false;
    let mut args = rest.iter();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--isolation" => match args.next().map(String::as_str) {
                Some("process") => process = true,
                Some("thread") => process = false,
                other => panic!("--isolation takes thread|process, got {other:?}"),
            },
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--shards takes a positive integer");
            }
            "--incremental" => incremental = true,
            other => panic!("unknown campaign flag {other:?}"),
        }
    }
    (process, shards.max(1), incremental)
}

/// The shard-worker half of the process-isolated campaign: rebuilds the
/// identical bundle and consumer, then runs the assigned mutant slice,
/// streaming verdicts to stdout for the supervising `campaign` process.
fn campaign_shard_worker() -> i32 {
    let bundle = delay_bundle();
    let consumer = campaign_consumer();
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    consumer
        .run_shard_worker(&bundle, &suite, &CAMPAIGN_TARGETS, &[])
        .expect("bundle carries mutation support and shards")
}

/// The targets the trace/verdicts campaign analyzes.
const TRACE_TARGETS: [&str; 2] = ["Sort1", "FindMax"];

/// The fixed campaign behind the `trace` and `verdicts` modes: the
/// `CSortableObList` subject over two workers, seed 1999, probe seed
/// 4242. Both modes must run the *identical* configuration — CI `cmp`s
/// their verdict reports to prove tracing changes nothing.
fn trace_campaign(telemetry: Telemetry) -> concat::mutation::MutationRun {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build();
    let consumer = Consumer::with_seed(1999)
        .with_telemetry(telemetry)
        .with_workers(2);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    consumer
        .evaluate_quality(&bundle, &suite, &TRACE_TARGETS, &[4242])
        .expect("bundle carries mutation support and shards")
}

/// Renders the timing-free verdict report both modes write.
fn verdict_report(run: &concat::mutation::MutationRun) -> String {
    format!(
        "{}\n{}\n",
        render_score_table(
            "Flight-recorder campaign (CSortableObList)",
            &MutationMatrix::from_run(run, &TRACE_TARGETS)
        ),
        summarize_run(run)
    )
}

/// The `trace <trace.json> <report>` mode: the flight recorder end to
/// end. Runs the campaign with a `MemorySink` recording the causal span
/// tree, exports it as a Chrome-trace file for `chrome://tracing` /
/// Perfetto, prints the hot-path attribution and harness-health tables,
/// and writes the timing-free verdict report for CI to `cmp` against
/// the untraced `verdicts` mode.
fn trace_mode(trace_path: &str, report: &str) {
    let sink = Arc::new(MemorySink::new());
    let started = Instant::now();
    let run = trace_campaign(Telemetry::new(sink.clone()));

    let events = sink.events();
    concat::runtime::write_atomic(trace_path, chrome_trace(&events).as_bytes())
        .expect("trace written atomically");
    concat::runtime::write_atomic(report, verdict_report(&run).as_bytes())
        .expect("report written atomically");

    println!(
        "{}",
        render_attribution("Hot-path attribution (traced campaign)", &events)
    );
    println!(
        "{}",
        render_harness_health("Harness health", &sink.summary())
    );
    let heartbeats = sink
        .summary()
        .snapshots
        .iter()
        .filter(|s| s.name == "campaign.progress")
        .count();
    println!(
        "traced campaign complete in {:?}: {} events recorded, {heartbeats} heartbeat(s); \
         trace -> {trace_path}, verdicts -> {report}",
        started.elapsed(),
        events.len(),
    );
}

/// The `verdicts <report>` mode: the identical campaign with telemetry
/// fully detached, writing the same verdict report.
fn verdicts_mode(report: &str) {
    let started = Instant::now();
    let run = trace_campaign(Telemetry::disabled());
    concat::runtime::write_atomic(report, verdict_report(&run).as_bytes())
        .expect("report written atomically");
    println!(
        "untraced campaign complete in {:?}: verdicts -> {report}",
        started.elapsed()
    );
}

/// The `amplify <report> [workers] [--corpus <dir>]` mode:
/// mutation-driven test amplification on `CSortableObList`. A
/// deliberately thin base suite leaves survivors; the loop synthesizes
/// targeted candidates (boundary values, re-seeded draws, deeper TFM
/// paths) and keeps the killers. With `--corpus`, killers deposited by a
/// previous run replay as round-1 candidates before any synthesis, and
/// this run's killers are deposited back. The report (score table,
/// amplification rounds, summary) is written atomically and contains no
/// volatile counters, so CI `cmp`s it across worker counts and across
/// seeded reruns.
fn amplify_mode(report: &str, workers: Option<usize>, corpus: Option<&str>) {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build();
    let sink = Arc::new(MemorySink::new());
    let mut consumer = Consumer::with_config(concat::driver::GeneratorConfig {
        seed: 1999,
        expansion: concat::driver::Expansion::Covering { repeats: 1 },
        ..concat::driver::GeneratorConfig::default()
    });
    if let Some(workers) = workers {
        consumer = consumer.with_workers(workers);
    }
    if let Some(dir) = corpus {
        // Corpus accounting goes to stdout only, keeping the report
        // comparable across runs that seed different amounts.
        consumer = consumer
            .with_corpus(dir)
            .with_telemetry(Telemetry::new(sink.clone()));
    }
    let full = consumer.generate(&bundle).expect("generation succeeds");
    // A thin slice of the covering suite: weak enough to leave survivors.
    let ids: Vec<usize> = full.cases.iter().map(|c| c.id).take(6).collect();
    let base = full.filtered(&ids);
    let targets = ["Sort1", "FindMax"];
    let started = Instant::now();
    let outcome = consumer
        .amplify_quality(&bundle, &base, &targets, &[4242], &AmplifyConfig::default())
        .expect("bundle carries mutation support and shards");
    assert!(
        outcome.final_score() > outcome.baseline_score,
        "amplification must strictly improve the score: {:.3} -> {:.3}",
        outcome.baseline_score,
        outcome.final_score()
    );
    assert!(
        outcome.total_kills() >= 3,
        "amplification killed only {} previously surviving mutant(s): {:?}",
        outcome.total_kills(),
        outcome.rounds
    );
    let text = format!(
        "{}\n{}\n{}\n",
        render_score_table(
            "CSortableObList after amplification",
            &MutationMatrix::from_run(&outcome.run, &targets)
        ),
        render_amplification_table(
            "Amplification rounds",
            &outcome.rounds,
            outcome.baseline_score,
            outcome.final_score()
        ),
        summarize_run(&outcome.run)
    );
    concat::runtime::write_atomic(report, text.as_bytes()).expect("report written atomically");
    if corpus.is_some() {
        let summary = sink.summary();
        let seeded = summary.counters.get("corpus.seeded").copied().unwrap_or(0);
        let deposited = summary
            .counters
            .get("corpus.deposited")
            .copied()
            .unwrap_or(0);
        let examined: u64 = outcome.rounds.iter().map(|r| r.candidates as u64).sum();
        println!(
            "corpus: seeded {seeded} candidate(s), deposited {deposited} killer(s), \
             synthesized {} candidate(s)",
            examined.saturating_sub(seeded)
        );
    }
    println!(
        "amplification complete in {:?}: {} case(s) -> {} case(s), score {:.1}% -> {:.1}%",
        started.elapsed(),
        base.len(),
        outcome.suite.len(),
        outcome.baseline_score * 100.0,
        outcome.final_score() * 100.0
    );
}

fn parallel_section() {
    println!("\n=== Parallel mutation analysis (the `workers` knob) ===\n");
    let deadline = Duration::from_millis(150);
    let bundle = delay_bundle();
    let suite = Consumer::with_seed(2024)
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .generate(&bundle)
        .expect("generation succeeds");
    let targets = ["Work", "Rest"];

    let mut timed = Vec::new();
    for workers in [1usize, 4] {
        let consumer = Consumer::with_seed(2024)
            .with_budget(Budget::unlimited().with_deadline(deadline))
            .with_workers(workers);
        let started = Instant::now();
        let run = consumer
            .evaluate_quality(&bundle, &suite, &targets, &[])
            .expect("bundle carries mutation support and shards");
        let elapsed = started.elapsed();
        println!(
            "workers = {workers}: {} mutants ({} quarantined by watchdog) in {elapsed:?}",
            run.total(),
            run.quarantined(),
        );
        timed.push((run, elapsed));
    }
    let (sequential, sequential_elapsed) = &timed[0];
    let (parallel, parallel_elapsed) = &timed[1];
    assert_eq!(
        sequential.results, parallel.results,
        "verdicts must be byte-identical for every worker count"
    );
    let speedup = sequential_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64();
    println!(
        "\nIdentical verdicts, mutation score {:.2} both ways; speedup {speedup:.1}x",
        parallel.score()
    );
    assert!(
        speedup >= 2.0,
        "expected >= 2x from overlapping deadline waits, measured {speedup:.2}x"
    );
}
