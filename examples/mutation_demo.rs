//! End-to-end interface mutation analysis (paper §4) in miniature.
//!
//! Runs the full pipeline on one method of `CSortableObList`: enumerate
//! mutants with the Table-1 operators, execute the generated suite against
//! every mutant, classify kills (crash / assertion violation / output
//! difference), probe survivors for equivalence, and print the score
//! table.
//!
//! Run with: `cargo run --release --example mutation_demo`

use concat::components::{sortable_inventory, sortable_spec, CSortableObListFactory};
use concat::core::{Consumer, SelfTestableBuilder};
use concat::mutation::{KillReason, MutantStatus, MutationMatrix, MutationSwitch};
use concat::report::{render_score_table, summarize_run};
use std::rc::Rc;

fn main() {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .build();

    let consumer = Consumer::with_seed(1999);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let targets = ["Sort1"];
    println!(
        "Analyzing method {} with {} test case(s)…\n",
        targets[0],
        suite.len()
    );

    let run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[4242])
        .expect("bundle carries mutation support");

    println!(
        "{}",
        render_score_table(
            "Mutation analysis of Sort1",
            &MutationMatrix::from_run(&run, &targets)
        )
    );
    println!("{}\n", summarize_run(&run));

    println!("A few individual verdicts:");
    for result in run.results.iter().take(10) {
        let verdict = match &result.status {
            MutantStatus::Killed {
                reason: KillReason::Crash,
                by_case,
            } => {
                format!("KILLED by crash (TC{by_case})")
            }
            MutantStatus::Killed {
                reason: KillReason::Assertion,
                by_case,
            } => {
                format!("KILLED by assertion violation (TC{by_case})")
            }
            MutantStatus::Killed {
                reason: KillReason::OutputDiff,
                by_case,
            } => {
                format!("KILLED by output difference (TC{by_case})")
            }
            MutantStatus::Survived => "SURVIVED (a genuine test-suite escape)".to_owned(),
            MutantStatus::PresumedEquivalent => "presumed equivalent".to_owned(),
            MutantStatus::Quarantined { reason } => {
                format!("QUARANTINED ({reason}; excluded from score)")
            }
        };
        println!("  {:55} {verdict}", result.mutant.to_string());
    }
}
