//! Interclass testing — the paper's future-work extension (§6).
//!
//! A *composite* self-testable component made of two classes: an audit
//! list (`CObList`) and a staging stack (`BoundedStack`), with one
//! interclass transaction flow model describing their interaction. The
//! flattened spec feeds the ordinary pipeline: driver generation,
//! execution with invariant checks spanning both objects, and a merged
//! reporter.
//!
//! Run with: `cargo run --example interclass_station`

use concat::bit::{BitControl, ComponentFactory, TestableComponent};
use concat::components::{bounded_stack_spec, coblist_spec, BoundedStackFactory, CObListFactory};
use concat::core::{CompositeFactory, CompositeSpecBuilder};
use concat::driver::{DriverGenerator, TestLog, TestRunner};
use concat::runtime::{TestException, Value};
use std::rc::Rc;

/// Adapts `BoundedStack`'s capacity-taking constructor to the
/// parameterless construction composites use.
struct DefaultStackFactory;

impl ComponentFactory for DefaultStackFactory {
    fn class_name(&self) -> &str {
        "BoundedStack"
    }
    fn construct(
        &self,
        constructor: &str,
        args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        if args.is_empty() {
            BoundedStackFactory.construct(constructor, &[Value::Int(8)], ctl)
        } else {
            BoundedStackFactory.construct(constructor, args, ctl)
        }
    }
}

fn main() {
    // One TFM over two classes: log a stock movement in the audit list,
    // stage it on the stack, cross-check sizes, drain, destroy.
    let composite = CompositeSpecBuilder::new("Station")
        .role("audit", coblist_spec(), "CObList", "~CObList")
        .role(
            "staging",
            bounded_stack_spec(),
            "BoundedStack",
            "~BoundedStack",
        )
        .birth("create")
        .task("log", ["audit.m2", "audit.m3"]) // AddHead / AddTail
        .task("stage", ["staging.m2"]) // Push
        .task("check", ["audit.m13", "staging.m5"]) // GetCount / Size
        .task("drain", ["staging.m3"]) // Pop
        .death("destroy")
        .edge("create", "log")
        .edge("log", "stage")
        .edge("stage", "check")
        .edge("stage", "drain")
        .edge("check", "drain")
        .edge("drain", "destroy")
        .edge("check", "destroy")
        .build();

    let flat = composite.flatten().expect("composite spec is coherent");
    println!(
        "Flattened interclass spec `{}`: {} methods, {} nodes, {} links\n",
        flat.class_name,
        flat.methods.len(),
        flat.tfm.node_count(),
        flat.tfm.edge_count()
    );
    println!("Qualified interface:");
    for m in &flat.methods {
        println!("  {:12} {}", m.id, m.name);
    }

    let factory = CompositeFactory::new(
        composite,
        vec![
            (
                "audit".into(),
                Rc::new(CObListFactory::default()) as Rc<dyn ComponentFactory>,
            ),
            (
                "staging".into(),
                Rc::new(DefaultStackFactory) as Rc<dyn ComponentFactory>,
            ),
        ],
    )
    .expect("every role has a factory");

    let suite = DriverGenerator::with_seed(2001)
        .generate(&flat)
        .expect("generates");
    let runner = TestRunner::new();
    let mut log = TestLog::new();
    let result = runner.run_suite(&factory, &suite, &mut log);
    println!(
        "\nInterclass self-test: {} case(s), {} passed, {} failed",
        result.cases.len(),
        result.passed(),
        result.failed()
    );
    println!("\nFirst log lines:");
    for line in log.render().lines().take(10) {
        println!("  {line}");
    }
}
