//! The telemetry spine end to end: run the full pipeline (generate →
//! execute → mutation analysis) with a `MemorySink` attached, print the
//! aggregated summary tables, stream the same run as JSONL, and show
//! the flight-recorder side — the causal span tree (parent links,
//! self-vs-child time), the campaign progress heartbeats, and the
//! Chrome-trace export.
//!
//! A final section runs the same campaign under both isolation modes —
//! thread shards and supervised process shards (self-execs of this
//! binary via the hidden `shard-worker` argument) — shows that the
//! verdicts are identical, and prints the harness-health table with the
//! process-supervision counters.
//!
//! Run with: `cargo run --release --example telemetry`

use concat::components::{
    coblist_inventory, coblist_spec, sortable_inventory, sortable_spec, CObListFactory,
    CSortableObListFactory,
};
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::driver::{TestLog, TestSuite};
use concat::mutation::{IsolationMode, MutationSwitch, ProcessIsolation};
use concat::obs::{chrome_trace, Event, JsonlSink, MemorySink, Telemetry};
use concat::report::{
    render_attribution, render_harness_health, render_model_metrics_table, render_telemetry_summary,
};
use concat::tfm::ModelMetrics;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    // Hidden entry point: this binary re-executed as one process shard of
    // the isolation section's campaign.
    if std::env::args().nth(1).as_deref() == Some("shard-worker") {
        std::process::exit(isolation_shard_worker());
    }
    let switch = MutationSwitch::new();
    let bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
            .mutation(coblist_inventory(), switch)
            .build();

    // 1. Full pipeline under a MemorySink.
    let sink = Arc::new(MemorySink::new());
    let consumer = Consumer::with_seed(2001).with_telemetry(Telemetry::new(sink.clone()));
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let report = consumer.run_suite(&bundle, &suite).expect("suite runs");
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["AddHead"], &[2002])
        .expect("bundle carries mutation support");
    println!(
        "{} cases, {} passed; {} mutants, {} killed\n",
        suite.len(),
        report.result.passed(),
        run.total(),
        run.killed()
    );
    println!(
        "{}",
        render_telemetry_summary("Telemetry summary (CObList pipeline)", &sink.summary())
    );

    // 2. The model-size side of the report.
    println!(
        "{}",
        render_model_metrics_table(&[("CObList", ModelMetrics::of(&bundle.spec().tfm))])
    );

    // 3. Same pipeline streamed as JSONL (first lines shown).
    let jsonl = Arc::new(JsonlSink::in_memory());
    let consumer = Consumer::with_seed(2001).with_telemetry(Telemetry::new(jsonl.clone()));
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let _ = consumer.run_suite(&bundle, &suite).expect("suite runs");
    let trace = jsonl.contents();
    println!(
        "JSONL trace: {} events, first 5 lines:",
        trace.lines().count()
    );
    for line in trace.lines().take(5) {
        println!("  {line}");
    }

    // 4. The flight recorder: the same mutation campaign recorded as a
    //    causal span tree. Every span carries its parent's id, so the
    //    stream reconstructs who-called-whom: mutation → golden/mutant →
    //    suite → case. The first span-tree levels:
    let events = sink.events();
    println!("Span tree (first 8 start events):");
    let starts = events.iter().filter_map(|event| match event {
        Event::SpanStart {
            kind,
            label,
            id,
            parent,
            ..
        } => Some((kind, label, id, parent)),
        _ => None,
    });
    for (kind, label, id, parent) in starts.take(8) {
        let parent = parent.map_or("-".to_owned(), |p| p.to_string());
        println!("  #{id:<5} parent {parent:<5} {kind}: {label}");
    }

    // 5. The hot-path attribution the tree makes possible: wall-clock by
    //    phase with self time (a span's duration minus its children's).
    println!(
        "\n{}",
        render_attribution("Hot-path attribution (CObList campaign)", &events)
    );

    // 6. Campaign heartbeats: periodic `campaign.progress` snapshots of
    //    mutants done/queued/quarantined, emitted while the analysis runs.
    let beats: Vec<_> = sink
        .summary()
        .snapshots
        .iter()
        .filter(|s| s.name == "campaign.progress")
        .cloned()
        .collect();
    println!("{} heartbeat(s); the last one reads:", beats.len());
    if let Some(last) = beats.last() {
        for (name, value) in &last.readings {
            println!("  {name:<14} {value}");
        }
    }

    // 7. The same events as a Chrome-trace (chrome://tracing, Perfetto).
    let trace_json = chrome_trace(&events);
    println!(
        "\nChrome trace: {} lines; first mutant event:",
        trace_json.lines().count()
    );
    if let Some(line) = trace_json.lines().find(|l| l.contains("mutant")) {
        println!("  {line}");
    }

    // 8. An elapsed-mode Result.txt.
    let mut log = TestLog::with_elapsed();
    let runner = concat::driver::TestRunner::new();
    let factory = CObListFactory::new(MutationSwitch::new());
    let _ = runner.run_suite(&factory, &suite.filtered(&[0, 1]), &mut log);
    println!("\nResult.txt with elapsed prefixes (first 6 lines):");
    for line in log.render().lines().take(6) {
        println!("  {line}");
    }

    // 9. Isolation modes: the identical campaign with shards as threads,
    //    then as supervised child processes. Process shards survive
    //    mutants that abort or spin without checkpoints; here (on a tame
    //    subject) the point is parity — byte-identical verdicts — and the
    //    supervision counters in the harness-health table.
    let bundle = isolation_bundle();
    let consumer = isolation_consumer();
    let small = isolation_suite(&consumer, &bundle);
    let in_thread = consumer
        .clone()
        .with_workers(2)
        .evaluate_quality(&bundle, &small, &ISOLATION_TARGETS, &[])
        .expect("sharded bundle");
    let process_sink = Arc::new(MemorySink::new());
    let in_process = consumer
        .with_workers(2)
        .with_telemetry(Telemetry::new(process_sink.clone()))
        .with_isolation(IsolationMode::Process(ProcessIsolation::new([
            "shard-worker",
        ])))
        .evaluate_quality(&bundle, &small, &ISOLATION_TARGETS, &[])
        .expect("sharded bundle");
    assert_eq!(
        in_thread.results, in_process.results,
        "verdicts are byte-identical across isolation modes"
    );
    println!(
        "\nIsolation modes: {} mutants, thread and process shards agree verdict-for-verdict",
        in_process.total()
    );
    println!(
        "{}",
        render_harness_health(
            "Harness health (process-isolated campaign)",
            &process_sink.summary()
        )
    );
}

/// The targets of the isolation-mode comparison campaign.
const ISOLATION_TARGETS: [&str; 1] = ["FindMax"];

/// The isolation section's bundle: `CSortableObList` with the sharding
/// seam process isolation requires.
fn isolation_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build()
}

/// Everything fingerprint-relevant about the isolation campaign's
/// consumer; the supervisor and every shard worker build it identically.
fn isolation_consumer() -> Consumer {
    Consumer::with_seed(2003)
}

/// The (deliberately small) killing suite of the isolation campaign.
fn isolation_suite(consumer: &Consumer, bundle: &SelfTestable) -> TestSuite {
    let suite = consumer.generate(bundle).expect("generation succeeds");
    let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(40).collect();
    suite.filtered(&ids)
}

/// The shard-worker half: rebuilds the identical campaign and runs the
/// assigned mutant slice, streaming verdicts to the supervisor.
fn isolation_shard_worker() -> i32 {
    let bundle = isolation_bundle();
    let consumer = isolation_consumer();
    let small = isolation_suite(&consumer, &bundle);
    consumer
        .run_shard_worker(&bundle, &small, &ISOLATION_TARGETS, &[])
        .expect("sharded bundle")
}
