//! The telemetry spine end to end: run the full pipeline (generate →
//! execute → mutation analysis) with a `MemorySink` attached, print the
//! aggregated summary tables, and stream the same run as JSONL.
//!
//! Run with: `cargo run --release --example telemetry`

use concat::components::{coblist_inventory, coblist_spec, CObListFactory};
use concat::core::{Consumer, SelfTestableBuilder};
use concat::driver::TestLog;
use concat::mutation::MutationSwitch;
use concat::obs::{JsonlSink, MemorySink, Telemetry};
use concat::report::{render_model_metrics_table, render_telemetry_summary};
use concat::tfm::ModelMetrics;
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let switch = MutationSwitch::new();
    let bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
            .mutation(coblist_inventory(), switch)
            .build();

    // 1. Full pipeline under a MemorySink.
    let sink = Arc::new(MemorySink::new());
    let consumer = Consumer::with_seed(2001).with_telemetry(Telemetry::new(sink.clone()));
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let report = consumer.run_suite(&bundle, &suite).expect("suite runs");
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["AddHead"], &[2002])
        .expect("bundle carries mutation support");
    println!(
        "{} cases, {} passed; {} mutants, {} killed\n",
        suite.len(),
        report.result.passed(),
        run.total(),
        run.killed()
    );
    println!(
        "{}",
        render_telemetry_summary("Telemetry summary (CObList pipeline)", &sink.summary())
    );

    // 2. The model-size side of the report.
    println!(
        "{}",
        render_model_metrics_table(&[("CObList", ModelMetrics::of(&bundle.spec().tfm))])
    );

    // 3. Same pipeline streamed as JSONL (first lines shown).
    let jsonl = Arc::new(JsonlSink::in_memory());
    let consumer = Consumer::with_seed(2001).with_telemetry(Telemetry::new(jsonl.clone()));
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let _ = consumer.run_suite(&bundle, &suite).expect("suite runs");
    let trace = jsonl.contents();
    println!(
        "JSONL trace: {} events, first 5 lines:",
        trace.lines().count()
    );
    for line in trace.lines().take(5) {
        println!("  {line}");
    }

    // 4. An elapsed-mode Result.txt.
    let mut log = TestLog::with_elapsed();
    let runner = concat::driver::TestRunner::new();
    let factory = CObListFactory::new(MutationSwitch::new());
    let _ = runner.run_suite(&factory, &suite.filtered(&[0, 1]), &mut log);
    println!("\nResult.txt with elapsed prefixes (first 6 lines):");
    for line in log.render().lines().take(6) {
        println!("  {line}");
    }
}
