//! Quickstart: build a self-testable component and let a consumer test it.
//!
//! Walks the paper's two-sided methodology (§3.1) on the small
//! `BoundedStack` component:
//!
//! 1. **producer** — package the implementation with its t-spec and BIT
//!    capabilities, and validate the packaging;
//! 2. **consumer** — generate a transaction-covering test suite from the
//!    embedded t-spec, run it in test mode, and inspect the results.
//!
//! Run with: `cargo run --example quickstart`

use concat::components::{bounded_stack_spec, BoundedStackFactory};
use concat::core::{Consumer, Producer, SelfTestableBuilder};
use concat::tfm::{enumerate_transactions, to_dot};
use concat::tspec::print_tspec;
use std::rc::Rc;

fn main() {
    // ---------------------------------------------------------------
    // Producer side.
    // ---------------------------------------------------------------
    let spec = bounded_stack_spec();
    println!("== The embedded t-spec (Figure-3 format) ==\n");
    println!("{}", print_tspec(&spec));

    let transactions = enumerate_transactions(&spec.tfm);
    println!(
        "The test model has {} node(s), {} link(s) and {} transaction(s).\n",
        spec.tfm.node_count(),
        spec.tfm.edge_count(),
        transactions.len()
    );

    let bundle = SelfTestableBuilder::new(spec, Rc::new(BoundedStackFactory)).build();
    Producer::package(&bundle).expect("the packaging is coherent");
    println!("Producer checks passed: the component is self-testable.\n");

    // ---------------------------------------------------------------
    // Consumer side.
    // ---------------------------------------------------------------
    let consumer = Consumer::with_seed(2001);
    let report = consumer.self_test(&bundle).expect("generation succeeds");
    println!("== Consumer self-test ==\n");
    println!("{}\n", report.summary());
    println!("First log lines (the paper's Result.txt):");
    for line in report.log.render().lines().take(8) {
        println!("  {line}");
    }

    assert!(
        report.all_passed(),
        "a healthy component passes its own self-test"
    );

    // Bonus: the test model as Graphviz DOT, for documentation.
    println!("\n== Test model (DOT) ==\n{}", to_dot(&bundle.spec().tfm));
}
