//! Invariant fuzzing end to end: seeded TFM walks with per-call invariant
//! checking, delta-debugging sequence shrinking, journal resume and
//! corpus replay — and the two acceptance bars of the subsystem:
//!
//! * determinism — the same seed yields byte-identical transcripts,
//!   failures and shrunk reproducers across campaigns, processes and
//!   resumes;
//! * isolation — running invariant campaigns never perturbs mutation
//!   analysis in the same process (mirroring `tests/trace.rs`).
//!
//! With `--features seeded-bugs` the suite additionally proves the
//! paper-motivated gap the subsystem exists to close: a deliberately
//! seeded cross-object cache desync in `CSortableObList` that the
//! transaction-coverage suite can never trip (one object per case) is
//! found by the interleaved walks, shrunk to a minimal reproducer, and
//! replayed from the corpus on the next campaign.

use concat::components::*;
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::driver::{generate_walk, save_sequence, WalkConfig};
use concat::mutation::{MutationMatrix, MutationRun, MutationSwitch};
use concat::obs::Telemetry;
use concat::report::{render_invariant_table, render_score_table, summarize_run};
use concat::runtime::{Budget, CorpusStore};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

fn sortable_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch)),
    )
    .build()
}

fn temp_path(tag: &str) -> PathBuf {
    let unique = format!(
        "concat-invtest-{tag}-{}-{}",
        std::process::id(),
        concat::runtime::monotonic_nanos()
    );
    std::env::temp_dir().join(unique)
}

// ---------------------------------------------------------------------------
// Determinism: same seed ⇒ identical transcripts, failures, reproducers.
// ---------------------------------------------------------------------------

#[test]
fn same_seed_campaigns_are_byte_identical() {
    let bundle = sortable_bundle();
    let config = WalkConfig::new(23)
        .with_walks(4)
        .with_calls_per_walk(90)
        .with_objects(2);
    let one = Consumer::new().invariant_campaign(&bundle, &config);
    let two = Consumer::new().invariant_campaign(&bundle, &config);
    assert_eq!(one, two, "summary, breakers and transcripts all match");
    assert_eq!(one.transcripts.len(), 4);
    assert!(one.transcripts.iter().all(|t| !t.is_empty()));
    assert_eq!(
        render_invariant_table(&one.summary, &one.breakers),
        render_invariant_table(&two.summary, &two.breakers)
    );

    // A different seed walks differently.
    let other = Consumer::new().invariant_campaign(
        &bundle,
        &WalkConfig::new(24).with_walks(4).with_calls_per_walk(90),
    );
    assert_ne!(one.transcripts, other.transcripts);
}

// ---------------------------------------------------------------------------
// Budget/watchdog stop leaves a resumable journal.
// ---------------------------------------------------------------------------

#[test]
fn budget_stop_leaves_resumable_journal() {
    let bundle = sortable_bundle();
    // One object per walk: these walks must stay healthy even when the
    // seeded cross-object bug is compiled in, so the budget (not an
    // early failure) is what stops the campaign.
    let config = WalkConfig::new(19)
        .with_walks(4)
        .with_calls_per_walk(50)
        .with_objects(1);
    let journal = temp_path("journal");

    let stopped = Consumer::new()
        .with_budget(Budget::unlimited().with_max_calls(60))
        .with_journal(&journal)
        .invariant_campaign(&bundle, &config);
    assert!(stopped.summary.stopped, "the call budget must bite");
    assert!(stopped.summary.walks < 4);

    // Resuming without a budget finishes, and lands exactly where an
    // uninterrupted campaign lands.
    let resumed = Consumer::new()
        .with_journal(&journal)
        .invariant_campaign(&bundle, &config);
    let baseline = Consumer::new().invariant_campaign(&bundle, &config);
    assert!(!resumed.summary.stopped);
    assert_eq!(resumed.summary, baseline.summary);
    assert_eq!(resumed.breakers, baseline.breakers);
    let _ = std::fs::remove_file(&journal);
}

// ---------------------------------------------------------------------------
// Corpus round trip on a healthy component: stored sequences replay
// before any fuzzing and passing breakers are retained (regression
// insurance, not garbage).
// ---------------------------------------------------------------------------

#[test]
fn passing_corpus_sequences_replay_and_are_retained() {
    let bundle = sortable_bundle();
    // Single-object walks stay healthy with or without seeded bugs.
    let config = WalkConfig::new(31)
        .with_walks(2)
        .with_calls_per_walk(40)
        .with_objects(1);
    let corpus = temp_path("corpus");
    std::fs::create_dir_all(&corpus).unwrap();

    let seq = generate_walk(bundle.spec(), &config, config.walk_seed(1));
    let mut store = CorpusStore::open(&corpus).unwrap();
    assert!(store
        .deposit(
            "CSortableObList.invariant",
            seq.fingerprint(),
            &save_sequence(&seq)
        )
        .unwrap());

    let campaign = Consumer::new()
        .with_corpus(&corpus)
        .invariant_campaign(&bundle, &config);
    assert_eq!(campaign.summary.replayed, 1);
    assert_eq!(campaign.summary.replayed_failing, 0);
    assert!(campaign.clean());

    let store = CorpusStore::open(&corpus).unwrap();
    assert_eq!(
        store.load("CSortableObList.invariant").payloads.len(),
        1,
        "a passing breaker is retained, not deleted"
    );
    let _ = std::fs::remove_dir_all(&corpus);
}

// ---------------------------------------------------------------------------
// Isolation: invariant fuzzing in the same process never perturbs
// mutation analysis (the same bar tests/trace.rs sets for tracing).
// ---------------------------------------------------------------------------

fn mutation_campaign() -> MutationRun {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .inheritance(sortable_inheritance_map())
    .build();
    let consumer = Consumer::with_config(concat::driver::GeneratorConfig {
        seed: 71,
        expansion: concat::driver::Expansion::Covering { repeats: 1 },
        ..concat::driver::GeneratorConfig::default()
    })
    .with_workers(2)
    .with_telemetry(Telemetry::disabled());
    let suite = consumer.generate(&bundle).unwrap();
    consumer
        .evaluate_quality(&bundle, &suite, &["FindMax", "FindMin"], &[72])
        .unwrap()
}

#[test]
fn invariant_fuzzing_never_perturbs_mutation_analysis() {
    let before = mutation_campaign();

    // A full invariant campaign — corpus, journal, shrinking when the
    // seeded bug is compiled in — runs between two mutation campaigns.
    let corpus = temp_path("isolation-corpus");
    let journal = temp_path("isolation-journal");
    std::fs::create_dir_all(&corpus).unwrap();
    let bundle = sortable_bundle();
    let config = WalkConfig::new(42)
        .with_walks(3)
        .with_calls_per_walk(80)
        .with_objects(2);
    let campaign = Consumer::new()
        .with_corpus(&corpus)
        .with_journal(&journal)
        .invariant_campaign(&bundle, &config);
    assert_eq!(campaign.summary.walks, 3);

    let after = mutation_campaign();
    assert_eq!(
        before.results, after.results,
        "mutation verdicts must be identical before/after invariant fuzzing"
    );
    let targets = ["FindMax", "FindMin"];
    assert_eq!(
        render_score_table("Isolation", &MutationMatrix::from_run(&before, &targets)),
        render_score_table("Isolation", &MutationMatrix::from_run(&after, &targets)),
    );
    assert_eq!(summarize_run(&before), summarize_run(&after));

    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_file(&journal);
}

// ---------------------------------------------------------------------------
// The seeded cross-object bug: missed by transaction coverage, found by
// interleaved walks, shrunk to a minimal exact reproducer, replayed from
// the corpus.
// ---------------------------------------------------------------------------

#[cfg(feature = "seeded-bugs")]
mod seeded {
    use super::*;
    use concat::bit::BitControl;
    use concat::driver::{execute_sequence, shrink_sequence, FailureKind};

    /// The demo configuration: the one the CI job replays byte-for-byte.
    fn hunting_config() -> WalkConfig {
        WalkConfig::new(42)
            .with_walks(6)
            .with_calls_per_walk(120)
            .with_objects(2)
    }

    #[test]
    fn transaction_coverage_misses_the_seeded_bug() {
        let bundle = sortable_bundle();
        let report = Consumer::with_seed(7).self_test(&bundle).unwrap();
        // The suite's only failures are its deliberate boundary probes
        // tripping preconditions — the same three cases fail on the
        // unseeded build. One object per case means the cross-object
        // cache desync is unreachable: its invariant clause never fires.
        for case in &report.result.cases {
            match &case.status {
                concat::driver::CaseStatus::Passed => {}
                concat::driver::CaseStatus::AssertionViolated { message, .. } => {
                    assert!(
                        message.contains("pre-condition"),
                        "case {}: only boundary-probe precondition hits are \
                         expected, got {message:?}",
                        case.case_id
                    );
                    assert!(!message.contains("cached length"));
                }
                other => panic!("case {}: unexpected status {other:?}", case.case_id),
            }
        }
    }

    #[test]
    fn walks_find_and_shrink_the_seeded_bug() {
        let bundle = sortable_bundle();
        let one = Consumer::new().invariant_campaign(&bundle, &hunting_config());
        assert!(one.summary.failures > 0, "the walks must trip the bug");
        let fresh: Vec<_> = one.fresh_breakers().collect();
        assert!(!fresh.is_empty());
        for breaker in &fresh {
            assert!(
                breaker.shrunk.call_count() <= 10,
                "reproducer not minimal: {} calls\n{}",
                breaker.shrunk.call_count(),
                breaker.shrunk.render()
            );
            assert!(breaker.shrunk.call_count() <= breaker.original_calls);
            assert!(
                matches!(&breaker.failure, FailureKind::Invariant { message }
                    if message.contains("cached length")),
                "unexpected failure kind: {:?}",
                breaker.failure
            );
        }
        // Byte-identical across campaigns, transcripts included.
        let two = Consumer::new().invariant_campaign(&bundle, &hunting_config());
        assert_eq!(one, two);
    }

    #[test]
    fn shrunk_reproducer_is_exact_and_a_shrink_fixpoint() {
        let bundle = sortable_bundle();
        let campaign = Consumer::new().invariant_campaign(&bundle, &hunting_config());
        let breaker = campaign.fresh_breakers().next().expect("a breaker");

        // The exact minimal reproducer for seed 42 — committed literally
        // so any drift in generation, execution or shrinking is loud.
        // Four calls: construct both objects, remove on object 0 (which
        // marks it the thread's last remover), insert into object 1,
        // whose stale cached length then disagrees with its count.
        let expected = "\
walk CSortableObList
seed 11400714819323198527
step 0 c n1 m1 CSortableObList - []
step 1 c n1 m1 CSortableObList - []
step 0 i n13 m15 RemoveAll - []
step 1 i n2 m3 AddTail b [99]
end
";
        assert_eq!(save_sequence(&breaker.shrunk), expected);

        // Shrinking is a fixpoint: re-shrinking the reproducer changes
        // nothing, and the reproducer still fails the same way.
        let ctl = BitControl::new_enabled();
        let again = shrink_sequence(bundle.factory(), bundle.spec(), &breaker.shrunk, &ctl);
        assert_eq!(save_sequence(&again), save_sequence(&breaker.shrunk));
        let outcome =
            execute_sequence(bundle.factory(), bundle.spec(), &breaker.shrunk, &ctl, None);
        assert_eq!(
            outcome.failure.map(|f| f.kind),
            Some(breaker.failure.clone())
        );
    }

    #[test]
    fn breakers_replay_from_corpus_first_and_still_fail() {
        let bundle = sortable_bundle();
        let config = hunting_config();
        let corpus = temp_path("seeded-corpus");
        std::fs::create_dir_all(&corpus).unwrap();

        let first = Consumer::new()
            .with_corpus(&corpus)
            .invariant_campaign(&bundle, &config);
        let deposited: std::collections::BTreeSet<String> = first
            .fresh_breakers()
            .map(|b| save_sequence(&b.shrunk))
            .collect();
        assert!(!deposited.is_empty());

        let second = Consumer::new()
            .with_corpus(&corpus)
            .invariant_campaign(&bundle, &config);
        assert_eq!(
            second.summary.replayed as usize,
            deposited.len(),
            "every distinct reproducer replays exactly once"
        );
        assert_eq!(second.summary.replayed_failing, second.summary.replayed);
        let replays: Vec<_> = second.breakers.iter().filter(|b| b.from_corpus).collect();
        assert_eq!(replays.len(), deposited.len());
        assert!(
            second.breakers.first().is_some_and(|b| b.from_corpus),
            "corpus replays come before fresh discoveries"
        );
        for replay in replays {
            assert!(deposited.contains(&save_sequence(&replay.shrunk)));
        }
        let _ = std::fs::remove_dir_all(&corpus);
    }
}
