//! Randomized property tests on the core data structures and invariants
//! of the reproduction.
//!
//! The original suite used `proptest`; the build environment is offline
//! (no registry access), so the same properties are now driven by the
//! workspace's own deterministic [`Rng`] — fixed seeds, a few dozen to a
//! few hundred iterations per property, failure messages carrying the
//! iteration index so a reproduction is one seed away.

use concat::bit::{BitControl, BuiltInTest as _};
use concat::components::{CObList, CObListFactory};
use concat::driver::{
    DriverGenerator, Expansion, GeneratorConfig, InheritanceMap, InputGenerator, ReuseDecision,
    ReusePlan, TestingHistory,
};
use concat::mutation::MutationSwitch;
use concat::runtime::{Rng, Value};
use concat::tfm::{enumerate_transactions, NodeId, NodeKind, Tfm};
use concat::tspec::{parse_tspec, print_tspec, ClassSpecBuilder, Domain, MethodCategory};
use std::collections::VecDeque;

/// Runs `cases` iterations of a property, handing each a fresh
/// deterministic RNG derived from `seed` and the iteration index.
fn for_cases(seed: u64, cases: u64, mut property: impl FnMut(&mut Rng, u64)) {
    for i in 0..cases {
        let mut rng = Rng::seed_from_u64(seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        property(&mut rng, i);
    }
}

// ---------------------------------------------------------------------
// TFM: transaction enumeration on random DAGs.
// ---------------------------------------------------------------------

/// Builds a random layered DAG: birth → k task layers → death, with a
/// random subset of forward edges (always keeping one canonical chain so
/// the model validates).
fn random_dag(rng: &mut Rng) -> Tfm {
    let layers = rng.int_in(2, 5) as usize;
    let mut tfm = Tfm::new("Rand");
    let mut ids: Vec<NodeId> = Vec::new();
    ids.push(tfm.add_node("birth", NodeKind::Birth, ["New"]));
    for i in 0..layers {
        ids.push(tfm.add_node(format!("t{i}"), NodeKind::Task, [format!("M{i}")]));
    }
    ids.push(tfm.add_node("death", NodeKind::Death, ["Drop"]));
    // canonical chain keeps everything reachable and co-reachable
    for w in ids.windows(2) {
        tfm.add_edge(w[0], w[1]);
    }
    // random forward skip edges
    for i in 0..ids.len() {
        for j in (i + 2)..ids.len() {
            if rng.coin() {
                tfm.add_edge(ids[i], ids[j]);
            }
        }
    }
    tfm
}

/// Counts birth→death paths by dynamic programming (ground truth).
fn path_count(tfm: &Tfm) -> usize {
    fn count(tfm: &Tfm, node: NodeId, memo: &mut Vec<Option<usize>>) -> usize {
        if let Some(c) = memo[node.index()] {
            return c;
        }
        let c = if tfm.node(node).kind == NodeKind::Death {
            1
        } else {
            tfm.successors(node)
                .iter()
                .map(|s| count(tfm, *s, memo))
                .sum()
        };
        memo[node.index()] = Some(c);
        c
    }
    let mut memo = vec![None; tfm.node_count()];
    tfm.birth_nodes()
        .iter()
        .map(|b| count(tfm, *b, &mut memo))
        .sum()
}

#[test]
fn random_dags_validate_and_enumerate_completely() {
    for_cases(0xDA6, 64, |rng, i| {
        let tfm = random_dag(rng);
        assert!(tfm.validate().is_empty(), "case {i}");
        let set = enumerate_transactions(&tfm);
        assert!(!set.truncated, "case {i}");
        assert_eq!(set.len(), path_count(&tfm), "case {i}");
        // every transaction is a real path
        for t in &set {
            assert_eq!(tfm.node(t.nodes[0]).kind, NodeKind::Birth, "case {i}");
            assert_eq!(
                tfm.node(*t.nodes.last().unwrap()).kind,
                NodeKind::Death,
                "case {i}"
            );
            for w in t.nodes.windows(2) {
                assert!(tfm.successors(w[0]).contains(&w[1]), "case {i}");
            }
        }
        // no duplicates
        let unique: std::collections::HashSet<_> = set.iter().collect();
        assert_eq!(unique.len(), set.len(), "case {i}");
    });
}

// ---------------------------------------------------------------------
// Domains and input generation.
// ---------------------------------------------------------------------

#[test]
fn generated_inputs_lie_in_their_domain() {
    for_cases(0x1225, 64, |rng, i| {
        let seed = rng.next_u64();
        let lo = rng.int_in(-1000, 999);
        let span = rng.int_in(0, 999);
        let max_len = rng.int_in(1, 39) as usize;
        let set_len = rng.int_in(1, 7) as usize;
        let set_vals: Vec<Value> = (0..set_len)
            .map(|_| Value::Int(rng.int_in(-50, 49)))
            .collect();
        let mut gen = InputGenerator::new(seed);
        let domains = vec![
            Domain::int_range(lo, lo + span),
            Domain::float_range(lo as f64, (lo + span) as f64),
            Domain::string(max_len),
            Domain::Set(set_vals),
        ];
        for d in &domains {
            for _ in 0..8 {
                let (v, _) = gen.generate(d).unwrap();
                assert!(d.contains(&v), "case {i}: {v:?} escaped {d}");
                let (b, _) = gen.generate_boundary(d).unwrap();
                assert!(d.contains(&b), "case {i}: boundary {b:?} escaped {d}");
            }
        }
    });
}

#[test]
fn input_generation_is_seed_deterministic() {
    for_cases(0x5EED5, 64, |rng, i| {
        let seed = rng.next_u64();
        let lo = rng.int_in(-1000, 999);
        let span = rng.int_in(0, 999);
        let domains = vec![
            Domain::int_range(lo, lo + span),
            Domain::float_range(lo as f64, (lo + span) as f64),
            Domain::string(rng.int_in(1, 19) as usize),
            Domain::Set(vec![Value::Bool(false), Value::Bool(true)]),
        ];
        let draw = |boundary: bool| {
            let mut gen = InputGenerator::new(seed);
            let mut out = Vec::new();
            for d in &domains {
                for _ in 0..8 {
                    let (v, _) = if boundary {
                        gen.generate_boundary(d).unwrap()
                    } else {
                        gen.generate(d).unwrap()
                    };
                    out.push(v);
                }
            }
            out
        };
        assert_eq!(draw(false), draw(false), "case {i}: uniform draws");
        assert_eq!(draw(true), draw(true), "case {i}: boundary draws");
    });
}

#[test]
fn boundary_generation_reaches_domain_edges() {
    for_cases(0xB0DE, 64, |rng, i| {
        let seed = rng.next_u64();
        let lo = rng.int_in(-1000, 999);
        let span = rng.int_in(1, 999);
        let hi = lo + span;
        let mut gen = InputGenerator::new(seed);
        let d = Domain::int_range(lo, hi);
        let drawn: Vec<i64> = (0..64)
            .map(|_| gen.generate_boundary(&d).unwrap().0.as_int().unwrap())
            .collect();
        assert!(
            drawn.contains(&lo),
            "case {i}: min {lo} unreached: {drawn:?}"
        );
        assert!(
            drawn.contains(&hi),
            "case {i}: max {hi} unreached: {drawn:?}"
        );
        let max_len = rng.int_in(1, 19) as usize;
        let s = Domain::string(max_len);
        let lens: Vec<usize> = (0..64)
            .map(|_| match gen.generate_boundary(&s).unwrap().0 {
                Value::Str(v) => v.chars().count(),
                other => panic!("case {i}: string domain produced {other:?}"),
            })
            .collect();
        assert!(lens.contains(&0), "case {i}: empty string unreached");
        assert!(
            lens.contains(&max_len),
            "case {i}: max length {max_len} unreached: {lens:?}"
        );
    });
}

// ---------------------------------------------------------------------
// Selection criteria on random TFMs.
// ---------------------------------------------------------------------

#[test]
fn selection_covers_random_dags() {
    use concat::driver::{select_transactions, SelectionCriterion};
    use concat::tfm::EnumerationConfig;
    for_cases(0x5E1EC7, 64, |rng, i| {
        let tfm = random_dag(rng);
        let config = EnumerationConfig::default();
        let set = enumerate_transactions(&tfm);
        for criterion in SelectionCriterion::LADDER {
            let sel = select_transactions(&tfm, criterion, config);
            assert!(sel.is_complete(), "case {i}: {criterion} incomplete");
            // indices are valid, unique and in enumeration order
            let unique: std::collections::BTreeSet<usize> =
                sel.transaction_indices.iter().copied().collect();
            assert_eq!(
                unique.len(),
                sel.transaction_indices.len(),
                "case {i}: {criterion} picked a transaction twice"
            );
            assert!(
                sel.transaction_indices.iter().all(|t| *t < set.len()),
                "case {i}: {criterion} index out of range"
            );
            // re-walk the cover and check it against the claimed units
            match criterion {
                SelectionCriterion::AllTransactions => {
                    assert_eq!(
                        sel.transaction_indices,
                        (0..set.len()).collect::<Vec<_>>(),
                        "case {i}: every birth->death transaction exactly once"
                    );
                }
                SelectionCriterion::AllNodes => {
                    let covered: std::collections::BTreeSet<usize> = sel
                        .transaction_indices
                        .iter()
                        .flat_map(|t| set.iter().nth(*t).unwrap().nodes.iter())
                        .map(|n| n.index())
                        .collect();
                    assert_eq!(covered.len(), tfm.node_count(), "case {i}: nodes uncovered");
                }
                SelectionCriterion::AllEdges => {
                    let covered: std::collections::BTreeSet<(usize, usize)> = sel
                        .transaction_indices
                        .iter()
                        .flat_map(|t| set.iter().nth(*t).unwrap().nodes.windows(2))
                        .map(|w| (w[0].index(), w[1].index()))
                        .collect();
                    assert_eq!(covered.len(), tfm.edge_count(), "case {i}: edges uncovered");
                }
            }
            // determinism: selection is a pure function of the model
            assert_eq!(
                sel,
                select_transactions(&tfm, criterion, config),
                "case {i}: {criterion} not deterministic"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Value ordering: a genuine total order (the sorts rely on it).
// ---------------------------------------------------------------------

fn random_scalar(rng: &mut Rng) -> Value {
    match rng.index(5) {
        0 => Value::Null,
        1 => Value::Bool(rng.coin()),
        2 => Value::Int(rng.int_in(i64::MIN, i64::MAX)),
        3 => Value::Float(rng.float_in(-1e9, 1e9)),
        _ => {
            let len = rng.index(7);
            Value::from(
                (0..len)
                    .map(|_| (b'a' + rng.index(26) as u8) as char)
                    .collect::<String>(),
            )
        }
    }
}

#[test]
fn value_total_cmp_is_a_total_order() {
    use std::cmp::Ordering;
    for_cases(0x70FA1, 256, |rng, i| {
        let (a, b, c) = (random_scalar(rng), random_scalar(rng), random_scalar(rng));
        // antisymmetry
        assert_eq!(
            a.total_cmp(&b),
            b.total_cmp(&a).reverse(),
            "case {i}: {a:?} {b:?}"
        );
        // reflexivity
        assert_eq!(a.total_cmp(&a), Ordering::Equal, "case {i}: {a:?}");
        // transitivity (on the <= relation)
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(
                a.total_cmp(&c),
                Ordering::Greater,
                "case {i}: {a:?} {b:?} {c:?}"
            );
        }
    });
}

// ---------------------------------------------------------------------
// t-spec text format round trip.
// ---------------------------------------------------------------------

#[test]
fn tspec_round_trips() {
    for_cases(0x75EC, 64, |rng, i| {
        let n_attrs = rng.index(4);
        let n_updates = rng.index(4);
        let lo = rng.int_in(-500, 499);
        let span = rng.int_in(0, 499);
        let max_len = rng.int_in(1, 29) as usize;
        let is_abstract = rng.coin();
        let mut b = ClassSpecBuilder::new("Rand");
        if is_abstract {
            b = b.abstract_class();
        }
        for a in 0..n_attrs {
            b = b.attribute(format!("a{a}"), Domain::int_range(lo, lo + span));
        }
        b = b.constructor("m1", "Rand");
        let mut update_ids = Vec::new();
        for u in 0..n_updates {
            let id = format!("u{u}");
            b = b
                .method(id.clone(), format!("Set{u}"), MethodCategory::Update)
                .param("v", Domain::string(max_len));
            update_ids.push(id);
        }
        b = b.destructor("m2", "~Rand").birth_node("n1", ["m1"]);
        if update_ids.is_empty() {
            b = b.death_node("n2", ["m2"]).edge("n1", "n2");
        } else {
            b = b
                .task_node("n2", update_ids)
                .death_node("n3", ["m2"])
                .edge("n1", "n2")
                .edge("n2", "n3");
        }
        let spec = b.build().unwrap();
        let text = print_tspec(&spec);
        let reparsed = parse_tspec(&text).unwrap();
        assert_eq!(reparsed, spec, "case {i}");
    });
}

// ---------------------------------------------------------------------
// CObList vs VecDeque model equivalence.
// ---------------------------------------------------------------------

#[test]
fn coblist_behaves_like_a_deque() {
    for_cases(0xDE9E, 64, |rng, i| {
        let n_ops = rng.int_in(1, 59);
        let mut list = CObList::new(BitControl::new_enabled(), MutationSwitch::new());
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut k = 0i64;
        for _ in 0..n_ops {
            k += 1;
            match rng.index(8) {
                0 => {
                    list.add_head(Value::Int(k)).unwrap();
                    model.push_front(k);
                }
                1 => {
                    list.add_tail(Value::Int(k));
                    model.push_back(k);
                }
                2 => {
                    let got = list.remove_head();
                    match model.pop_front() {
                        Some(v) => assert_eq!(got.unwrap(), Value::Int(v), "case {i}"),
                        None => assert!(got.is_err(), "case {i}"),
                    }
                }
                3 => {
                    let got = list.remove_tail();
                    match model.pop_back() {
                        Some(v) => assert_eq!(got.unwrap(), Value::Int(v), "case {i}"),
                        None => assert!(got.is_err(), "case {i}"),
                    }
                }
                4 => {
                    let idx = k.rem_euclid((model.len() as i64).max(1));
                    let got = list.get_at(idx);
                    match model.get(idx as usize) {
                        Some(v) => assert_eq!(got.unwrap(), Value::Int(*v), "case {i}"),
                        None => assert!(got.is_err(), "case {i}"),
                    }
                }
                5 => {
                    let idx = k.rem_euclid((model.len() as i64).max(1));
                    let got = list.remove_at(idx);
                    if (idx as usize) < model.len() {
                        let v = model.remove(idx as usize).unwrap();
                        assert_eq!(got.unwrap(), Value::Int(v), "case {i}");
                    } else {
                        assert!(got.is_err(), "case {i}");
                    }
                }
                6 => {
                    assert_eq!(
                        list.find(&Value::Int(k - 1)).unwrap(),
                        model
                            .iter()
                            .position(|v| *v == k - 1)
                            .map_or(-1, |p| p as i64),
                        "case {i}"
                    );
                }
                _ => {
                    list.remove_all();
                    model.clear();
                }
            }
            assert_eq!(list.count(), model.len() as i64, "case {i}");
            assert!(list.invariant_test().is_ok(), "case {i}");
            let vals: Vec<i64> = list
                .values()
                .unwrap()
                .into_iter()
                .map(|v| v.as_int().unwrap())
                .collect();
            let expect: Vec<i64> = model.iter().copied().collect();
            assert_eq!(vals, expect, "case {i}");
        }
    });
}

// ---------------------------------------------------------------------
// Covering expansion: alternatives and transactions all covered.
// ---------------------------------------------------------------------

#[test]
fn covering_expansion_covers_all_alternatives() {
    for_cases(0xC0FE, 64, |rng, i| {
        let seed = rng.next_u64();
        let repeats = rng.int_in(1, 3) as usize;
        let spec = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .constructor("m1b", "C")
            .method("a", "A1", MethodCategory::Update)
            .method("b", "A2", MethodCategory::Update)
            .method("c", "A3", MethodCategory::Update)
            .destructor("m2", "~C")
            .birth_node("n1", ["m1", "m1b"])
            .task_node("n2", ["a", "b", "c"])
            .death_node("n3", ["m2"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .edge("n1", "n3")
            .build()
            .unwrap();
        let mut gen = DriverGenerator::new(GeneratorConfig {
            seed,
            expansion: Expansion::Covering { repeats },
            ..GeneratorConfig::default()
        });
        let suite = gen.generate(&spec).unwrap();
        // every transaction covered
        let txns: std::collections::HashSet<usize> =
            suite.iter().map(|c| c.transaction_index).collect();
        assert_eq!(txns.len(), suite.stats.transactions, "case {i}");
        // every alternative of node n2 appears in some case
        let mut seen = std::collections::HashSet::new();
        for case in &suite {
            for m in case.method_names() {
                seen.insert(m.to_owned());
            }
        }
        for m in ["A1", "A2", "A3"] {
            assert!(
                seen.contains(m),
                "case {i}: alternative {m} never exercised"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Reuse plan laws.
// ---------------------------------------------------------------------

#[test]
fn reuse_plan_partitions_and_is_monotone() {
    use concat::driver::HistoryEntry;
    for_cases(0x2E05E, 64, |rng, i| {
        let n_cases = rng.int_in(1, 11) as usize;
        let methods_per_case: Vec<Vec<u8>> = (0..n_cases)
            .map(|_| {
                let n = rng.int_in(1, 4) as usize;
                (0..n).map(|_| rng.index(6) as u8).collect()
            })
            .collect();
        let name = |m: u8| format!("M{m}");
        let history = TestingHistory {
            class_name: "C".into(),
            entries: methods_per_case
                .iter()
                .enumerate()
                .map(|(c, ms)| HistoryEntry {
                    case_id: c,
                    transaction_index: c,
                    methods: ms.iter().map(|m| name(*m)).collect(),
                })
                .collect(),
        };
        let map = InheritanceMap::new()
            .inherit(["M0", "M1", "M2"])
            .redefine(["M3"])
            .add_new(["M4"])
            .lifecycle(["M5"]);
        let plan = ReusePlan::analyze(&history, &map);
        // partition: every case decided exactly once
        let (skip, retest, obsolete) = plan.counts();
        assert_eq!(skip + retest + obsolete, history.entries.len(), "case {i}");
        // semantic check per case
        for (case_id, decision) in &plan.decisions {
            let entry = &history.entries[*case_id];
            let has_unknown = entry
                .methods
                .iter()
                .any(|m| !["M0", "M1", "M2", "M3", "M4", "M5"].contains(&m.as_str()));
            let touches_changed = entry.methods.iter().any(|m| m == "M3" || m == "M4");
            match decision {
                ReuseDecision::Obsolete => assert!(has_unknown, "case {i}"),
                ReuseDecision::RetestReused => {
                    assert!(touches_changed && !has_unknown, "case {i}")
                }
                ReuseDecision::SkipRetest => {
                    assert!(!touches_changed && !has_unknown, "case {i}")
                }
            }
        }
        // monotonicity: declaring one more method as redefined never
        // moves a case from Retest to Skip.
        let stricter = InheritanceMap::new()
            .inherit(["M1", "M2"])
            .redefine(["M0", "M3"])
            .add_new(["M4"])
            .lifecycle(["M5"]);
        let plan2 = ReusePlan::analyze(&history, &stricter);
        for ((id1, d1), (id2, d2)) in plan.decisions.iter().zip(plan2.decisions.iter()) {
            assert_eq!(id1, id2, "case {i}");
            if *d1 == ReuseDecision::RetestReused {
                assert_ne!(*d2, ReuseDecision::SkipRetest, "case {i}");
            }
        }
    });
}

// ---------------------------------------------------------------------
// Factory-constructed components honour per-case isolation.
// ---------------------------------------------------------------------

#[test]
fn factory_instances_are_independent() {
    use concat::bit::ComponentFactory as _;
    for_cases(0xFAC, 32, |rng, i| {
        let v = rng.int_in(-99, 98);
        let f = CObListFactory::default();
        let mut a = f
            .construct("CObList", &[], BitControl::new_enabled())
            .unwrap();
        let b = f
            .construct("CObList", &[], BitControl::new_enabled())
            .unwrap();
        a.invoke("AddHead", &[Value::Int(v)]).unwrap();
        let ra = a.reporter();
        let rb = b.reporter();
        assert_eq!(ra.get("m_nCount"), Some(&Value::Int(1)), "case {i}");
        assert_eq!(rb.get("m_nCount"), Some(&Value::Int(0)), "case {i}");
    });
}

// -------------------------------------------------------------------
// Persistence: arbitrary suites and values round-trip through text.
// -------------------------------------------------------------------

fn random_value(rng: &mut Rng, depth: usize) -> Value {
    let leaf_kinds = 6;
    let kinds = if depth == 0 {
        leaf_kinds
    } else {
        leaf_kinds + 1
    };
    match rng.index(kinds) {
        0 => Value::Null,
        1 => Value::Bool(rng.coin()),
        2 => Value::Int(rng.int_in(i64::MIN, i64::MAX)),
        // finite floats only: NaN breaks Eq-based round-trip comparison
        3 => Value::Float(rng.float_in(-1e12, 1e12)),
        4 => {
            // printable ASCII incl. quotes/backslashes
            let len = rng.index(13);
            Value::from(
                (0..len)
                    .map(|_| (b' ' + rng.index((b'~' - b' ') as usize + 1) as u8) as char)
                    .collect::<String>(),
            )
        }
        5 => {
            let class_len = rng.int_in(1, 6) as usize;
            let class: String = (0..class_len)
                .map(|_| (b'A' + rng.index(26) as u8) as char)
                .collect();
            let key_len = rng.index(9);
            let key: String = (0..key_len)
                .map(|_| {
                    const KEY_CHARS: &[u8] =
                        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 _-";
                    KEY_CHARS[rng.index(KEY_CHARS.len())] as char
                })
                .collect();
            Value::Obj(concat::runtime::ObjRef::new(class, key))
        }
        _ => {
            let len = rng.index(4);
            Value::List((0..len).map(|_| random_value(rng, depth - 1)).collect())
        }
    }
}

#[test]
fn value_literals_round_trip() {
    for_cases(0x11E2A1, 256, |rng, i| {
        let v = random_value(rng, 2);
        let text = v.to_literal();
        let back = concat::runtime::parse_value_literal(&text)
            .unwrap_or_else(|e| panic!("case {i}: {text}: {e}"));
        assert_eq!(back, v, "case {i}: {text}");
    });
}

#[test]
fn random_suites_round_trip_through_persistence() {
    use concat::driver::{load_suite, save_suite, MethodCall, SuiteStats, TestCase, TestSuite};
    for_cases(0x5417E, 128, |rng, i| {
        let seed = rng.next_u64();
        let n_cases = rng.int_in(1, 5) as usize;
        let n_args = rng.index(3);
        let args: Vec<Value> = (0..n_args).map(|_| random_value(rng, 2)).collect();
        let cases: Vec<TestCase> = (0..n_cases)
            .map(|c| TestCase {
                id: c,
                transaction_index: c % 3,
                node_path: vec![format!("n{c}"), "end".into()],
                constructor: MethodCall::generated("m1", "C", args.clone()),
                calls: vec![MethodCall::generated("m2", "Work", args.clone())],
            })
            .collect();
        let suite = TestSuite {
            class_name: "C".into(),
            seed,
            cases,
            stats: SuiteStats {
                transactions: 3,
                cases: n_cases,
                truncated: false,
                manual_args: 0,
            },
        };
        let restored = load_suite(&save_suite(&suite)).unwrap();
        assert_eq!(restored, suite, "case {i}");
    });
}

// ---------------------------------------------------------------------
// TFM walks: the least-visited walker covers every reachable edge
// within its published step bound on random DAGs.
// ---------------------------------------------------------------------

#[test]
fn least_visited_walker_covers_random_dags_within_bound() {
    use concat::tfm::{coverage_step_bound, EdgeWalker, WalkPolicy};
    for_cases(0x3A1F, 64, |rng, i| {
        let tfm = random_dag(rng);
        let bound = coverage_step_bound(&tfm);
        let mut pick = |n: usize| rng.int_in(0, n as i64 - 1) as usize;
        let mut walker = EdgeWalker::new(WalkPolicy::LeastVisited);
        walker.restart(&tfm, &mut pick);
        // Restarting at dead ends counts against the bound too: the
        // guarantee is about total work, not just edge traversals.
        for _ in 0..bound {
            let (visited, reachable) = walker.coverage(&tfm);
            if visited == reachable {
                break;
            }
            if walker.step(&tfm, &mut pick).is_none() {
                walker.restart(&tfm, &mut pick);
            }
        }
        let (visited, reachable) = walker.coverage(&tfm);
        assert_eq!(
            visited,
            reachable,
            "case {i}: {visited}/{reachable} edges covered after {} steps (bound {bound})",
            walker.steps()
        );
    });
}
