//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use concat::components::{CObList, CObListFactory};
use concat::bit::{BitControl, BuiltInTest as _};
use concat::driver::{
    DriverGenerator, Expansion, GeneratorConfig, InheritanceMap, InputGenerator, ReuseDecision,
    ReusePlan, TestingHistory,
};
use concat::mutation::MutationSwitch;
use concat::runtime::Value;
use concat::tfm::{enumerate_transactions, NodeId, NodeKind, Tfm};
use concat::tspec::{parse_tspec, print_tspec, ClassSpecBuilder, Domain, MethodCategory};
use proptest::prelude::*;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// TFM: transaction enumeration on random DAGs.
// ---------------------------------------------------------------------

/// Builds a random layered DAG: birth → k task layers → death, with a
/// random subset of forward edges (always keeping one canonical chain so
/// the model validates).
fn arb_dag() -> impl Strategy<Value = Tfm> {
    (2usize..6, proptest::collection::vec(any::<bool>(), 0..40)).prop_map(|(layers, coins)| {
        let mut tfm = Tfm::new("Rand");
        let mut ids: Vec<NodeId> = Vec::new();
        ids.push(tfm.add_node("birth", NodeKind::Birth, ["New"]));
        for i in 0..layers {
            ids.push(tfm.add_node(format!("t{i}"), NodeKind::Task, [format!("M{i}")]));
        }
        ids.push(tfm.add_node("death", NodeKind::Death, ["Drop"]));
        // canonical chain keeps everything reachable and co-reachable
        for w in ids.windows(2) {
            tfm.add_edge(w[0], w[1]);
        }
        // random forward skip edges
        let mut coin = coins.into_iter();
        for i in 0..ids.len() {
            for j in (i + 2)..ids.len() {
                if coin.next().unwrap_or(false) {
                    tfm.add_edge(ids[i], ids[j]);
                }
            }
        }
        tfm
    })
}

/// Counts birth→death paths by dynamic programming (ground truth).
fn path_count(tfm: &Tfm) -> usize {
    fn count(tfm: &Tfm, node: NodeId, memo: &mut Vec<Option<usize>>) -> usize {
        if let Some(c) = memo[node.index()] {
            return c;
        }
        let c = if tfm.node(node).kind == NodeKind::Death {
            1
        } else {
            tfm.successors(node).iter().map(|s| count(tfm, *s, memo)).sum()
        };
        memo[node.index()] = Some(c);
        c
    }
    let mut memo = vec![None; tfm.node_count()];
    tfm.birth_nodes().iter().map(|b| count(tfm, *b, &mut memo)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_validate_and_enumerate_completely(tfm in arb_dag()) {
        prop_assert!(tfm.validate().is_empty());
        let set = enumerate_transactions(&tfm);
        prop_assert!(!set.truncated);
        prop_assert_eq!(set.len(), path_count(&tfm));
        // every transaction is a real path
        for t in &set {
            prop_assert_eq!(tfm.node(t.nodes[0]).kind, NodeKind::Birth);
            prop_assert_eq!(tfm.node(*t.nodes.last().unwrap()).kind, NodeKind::Death);
            for w in t.nodes.windows(2) {
                prop_assert!(tfm.successors(w[0]).contains(&w[1]));
            }
        }
        // no duplicates
        let unique: std::collections::HashSet<_> = set.iter().collect();
        prop_assert_eq!(unique.len(), set.len());
    }

    // -----------------------------------------------------------------
    // Domains and input generation.
    // -----------------------------------------------------------------

    #[test]
    fn generated_inputs_lie_in_their_domain(
        seed in any::<u64>(),
        lo in -1000i64..1000,
        span in 0i64..1000,
        max_len in 1usize..40,
        set_vals in proptest::collection::vec(-50i64..50, 1..8),
    ) {
        let mut gen = InputGenerator::new(seed);
        let domains = vec![
            Domain::int_range(lo, lo + span),
            Domain::float_range(lo as f64, (lo + span) as f64),
            Domain::string(max_len),
            Domain::Set(set_vals.into_iter().map(Value::Int).collect()),
        ];
        for d in &domains {
            for _ in 0..8 {
                let (v, _) = gen.generate(d).unwrap();
                prop_assert!(d.contains(&v), "{v:?} escaped {d}");
                let (b, _) = gen.generate_boundary(d).unwrap();
                prop_assert!(d.contains(&b), "boundary {b:?} escaped {d}");
            }
        }
    }

    // -----------------------------------------------------------------
    // Value ordering: a genuine total order (the sorts rely on it).
    // -----------------------------------------------------------------

    #[test]
    fn value_total_cmp_is_a_total_order(
        xs in proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Bool),
                any::<i64>().prop_map(Value::Int),
                any::<f64>().prop_map(Value::Float),
                "[a-z]{0,6}".prop_map(Value::from),
            ],
            3,
        )
    ) {
        use std::cmp::Ordering;
        let (a, b, c) = (&xs[0], &xs[1], &xs[2]);
        // antisymmetry
        prop_assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
        // reflexivity
        prop_assert_eq!(a.total_cmp(a), Ordering::Equal);
        // transitivity (on the <= relation)
        if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(c), Ordering::Greater);
        }
    }

    // -----------------------------------------------------------------
    // t-spec text format round trip.
    // -----------------------------------------------------------------

    #[test]
    fn tspec_round_trips(
        n_attrs in 0usize..4,
        n_updates in 0usize..4,
        lo in -500i64..500,
        span in 0i64..500,
        max_len in 1usize..30,
        is_abstract in any::<bool>(),
    ) {
        let mut b = ClassSpecBuilder::new("Rand");
        if is_abstract {
            b = b.abstract_class();
        }
        for i in 0..n_attrs {
            b = b.attribute(format!("a{i}"), Domain::int_range(lo, lo + span));
        }
        b = b.constructor("m1", "Rand");
        let mut update_ids = Vec::new();
        for i in 0..n_updates {
            let id = format!("u{i}");
            b = b
                .method(id.clone(), format!("Set{i}"), MethodCategory::Update)
                .param("v", Domain::string(max_len));
            update_ids.push(id);
        }
        b = b.destructor("m2", "~Rand").birth_node("n1", ["m1"]);
        if update_ids.is_empty() {
            b = b.death_node("n2", ["m2"]).edge("n1", "n2");
        } else {
            b = b.task_node("n2", update_ids).death_node("n3", ["m2"])
                .edge("n1", "n2").edge("n2", "n3");
        }
        let spec = b.build().unwrap();
        let text = print_tspec(&spec);
        let reparsed = parse_tspec(&text).unwrap();
        prop_assert_eq!(reparsed, spec);
    }

    // -----------------------------------------------------------------
    // CObList vs VecDeque model equivalence.
    // -----------------------------------------------------------------

    #[test]
    fn coblist_behaves_like_a_deque(ops in proptest::collection::vec(0u8..8, 1..60)) {
        let mut list = CObList::new(BitControl::new_enabled(), MutationSwitch::new());
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut k = 0i64;
        for op in ops {
            k += 1;
            match op {
                0 => {
                    list.add_head(Value::Int(k)).unwrap();
                    model.push_front(k);
                }
                1 => {
                    list.add_tail(Value::Int(k));
                    model.push_back(k);
                }
                2 => {
                    let got = list.remove_head();
                    match model.pop_front() {
                        Some(v) => prop_assert_eq!(got.unwrap(), Value::Int(v)),
                        None => prop_assert!(got.is_err()),
                    }
                }
                3 => {
                    let got = list.remove_tail();
                    match model.pop_back() {
                        Some(v) => prop_assert_eq!(got.unwrap(), Value::Int(v)),
                        None => prop_assert!(got.is_err()),
                    }
                }
                4 => {
                    let idx = k.rem_euclid((model.len() as i64).max(1));
                    let got = list.get_at(idx);
                    match model.get(idx as usize) {
                        Some(v) => prop_assert_eq!(got.unwrap(), Value::Int(*v)),
                        None => prop_assert!(got.is_err()),
                    }
                }
                5 => {
                    let idx = k.rem_euclid((model.len() as i64).max(1));
                    let got = list.remove_at(idx);
                    if (idx as usize) < model.len() {
                        let v = model.remove(idx as usize).unwrap();
                        prop_assert_eq!(got.unwrap(), Value::Int(v));
                    } else {
                        prop_assert!(got.is_err());
                    }
                }
                6 => {
                    prop_assert_eq!(list.find(&Value::Int(k - 1)).unwrap(),
                        model.iter().position(|v| *v == k - 1).map_or(-1, |i| i as i64));
                }
                _ => {
                    list.remove_all();
                    model.clear();
                }
            }
            prop_assert_eq!(list.count(), model.len() as i64);
            prop_assert!(list.invariant_test().is_ok());
            let vals: Vec<i64> = list
                .values()
                .unwrap()
                .into_iter()
                .map(|v| v.as_int().unwrap())
                .collect();
            let expect: Vec<i64> = model.iter().copied().collect();
            prop_assert_eq!(vals, expect);
        }
    }

    // -----------------------------------------------------------------
    // Covering expansion: alternatives and transactions all covered.
    // -----------------------------------------------------------------

    #[test]
    fn covering_expansion_covers_all_alternatives(seed in any::<u64>(), repeats in 1usize..4) {
        let spec = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .constructor("m1b", "C")
            .method("a", "A1", MethodCategory::Update)
            .method("b", "A2", MethodCategory::Update)
            .method("c", "A3", MethodCategory::Update)
            .destructor("m2", "~C")
            .birth_node("n1", ["m1", "m1b"])
            .task_node("n2", ["a", "b", "c"])
            .death_node("n3", ["m2"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .edge("n1", "n3")
            .build()
            .unwrap();
        let mut gen = DriverGenerator::new(GeneratorConfig {
            seed,
            expansion: Expansion::Covering { repeats },
            ..GeneratorConfig::default()
        });
        let suite = gen.generate(&spec).unwrap();
        // every transaction covered
        let txns: std::collections::HashSet<usize> =
            suite.iter().map(|c| c.transaction_index).collect();
        prop_assert_eq!(txns.len(), suite.stats.transactions);
        // every alternative of node n2 appears in some case of txn 0-1
        let mut seen = std::collections::HashSet::new();
        for case in &suite {
            for m in case.method_names() {
                seen.insert(m.to_owned());
            }
        }
        for m in ["A1", "A2", "A3"] {
            prop_assert!(seen.contains(m), "alternative {m} never exercised");
        }
    }

    // -----------------------------------------------------------------
    // Reuse plan laws.
    // -----------------------------------------------------------------

    #[test]
    fn reuse_plan_partitions_and_is_monotone(
        methods_per_case in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..5),
            1..12,
        )
    ) {
        use concat::driver::{HistoryEntry};
        let name = |m: u8| format!("M{m}");
        let history = TestingHistory {
            class_name: "C".into(),
            entries: methods_per_case
                .iter()
                .enumerate()
                .map(|(i, ms)| HistoryEntry {
                    case_id: i,
                    transaction_index: i,
                    methods: ms.iter().map(|m| name(*m)).collect(),
                })
                .collect(),
        };
        let map = InheritanceMap::new()
            .inherit(["M0", "M1", "M2"])
            .redefine(["M3"])
            .add_new(["M4"])
            .lifecycle(["M5"]);
        let plan = ReusePlan::analyze(&history, &map);
        // partition: every case decided exactly once
        let (skip, retest, obsolete) = plan.counts();
        prop_assert_eq!(skip + retest + obsolete, history.entries.len());
        // semantic check per case
        for (case_id, decision) in &plan.decisions {
            let entry = &history.entries[*case_id];
            let has_unknown = entry.methods.iter().any(|m| !["M0","M1","M2","M3","M4","M5"].contains(&m.as_str()));
            let touches_changed = entry.methods.iter().any(|m| m == "M3" || m == "M4");
            match decision {
                ReuseDecision::Obsolete => prop_assert!(has_unknown),
                ReuseDecision::RetestReused => {
                    prop_assert!(touches_changed && !has_unknown)
                }
                ReuseDecision::SkipRetest => {
                    prop_assert!(!touches_changed && !has_unknown)
                }
            }
        }
        // monotonicity: declaring one more method as redefined never
        // moves a case from Retest to Skip.
        let stricter = InheritanceMap::new()
            .inherit(["M1", "M2"])
            .redefine(["M0", "M3"])
            .add_new(["M4"])
            .lifecycle(["M5"]);
        let plan2 = ReusePlan::analyze(&history, &stricter);
        for ((id1, d1), (id2, d2)) in plan.decisions.iter().zip(plan2.decisions.iter()) {
            prop_assert_eq!(id1, id2);
            if *d1 == ReuseDecision::RetestReused {
                prop_assert_ne!(*d2, ReuseDecision::SkipRetest);
            }
        }
    }

    // -----------------------------------------------------------------
    // Factory-constructed components honour per-case isolation.
    // -----------------------------------------------------------------

    #[test]
    fn factory_instances_are_independent(v in -99i64..99) {
        use concat::bit::ComponentFactory as _;
        let f = CObListFactory::default();
        let mut a = f.construct("CObList", &[], BitControl::new_enabled()).unwrap();
        let b = f.construct("CObList", &[], BitControl::new_enabled()).unwrap();
        a.invoke("AddHead", &[Value::Int(v)]).unwrap();
        let ra = a.reporter();
        let rb = b.reporter();
        prop_assert_eq!(ra.get("m_nCount"), Some(&Value::Int(1)));
        prop_assert_eq!(rb.get("m_nCount"), Some(&Value::Int(0)));
    }
}

// -------------------------------------------------------------------
// Persistence: arbitrary suites and values round-trip through text.
// -------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // finite floats only: NaN breaks Eq-based round-trip comparison
        (-1e12f64..1e12).prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::from), // printable ASCII incl. quotes/backslashes
        ("[A-Za-z]{1,6}", "[A-Za-z0-9 _-]{0,8}")
            .prop_map(|(c, k)| Value::Obj(concat::runtime::ObjRef::new(c, k))),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn value_literals_round_trip(v in arb_value()) {
        let text = v.to_literal();
        let back = concat::runtime::parse_value_literal(&text)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn random_suites_round_trip_through_persistence(
        seed in any::<u64>(),
        n_cases in 1usize..6,
        args in proptest::collection::vec(arb_value(), 0..3),
    ) {
        use concat::driver::{load_suite, save_suite, MethodCall, SuiteStats, TestCase, TestSuite};
        let cases: Vec<TestCase> = (0..n_cases)
            .map(|i| TestCase {
                id: i,
                transaction_index: i % 3,
                node_path: vec![format!("n{i}"), "end".into()],
                constructor: MethodCall::generated("m1", "C", args.clone()),
                calls: vec![MethodCall::generated("m2", "Work", args.clone())],
            })
            .collect();
        let suite = TestSuite {
            class_name: "C".into(),
            seed,
            cases,
            stats: SuiteStats {
                transactions: 3,
                cases: n_cases,
                truncated: false,
                manual_args: 0,
            },
        };
        let restored = load_suite(&save_suite(&suite)).unwrap();
        prop_assert_eq!(restored, suite);
    }
}
