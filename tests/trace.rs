//! The Chrome-trace flight recorder end to end: the offline exporter
//! emits valid, causally consistent JSON (begin/end events balance per
//! thread track, parent references resolve); the live sink's output
//! stays loadable after a SIGKILL-style truncation; a journaled
//! campaign resumed from its verdicts still records a well-formed
//! trace; and — the acceptance bar for the recorder itself — verdicts,
//! tables and summaries are byte-identical with tracing on or off for
//! any worker count.

use concat::components::*;
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::driver::{Expansion, GeneratorConfig};
use concat::mutation::{MutationMatrix, MutationRun, MutationSwitch};
use concat::obs::{chrome_trace, ChromeTraceSink, MemorySink, Telemetry};
use concat::report::{render_score_table, summarize_run};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

fn sharded_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .inheritance(sortable_inheritance_map())
    .build()
}

fn small_consumer(seed: u64) -> Consumer {
    Consumer::with_config(GeneratorConfig {
        seed,
        expansion: Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    })
}

const TARGETS: [&str; 2] = ["FindMax", "FindMin"];

fn run_campaign(workers: usize, telemetry: Telemetry) -> MutationRun {
    let bundle = sharded_bundle();
    let consumer = small_consumer(71)
        .with_workers(workers)
        .with_telemetry(telemetry);
    let suite = consumer.generate(&bundle).unwrap();
    consumer
        .evaluate_quality(&bundle, &suite, &TARGETS, &[72])
        .unwrap()
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser — enough to validate the trace
// (objects, arrays, strings, numbers; the shapes the encoder emits).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.bytes.get(self.pos).map(|b| *b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Parses a complete JSON document, requiring all input be consumed.
fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

/// Structural checks over a parsed list of trace events: every `ph` is a
/// known type, B/E nest and balance per thread track, and every span
/// `parent` reference resolves to a span id that exists in the trace.
/// Returns the number of B events checked.
fn check_trace_events(items: &[Json], require_balanced: bool) -> usize {
    let mut open: HashMap<i64, Vec<f64>> = HashMap::new();
    let mut span_ids: HashSet<i64> = HashSet::new();
    let mut parents: Vec<i64> = Vec::new();
    let mut begins = 0usize;
    for item in items {
        let ph = item.str("ph").expect("event has a phase");
        match ph {
            "B" => {
                begins += 1;
                let tid = item.num("tid").expect("B has tid") as i64;
                let args = item.get("args").expect("B has args");
                let id = args.num("id").expect("B has span id") as i64;
                span_ids.insert(id);
                if let Some(parent) = args.num("parent") {
                    parents.push(parent as i64);
                }
                open.entry(tid).or_default().push(item.num("ts").unwrap());
            }
            "E" => {
                let tid = item.num("tid").expect("E has tid") as i64;
                let begin_ts = open
                    .get_mut(&tid)
                    .and_then(|stack| stack.pop())
                    .expect("E matches an open B on its track");
                let end_ts = item.num("ts").expect("E has ts");
                assert!(
                    end_ts >= begin_ts,
                    "span ends ({end_ts}) before it begins ({begin_ts})"
                );
            }
            "C" | "M" | "I" => {}
            other => panic!("unknown phase {other:?}"),
        }
    }
    for parent in parents {
        assert!(
            span_ids.contains(&parent),
            "parent {parent} does not resolve to any span id in the trace"
        );
    }
    if require_balanced {
        for (tid, stack) in open {
            assert!(
                stack.is_empty(),
                "track {tid} left {} span(s) open in a complete trace",
                stack.len()
            );
        }
    }
    begins
}

/// Parses the live sink's line-oriented output (array header, one event
/// per comma-terminated line, never closed), tolerating a truncated
/// final line exactly the way `chrome://tracing` does.
fn parse_live_lines(contents: &str, truncated: bool) -> Vec<Json> {
    let mut lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.remove(0), "[", "live trace opens an array");
    if truncated {
        lines.pop();
    }
    lines
        .iter()
        .map(|line| {
            let line = line.strip_suffix(',').unwrap_or(line);
            parse_json(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"))
        })
        .collect()
}

#[test]
fn offline_export_is_valid_and_causally_consistent() {
    let sink = Arc::new(MemorySink::new());
    let run = run_campaign(2, Telemetry::new(sink.clone()));
    assert!(run.total() >= 60, "enough mutants to matter");

    let trace = chrome_trace(&sink.events());
    let json = parse_json(&trace).expect("the export is one valid JSON array");
    let Json::Arr(items) = json else {
        panic!("trace root is not an array");
    };

    // Process metadata names the campaign.
    let process = items
        .iter()
        .find(|i| i.str("name") == Some("process_name"))
        .expect("process_name metadata present");
    assert_eq!(
        process.get("args").and_then(|a| a.str("name")),
        Some("concat campaign")
    );

    let begins = check_trace_events(&items, true);
    assert!(begins > run.total(), "a span per mutant at minimum");

    // Worker spans sit on their own thread tracks, with thread_name
    // metadata, and mutant spans inherit those tracks.
    let worker_tids: HashSet<i64> = items
        .iter()
        .filter(|i| i.str("cat") == Some("worker"))
        .filter_map(|i| i.num("tid").map(|t| t as i64))
        .collect();
    assert_eq!(worker_tids.len(), 2, "one track per worker");
    assert!(!worker_tids.contains(&1), "workers are off the main track");
    let mutant_tids: HashSet<i64> = items
        .iter()
        .filter(|i| i.str("cat") == Some("mutant") && i.str("ph") == Some("B"))
        .filter_map(|i| i.num("tid").map(|t| t as i64))
        .collect();
    assert_eq!(
        mutant_tids, worker_tids,
        "mutant spans run on their worker's track"
    );
}

#[test]
fn live_sink_output_survives_sigkill_truncation() {
    let sink = Arc::new(ChromeTraceSink::in_memory());
    let _ = run_campaign(2, Telemetry::new(sink.clone()));
    let contents = sink.contents();
    assert!(
        !contents.trim_end().ends_with(']'),
        "the live array is never closed"
    );

    // The complete stream parses line by line (open spans allowed: the
    // absorb happens at merge, so a reader may see starts without ends).
    let items = parse_live_lines(&contents, false);
    check_trace_events(&items, false);
    assert!(items.iter().any(|i| i.str("ph") == Some("B")));

    // A SIGKILL mid-write cuts the file at an arbitrary byte. Everything
    // up to the last complete line must still parse.
    let cut = contents.len() * 2 / 3;
    let truncated = &contents[..cut];
    let items = parse_live_lines(truncated, true);
    assert!(
        items.iter().any(|i| i.str("ph") == Some("B")),
        "the truncated prefix still carries spans"
    );
    check_trace_events(&items, false);
}

#[test]
fn resumed_campaign_records_a_well_formed_trace() {
    let dir = std::env::temp_dir().join("concat-trace-resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.journal");

    // First run populates the journal with every verdict.
    let bundle = sharded_bundle();
    let consumer = small_consumer(71).with_workers(2).with_journal(&journal);
    let suite = consumer.generate(&bundle).unwrap();
    let first = consumer
        .evaluate_quality(&bundle, &suite, &TARGETS, &[72])
        .unwrap();

    // The rerun replays the journal under a live trace sink: the trace
    // must stay well-formed and the verdicts identical.
    let sink = Arc::new(ChromeTraceSink::in_memory());
    let consumer = small_consumer(71)
        .with_workers(2)
        .with_journal(&journal)
        .with_telemetry(Telemetry::new(sink.clone()));
    let suite = consumer.generate(&bundle).unwrap();
    let resumed = consumer
        .evaluate_quality(&bundle, &suite, &TARGETS, &[72])
        .unwrap();
    assert_eq!(first.results, resumed.results);

    let items = parse_live_lines(&sink.contents(), false);
    check_trace_events(&items, false);
    assert!(
        items.iter().any(|i| i.str("cat") == Some("journal")),
        "journal spans recorded on the resume path"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_never_perturbs_verdicts_tables_or_summaries() {
    for workers in [1usize, 4] {
        let untraced = run_campaign(workers, Telemetry::disabled());
        let sink = Arc::new(MemorySink::new());
        let traced = run_campaign(workers, Telemetry::new(sink.clone()));
        assert_eq!(
            untraced.results, traced.results,
            "verdicts must be byte-identical with tracing on/off (workers={workers})"
        );
        let untraced_table = render_score_table(
            "Traced-vs-untraced",
            &MutationMatrix::from_run(&untraced, &TARGETS),
        );
        let traced_table = render_score_table(
            "Traced-vs-untraced",
            &MutationMatrix::from_run(&traced, &TARGETS),
        );
        assert_eq!(untraced_table, traced_table);
        assert_eq!(summarize_run(&untraced), summarize_run(&traced));
        assert!(
            !sink.events().is_empty(),
            "the traced run actually recorded something"
        );
    }
}
