//! Incremental change-aware analysis: a warm re-run of an unchanged
//! campaign is pure journal replay (zero mutants re-execute), and when
//! one method's mutant inventory changes, only that method's mutants
//! re-execute — the other methods' verdicts are salvaged from the old
//! journal across the campaign-global id shift. In every case the
//! resumed run's verdicts, score and rendered report are byte-identical
//! to a cold run, for workers ∈ {1, 4}.
//!
//! The subject is a two-method `Gauge` whose component always reads two
//! instrumented sites in `Scale` — only the *inventory* differs between
//! the narrow (site 0) and wide (sites 0 and 1) campaigns, so widening
//! it changes which mutants exist without changing execution. `Scale`
//! enumerates before `Bump`, so widening also shifts every `Bump`
//! mutant's campaign-global id: the salvage path must remap, not just
//! match.

use concat::bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::mutation::{
    load_campaign_coverage, ClassInventory, MethodInventory, MutationRun, MutationSwitch, VarEnv,
};
use concat::obs::{MemorySink, Summary, Telemetry};
use concat::report::{render_score_table, summarize_run};
use concat::runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat::tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

#[derive(Debug)]
struct Gauge {
    total: i64,
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Gauge {
    const CLASS: &'static str = "Gauge";
}

impl Component for Gauge {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Scale", "Bump", "~Gauge"]
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            "Scale" => {
                let q = args::int(method, a, 0)?;
                let env = VarEnv::new().bind("factor", q).bind("total", self.total);
                let s1 = self.switch.read_int("Scale", 0, "factor", q, &env);
                self.total = self.total.saturating_mul(s1);
                let s2 = self.switch.read_int("Scale", 1, "factor", 1, &env);
                self.total = self.total.saturating_mul(s2);
                Ok(Value::Int(self.total))
            }
            "Bump" => {
                let q = args::int(method, a, 0)?;
                let env = VarEnv::new().bind("step", q).bind("total", self.total);
                let s = self.switch.read_int("Bump", 0, "step", q, &env);
                self.total = self.total.saturating_add(s);
                Ok(Value::Int(self.total))
            }
            "~Gauge" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Gauge {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("total", Value::Int(self.total));
        r
    }
}

#[derive(Debug)]
struct GaugeFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for GaugeFactory {
    fn class_name(&self) -> &str {
        Gauge::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        _a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Gauge" => Ok(Box::new(Gauge {
                total: 1,
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method(Gauge::CLASS, other)),
        }
    }
}

struct GaugeShards;

impl concat::mutation::ClonableFactory for GaugeShards {
    fn class_name(&self) -> &str {
        Gauge::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(GaugeFactory {
            switch: switch.clone(),
        })
    }
}

fn gauge_spec() -> ClassSpec {
    ClassSpecBuilder::new(Gauge::CLASS)
        .constructor("m1", "Gauge")
        .method("m2", "Scale", MethodCategory::Update)
        .param("q", Domain::int_range(1, 5))
        .returns("int")
        .method("m3", "Bump", MethodCategory::Update)
        .param("q", Domain::int_range(1, 9))
        .returns("int")
        .destructor("m4", "~Gauge")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2", "m3"])
        .death_node("n3", ["m4"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n1", "n3")
        .build()
        .expect("Gauge spec is valid")
}

/// The bundle under its narrow (`Scale` site 0) or wide (`Scale` sites
/// 0 and 1) inventory. The component is identical either way; only the
/// enumerated mutant list — and with it every `Bump` mutant's
/// campaign-global id — differs.
fn gauge_bundle(wide_scale: bool) -> SelfTestable {
    let switch = MutationSwitch::new();
    let mut scale = MethodInventory::new("Scale")
        .locals(["factor"])
        .globals_used(["total"])
        .site(0, "factor", "first mul");
    if wide_scale {
        scale = scale.site(1, "factor", "second mul");
    }
    let inventory = ClassInventory::new(Gauge::CLASS)
        .globals(["total"])
        .method(scale)
        .method(
            MethodInventory::new("Bump")
                .locals(["step"])
                .globals_used(["total"])
                .site(0, "step", "add"),
        );
    SelfTestableBuilder::new(
        gauge_spec(),
        Rc::new(GaugeFactory {
            switch: switch.clone(),
        }),
    )
    .mutation(inventory, switch)
    .mutation_shards(Arc::new(GaugeShards))
    .build()
}

/// One incremental campaign over the gauge bundle.
fn campaign(wide_scale: bool, workers: usize, journal: Option<&Path>) -> (MutationRun, Summary) {
    let sink = Arc::new(MemorySink::new());
    let mut consumer = Consumer::with_seed(61)
        .with_workers(workers)
        .with_telemetry(Telemetry::new(sink.clone()))
        .incremental();
    assert!(consumer.is_incremental());
    if let Some(path) = journal {
        consumer = consumer.with_journal(path);
    }
    let bundle = gauge_bundle(wide_scale);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["Scale", "Bump"], &[])
        .expect("campaign completes");
    (run, sink.summary())
}

fn render_report(run: &MutationRun) -> String {
    format!(
        "{}\n{}\n",
        render_score_table(
            "Gauge mutation analysis",
            &concat::mutation::MutationMatrix::from_run(run, &["Scale", "Bump"])
        ),
        summarize_run(run)
    )
}

fn replayed(summary: &Summary) -> u64 {
    summary
        .counters
        .get("mutation.replayed")
        .copied()
        .unwrap_or(0)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concat-incremental-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn warm_rerun_of_unchanged_campaign_is_pure_replay() {
    for workers in [1, 4] {
        let dir = scratch(&format!("warm-w{workers}"));
        let path = dir.join("verdicts.journal");
        let (cold, cold_summary) = campaign(true, workers, Some(&path));
        assert!(cold.total() > 4, "enough mutants to matter");
        assert_eq!(replayed(&cold_summary), 0, "cold run replays nothing");

        let (warm, warm_summary) = campaign(true, workers, Some(&path));
        assert_eq!(
            warm.results, cold.results,
            "workers = {workers}: warm verdicts must be byte-identical"
        );
        assert_eq!(
            render_report(&warm),
            render_report(&cold),
            "workers = {workers}: warm report must be byte-identical"
        );
        assert_eq!(
            replayed(&warm_summary),
            cold.total() as u64,
            "workers = {workers}: every verdict replays — zero mutants re-execute"
        );
        assert_eq!(
            warm_summary.counters.get("mutation.incremental_rebuild"),
            None,
            "an unchanged campaign is a clean match, not a salvage"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn one_method_change_reexecutes_only_that_method() {
    for workers in [1, 4] {
        let dir = scratch(&format!("change-w{workers}"));
        let path = dir.join("verdicts.journal");
        // Cold campaign under the narrow inventory.
        let (narrow, _) = campaign(false, workers, Some(&path));
        let bump_mutants = narrow
            .results
            .iter()
            .filter(|r| r.mutant.method() == "Bump")
            .count();
        assert!(bump_mutants > 0, "Bump contributes mutants");

        // The golden: a cold wide campaign with no journal history.
        let (golden, _) = campaign(true, workers, None);
        assert!(
            golden.total() > narrow.total(),
            "widening Scale adds mutants and shifts Bump's ids"
        );

        // Widen Scale against the narrow journal: Bump's verdicts are
        // salvaged (remapped across the id shift) and only Scale's
        // mutants re-execute.
        let (widened, summary) = campaign(true, workers, Some(&path));
        assert_eq!(
            widened.results, golden.results,
            "workers = {workers}: salvaged run must be byte-identical to cold"
        );
        assert_eq!(
            render_report(&widened),
            render_report(&golden),
            "workers = {workers}: report must be byte-identical to cold"
        );
        assert_eq!(
            replayed(&summary),
            bump_mutants as u64,
            "workers = {workers}: exactly the unchanged method's verdicts replay"
        );
        assert_eq!(
            summary
                .counters
                .get("mutation.incremental_rebuild")
                .copied(),
            Some(1),
            "workers = {workers}: the foreign journal was salvaged, not discarded"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn coverage_sidecar_is_fingerprint_stamped_and_refuses_stale_loads() {
    let dir = scratch("sidecar");
    let path = dir.join("verdicts.journal");
    let (_, _) = campaign(true, 2, Some(&path));

    // The journal's first line is `<crc> campaign <fingerprint>`.
    let head = std::fs::read_to_string(&path).expect("journal readable");
    let header = head.lines().next().expect("journal has a header");
    let fingerprint = u32::from_str_radix(
        header
            .rsplit(' ')
            .next()
            .expect("header carries fingerprint"),
        16,
    )
    .expect("fingerprint is hex");

    let sidecar = PathBuf::from(format!("{}.coverage", path.display()));
    let text = std::fs::read_to_string(&sidecar).expect("coverage sidecar written");
    assert!(
        text.starts_with(&format!("campaign {fingerprint:08x}\n")),
        "sidecar carries the campaign stamp: {}",
        text.lines().next().unwrap_or("")
    );

    let coverage = load_campaign_coverage(&sidecar, fingerprint).expect("stamped sidecar loads");
    assert!(coverage.covers(0, "Scale") || coverage.covers(0, "Bump"));
    let err = load_campaign_coverage(&sidecar, fingerprint ^ 1).expect_err("stale stamp refused");
    assert!(err.contains("stale"), "{err}");

    // An unstamped (pre-fingerprint) sidecar is refused outright.
    let body = text.split_once('\n').expect("stamp line").1;
    std::fs::write(&sidecar, body).expect("strip stamp");
    let err = load_campaign_coverage(&sidecar, fingerprint).expect_err("unstamped refused");
    assert!(err.contains("stamp"), "{err}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
