//! Cross-crate integration: the extension features layered on top of the
//! paper's core system — interclass composites, testability assessment,
//! selection criteria, the typed (redefining) subclass — all working
//! through the public facade.

use concat::bit::{BitControl, ComponentFactory};
use concat::components::*;
use concat::core::{assess, CompositeFactory, CompositeSpecBuilder, Consumer, SelfTestableBuilder};
use concat::driver::{
    select_transactions, DriverGenerator, ReuseDecision, ReusePlan, SelectionCriterion, TestLog,
    TestRunner, TestingHistory,
};
use concat::mutation::MutationSwitch;
use concat::runtime::{TestException, Value};
use concat::tfm::{EnumerationConfig, ModelMetrics};
use std::rc::Rc;

#[test]
fn testability_assessment_of_all_shipped_subjects() {
    let bundles = vec![
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::default())).build(),
        SelfTestableBuilder::new(sortable_spec(), Rc::new(CSortableObListFactory::default()))
            .build(),
        SelfTestableBuilder::new(typed_spec(), Rc::new(CTypedObListFactory::default())).build(),
        SelfTestableBuilder::new(product_spec(), Rc::new(ProductFactory::new())).build(),
    ];
    for bundle in &bundles {
        let report = assess(bundle);
        assert!(report.is_shippable(), "{report}");
        assert!(report.observables > 0, "{report}");
        assert!(!report.metrics.is_linear(), "real models branch: {report}");
    }
}

#[test]
fn model_metrics_match_the_paper_style_counts() {
    let m = ModelMetrics::of(&sortable_spec().tfm);
    assert_eq!(m.nodes, 16);
    assert_eq!(m.edges, 28);
    assert_eq!(m.transactions, 38);
    assert!(!m.transactions_capped);
    assert_eq!(m.cyclomatic, 28 - 16 + 2);
}

#[test]
fn selection_ladder_on_a_real_subject() {
    let spec = sortable_spec();
    let cfg = EnumerationConfig::default();
    let mut previous = 0usize;
    for criterion in SelectionCriterion::LADDER {
        let sel = select_transactions(&spec.tfm, criterion, cfg);
        assert!(sel.is_complete(), "{criterion}");
        assert!(sel.transaction_indices.len() >= previous, "{criterion}");
        previous = sel.transaction_indices.len();
    }
    // Node coverage needs far fewer transactions than full coverage.
    let nodes = select_transactions(&spec.tfm, SelectionCriterion::AllNodes, cfg);
    assert!(nodes.transaction_indices.len() <= 6);
}

#[test]
fn selected_subsets_generate_and_run() {
    let spec = sortable_spec();
    let sel = select_transactions(
        &spec.tfm,
        SelectionCriterion::AllEdges,
        EnumerationConfig::default(),
    );
    let mut gen = DriverGenerator::with_seed(61);
    let suite = gen
        .generate_selected(&spec, Some(&sel.transaction_indices))
        .unwrap();
    assert!(!suite.is_empty());
    let runner = TestRunner::new();
    let result = runner.run_suite(
        &CSortableObListFactory::default(),
        &suite,
        &mut TestLog::new(),
    );
    assert!(result.passed() > 0);
}

#[test]
fn typed_subclass_reuse_complements_sortable() {
    // The two subclasses demonstrate the two halves of §3.4.2:
    // CSortableObList adds methods (retests driven by NEW methods);
    // CTypedObList redefines methods (retests driven by REDEFINED ones).
    let typed_suite = DriverGenerator::with_seed(62)
        .generate(&typed_spec())
        .unwrap();
    let plan = ReusePlan::analyze(
        &TestingHistory::from_suite(&typed_suite),
        &typed_inheritance_map(),
    );
    let retests = plan.reused_case_ids();
    assert!(!retests.is_empty());
    for id in &retests {
        let case = typed_suite.cases.iter().find(|c| c.id == *id).unwrap();
        assert!(
            case.method_names()
                .iter()
                .any(|m| CTypedObList::REDEFINED.contains(m)),
            "every typed retest is justified by a redefinition"
        );
    }
    assert!(plan
        .decisions
        .iter()
        .all(|(_, d)| *d != ReuseDecision::Obsolete));
}

/// Adapter giving `BoundedStack` a parameterless constructor for
/// composite construction.
struct DefaultStack;
impl ComponentFactory for DefaultStack {
    fn class_name(&self) -> &str {
        "BoundedStack"
    }
    fn construct(
        &self,
        constructor: &str,
        args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn concat::bit::TestableComponent>, TestException> {
        if args.is_empty() {
            BoundedStackFactory.construct(constructor, &[Value::Int(8)], ctl)
        } else {
            BoundedStackFactory.construct(constructor, args, ctl)
        }
    }
}

#[test]
fn interclass_composite_full_pipeline_via_facade() {
    let composite = CompositeSpecBuilder::new("Station")
        .role("audit", coblist_spec(), "CObList", "~CObList")
        .role(
            "staging",
            bounded_stack_spec(),
            "BoundedStack",
            "~BoundedStack",
        )
        .birth("create")
        .task("log", ["audit.m2", "audit.m3"])
        .task("stage", ["staging.m2"])
        .task("check", ["audit.m13", "staging.m5"])
        .death("destroy")
        .edge("create", "log")
        .edge("log", "stage")
        .edge("stage", "check")
        .edge("check", "destroy")
        .build();
    let flat = composite.flatten().unwrap();
    assert!(flat.validate().is_empty());

    let factory = CompositeFactory::new(
        composite,
        vec![
            (
                "audit".into(),
                Rc::new(CObListFactory::default()) as Rc<dyn ComponentFactory>,
            ),
            (
                "staging".into(),
                Rc::new(DefaultStack) as Rc<dyn ComponentFactory>,
            ),
        ],
    )
    .unwrap();

    let suite = DriverGenerator::with_seed(63).generate(&flat).unwrap();
    let runner = TestRunner::new();
    let result = runner.run_suite(&factory, &suite, &mut TestLog::new());
    assert_eq!(
        result.failed(),
        0,
        "the linear interclass model passes fully"
    );
    // Interclass observability: both roles appear in one reporter.
    let case = &result.cases[0];
    let report = case.transcript.final_report.as_ref().unwrap();
    assert!(report.iter().any(|(k, _)| k.starts_with("audit.")));
    assert!(report.iter().any(|(k, _)| k.starts_with("staging.")));
}

#[test]
fn composite_suites_persist_and_replay() {
    use concat::driver::{load_suite, save_suite};
    let composite = CompositeSpecBuilder::new("Station")
        .role("audit", coblist_spec(), "CObList", "~CObList")
        .birth("create")
        .task("log", ["audit.m2"])
        .death("destroy")
        .edge("create", "log")
        .edge("log", "destroy")
        .build();
    let flat = composite.flatten().unwrap();
    let suite = DriverGenerator::with_seed(64).generate(&flat).unwrap();
    let restored = load_suite(&save_suite(&suite)).unwrap();
    assert_eq!(restored, suite);
}

#[test]
fn consumer_quality_on_typed_subclass_base_mutants() {
    // Faults in the base's instrumented methods, exercised through the
    // typed subclass's delegating (redefined and inherited) methods.
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        typed_spec(),
        Rc::new(CTypedObListFactory::new(switch.clone())),
    )
    .mutation(coblist_inventory(), switch)
    .inheritance(typed_inheritance_map())
    .build();
    let consumer = Consumer::with_config(concat::driver::GeneratorConfig {
        seed: 65,
        expansion: concat::driver::Expansion::Covering { repeats: 1 },
        ..Default::default()
    });
    let suite = consumer.generate(&bundle).unwrap();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["AddHead"], &[])
        .unwrap();
    assert!(
        run.killed() > 0,
        "base faults observable through the subclass"
    );
}
