//! Resume determinism: a mutation campaign killed mid-run and resumed
//! from its verdict journal must produce a byte-identical report.
//!
//! The paper's test infrastructure mandates test-history maintenance and
//! retrieval (§3.4): a consumer can stop testing a component and pick it
//! back up later. Here the history is the per-campaign verdict journal —
//! these tests simulate the two ways a campaign dies mid-write (a clean
//! kill between records and a torn, half-written record) by truncating
//! and corrupting the journal file directly, then assert the resumed
//! run's verdicts, score, rendered tables and classification telemetry
//! are byte-identical to an uninterrupted run, for workers ∈ {1, 4}.

use concat::bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::mutation::{ClassInventory, MethodInventory, MutationRun, MutationSwitch, VarEnv};
use concat::obs::{MemorySink, Summary, Telemetry};
use concat::report::{render_score_table, summarize_run};
use concat::runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use concat::tspec::{ClassSpec, ClassSpecBuilder, Domain, MethodCategory};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

/// A meter whose `Bump(q)` adds an instrumented step twice; enough sites
/// for a few dozen mutants with a healthy verdict mix.
#[derive(Debug)]
struct Meter {
    total: i64,
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Meter {
    const CLASS: &'static str = "Meter";
}

impl Component for Meter {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Bump", "Total", "~Meter"]
    }

    fn invoke(&mut self, method: &str, a: &[Value]) -> InvokeResult {
        match method {
            "Bump" => {
                let q = args::int(method, a, 0)?;
                let env = VarEnv::new().bind("step", q).bind("total", self.total);
                let s1 = self.switch.read_int("Bump", 0, "step", q, &env);
                self.total = self.total.saturating_add(s1);
                let s2 = self.switch.read_int("Bump", 1, "step", q, &env);
                self.total = self.total.saturating_add(s2);
                Ok(Value::Int(self.total))
            }
            "Total" => Ok(Value::Int(self.total)),
            "~Meter" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Meter {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("total", Value::Int(self.total));
        r
    }
}

#[derive(Debug)]
struct MeterFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for MeterFactory {
    fn class_name(&self) -> &str {
        Meter::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        _a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Meter" => Ok(Box::new(Meter {
                total: 0,
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method(Meter::CLASS, other)),
        }
    }
}

struct MeterShards;

impl concat::mutation::ClonableFactory for MeterShards {
    fn class_name(&self) -> &str {
        Meter::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(MeterFactory {
            switch: switch.clone(),
        })
    }
}

fn meter_spec() -> ClassSpec {
    ClassSpecBuilder::new(Meter::CLASS)
        .constructor("m1", "Meter")
        .method("m2", "Bump", MethodCategory::Update)
        .param("q", Domain::int_range(1, 9))
        .returns("int")
        .method("m3", "Total", MethodCategory::Access)
        .returns("int")
        .destructor("m4", "~Meter")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2", "m3"])
        .death_node("n3", ["m4"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n1", "n3")
        .build()
        .expect("Meter spec is valid")
}

fn meter_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    let inventory = ClassInventory::new(Meter::CLASS).globals(["total"]).method(
        MethodInventory::new("Bump")
            .locals(["step"])
            .globals_used(["total"])
            .site(0, "step", "first add")
            .site(1, "step", "second add"),
    );
    SelfTestableBuilder::new(
        meter_spec(),
        Rc::new(MeterFactory {
            switch: switch.clone(),
        }),
    )
    .mutation(inventory, switch)
    .mutation_shards(Arc::new(MeterShards))
    .build()
}

/// One campaign over the meter bundle; `journal` optionally points the
/// run at a verdict journal.
fn campaign(workers: usize, journal: Option<&Path>) -> (MutationRun, Summary) {
    let sink = Arc::new(MemorySink::new());
    let mut consumer = Consumer::with_seed(61)
        .with_workers(workers)
        .with_telemetry(Telemetry::new(sink.clone()));
    if let Some(path) = journal {
        consumer = consumer.with_journal(path);
    }
    let bundle = meter_bundle();
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["Bump"], &[])
        .expect("campaign completes");
    (run, sink.summary())
}

/// The user-facing report a campaign produces: the Table 2/3-shaped
/// score table plus the one-paragraph summary.
fn render_report(run: &MutationRun) -> String {
    format!(
        "{}\n{}\n",
        render_score_table(
            "Meter mutation analysis",
            &concat::mutation::MutationMatrix::from_run(run, &["Bump"])
        ),
        summarize_run(run)
    )
}

/// The mutant-classification counter totals — the telemetry that must be
/// identical between an uninterrupted run and a resumed one (replayed
/// verdicts re-record their classification counters).
fn classification_totals(summary: &Summary) -> Vec<(&'static str, u64)> {
    let mut totals: Vec<(&'static str, u64)> = summary
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("mutant."))
        .map(|(name, total)| (*name, *total))
        .collect();
    totals.sort();
    totals
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concat-resume-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Cuts the journal back to its header plus the first `k` verdict
/// records — a process kill between two record writes.
fn truncate_to(path: &Path, k: usize) {
    let text = std::fs::read_to_string(path).expect("journal is readable");
    let kept: Vec<&str> = text.lines().take(1 + k).collect();
    std::fs::write(path, format!("{}\n", kept.join("\n"))).expect("truncate");
}

fn assert_resumed_run_is_byte_identical(tear_record: bool) {
    for workers in [1, 4] {
        let dir = scratch(&format!(
            "{}-w{workers}",
            if tear_record { "torn" } else { "clean" }
        ));
        let path = dir.join("verdicts.journal");

        // The golden, uninterrupted campaign (no journal at all).
        let (golden, golden_summary) = campaign(workers, None);
        assert!(golden.total() > 10, "enough mutants to interrupt");

        // A journaled campaign runs to completion, then the journal is
        // cut back to look like a kill at mutant k...
        let (_, _) = campaign(workers, Some(&path));
        let k = golden.total() / 2;
        truncate_to(&path, k);
        if tear_record {
            // ...and optionally a torn, half-written record after it.
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("journal reopens");
            write!(file, "0badc0de verdict 0 surv").expect("torn tail");
        }

        // The resumed campaign replays k verdicts and re-executes the
        // rest: verdicts, score, report and classification telemetry all
        // byte-identical to the uninterrupted run.
        let (resumed, resumed_summary) = campaign(workers, Some(&path));
        assert_eq!(
            resumed.results, golden.results,
            "workers = {workers}: resumed verdict vector must be byte-identical"
        );
        assert_eq!(resumed.score(), golden.score(), "workers = {workers}");
        assert_eq!(
            render_report(&resumed),
            render_report(&golden),
            "workers = {workers}: rendered report must be byte-identical"
        );
        assert_eq!(
            classification_totals(&resumed_summary),
            classification_totals(&golden_summary),
            "workers = {workers}: classification telemetry must match"
        );
        assert_eq!(
            resumed_summary.counters.get("mutation.replayed").copied(),
            Some(k as u64),
            "workers = {workers}: exactly the surviving journal prefix replays"
        );
        assert_eq!(
            golden_summary.counters.get("mutation.replayed"),
            None,
            "uninterrupted run replays nothing"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn killed_campaign_resumes_byte_identical() {
    assert_resumed_run_is_byte_identical(false);
}

#[test]
fn torn_journal_record_is_discarded_and_resume_stays_byte_identical() {
    assert_resumed_run_is_byte_identical(true);
}

#[test]
fn completed_journal_replays_everything_without_reexecution() {
    let dir = scratch("complete");
    let path = dir.join("verdicts.journal");
    let (first, _) = campaign(2, Some(&path));
    let (again, summary) = campaign(2, Some(&path));
    assert_eq!(again.results, first.results);
    assert_eq!(
        summary.counters.get("mutation.replayed").copied(),
        Some(first.total() as u64)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
