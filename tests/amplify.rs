//! Cross-crate integration: mutation-driven test amplification and the
//! coverage-matrix selection fast path, end to end.
//!
//! Covers the headline guarantees: amplification kills previously
//! surviving mutants within the default budget; outcomes (verdicts,
//! rounds, rendered tables) are byte-identical across worker counts and
//! across journal replays; and coverage selection skips a substantial
//! share of case executions without changing a single verdict.

use concat::components::*;
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::driver::{Expansion, GeneratorConfig, TestSuite};
use concat::mutation::*;
use concat::obs::{MemorySink, Summary, Telemetry};
use concat::report::{render_amplification_table, render_score_table};
use std::rc::Rc;
use std::sync::Arc;

fn sortable_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .build()
}

fn sharded_sortable_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .build()
}

fn coblist_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
        .mutation(coblist_inventory(), switch)
        .build()
}

fn small_consumer(seed: u64) -> Consumer {
    Consumer::with_config(GeneratorConfig {
        seed,
        expansion: Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    })
}

/// A deliberately thin base suite: enough to exercise the subject, weak
/// enough to leave survivors for the loop to chase.
fn thin_suite(consumer: &Consumer, bundle: &SelfTestable, cases: usize) -> TestSuite {
    let suite = consumer.generate(bundle).unwrap();
    let ids: Vec<usize> = suite.cases.iter().map(|c| c.id).take(cases).collect();
    suite.filtered(&ids)
}

const TARGETS: [&str; 2] = ["Sort1", "FindMax"];

/// A trimmed loop for the determinism tests — the default budget is
/// exercised by the kill test; determinism does not need four rounds.
fn small_budget() -> AmplifyConfig {
    AmplifyConfig {
        max_rounds: 2,
        max_candidates_per_round: 32,
        ..AmplifyConfig::default()
    }
}

#[test]
fn amplification_kills_surviving_mutants_within_default_budget() {
    let consumer = small_consumer(1999);
    let bundle = sortable_bundle();
    let base = thin_suite(&consumer, &bundle, 6);
    let baseline = consumer
        .evaluate_quality(&bundle, &base, &TARGETS, &[4242])
        .unwrap();
    assert!(
        baseline.survived() + baseline.equivalent() >= 3,
        "the thin suite must leave survivors to chase: {}",
        baseline.survived() + baseline.equivalent()
    );
    let outcome = consumer
        .amplify_quality(&bundle, &base, &TARGETS, &[4242], &AmplifyConfig::default())
        .unwrap();
    assert!(
        outcome.total_kills() >= 3,
        "amplification killed only {} survivor(s): {:?}",
        outcome.total_kills(),
        outcome.rounds
    );
    assert!(outcome.final_score() > outcome.baseline_score);
    assert_eq!(outcome.suite.len(), base.len() + outcome.total_kept());
    // Every kept case kills: kept == 0 iff kills == 0, per round.
    for round in &outcome.rounds {
        assert_eq!(round.kept == 0, round.kills == 0, "{round:?}");
    }
}

#[test]
fn amplified_outcomes_are_identical_across_worker_counts() {
    let bundle = sharded_sortable_bundle();
    let base = thin_suite(&small_consumer(1999), &bundle, 6);
    let outcomes: Vec<_> = [1usize, 4]
        .iter()
        .map(|&workers| {
            small_consumer(1999)
                .with_workers(workers)
                .amplify_quality(
                    &sharded_sortable_bundle(),
                    &base,
                    &TARGETS,
                    &[4242],
                    &small_budget(),
                )
                .unwrap()
        })
        .collect();
    assert_eq!(outcomes[0].run.results, outcomes[1].run.results);
    assert_eq!(outcomes[0].rounds, outcomes[1].rounds);
    assert_eq!(outcomes[0].suite, outcomes[1].suite);
    // The rendered report artefacts are byte-identical too (CI `cmp`s
    // them across worker counts).
    let render = |o: &AmplifyOutcome| {
        let matrix = MutationMatrix::from_run(&o.run, &TARGETS);
        format!(
            "{}{}",
            render_score_table("Results", &matrix),
            render_amplification_table(
                "Amplification",
                &o.rounds,
                o.baseline_score,
                o.final_score()
            )
        )
    };
    assert_eq!(render(&outcomes[0]), render(&outcomes[1]));
}

#[test]
fn amplification_replays_byte_identically_from_journals() {
    let dir = std::env::temp_dir().join("concat-amplify-journal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verdicts.journal");
    let bundle = sharded_sortable_bundle();
    let base = thin_suite(&small_consumer(1999), &bundle, 6);
    let run = || {
        small_consumer(1999)
            .with_workers(2)
            .with_journal(&path)
            .amplify_quality(
                &sharded_sortable_bundle(),
                &base,
                &TARGETS,
                &[4242],
                &small_budget(),
            )
            .unwrap()
    };
    let first = run();
    assert!(path.exists(), "round-0 journal written");
    // Every amplification round journals alongside the main campaign.
    for round in &first.rounds {
        let round_path = dir.join(format!("verdicts.journal.r{}", round.round));
        assert!(round_path.exists(), "round {} journal missing", round.round);
    }
    // A rerun over the completed journals replays every verdict; the
    // outcome is byte-identical to the uninterrupted one.
    let again = run();
    assert_eq!(again.run.results, first.run.results);
    assert_eq!(again.rounds, first.rounds);
    assert_eq!(again.suite, first.suite);
    let _ = std::fs::remove_dir_all(&dir);
}

fn coblist_run(coverage_selection: bool, sink: &Arc<MemorySink>) -> MutationRun {
    let bundle = coblist_bundle();
    let consumer = small_consumer(7).with_telemetry(Telemetry::new(sink.clone()));
    let suite = consumer.generate(&bundle).unwrap();
    let targets = ["AddHead", "RemoveAt", "RemoveHead"];
    let mutants = enumerate_mutants(bundle.inventory().unwrap(), &targets);
    let config = MutationConfig {
        silence_panics: true,
        telemetry: consumer.telemetry().clone(),
        coverage_selection,
        ..MutationConfig::default()
    };
    run_mutation_analysis(
        bundle.factory(),
        bundle.switch().unwrap(),
        &suite,
        &mutants,
        &config,
    )
}

#[test]
fn coverage_selection_skips_executions_without_changing_verdicts() {
    let sink_on = Arc::new(MemorySink::new());
    let sink_off = Arc::new(MemorySink::new());
    let selected = coblist_run(true, &sink_on);
    let full = coblist_run(false, &sink_off);
    // Zero verdict change: the fast path is an optimization, not an
    // approximation.
    assert_eq!(selected.results, full.results);
    assert_eq!(selected.score(), full.score());
    let skipped = Summary::from_events(&sink_on.events())
        .counters
        .get("selection.skipped")
        .copied()
        .unwrap_or(0);
    let total_mutant_executions: u64 = {
        let bundle = coblist_bundle();
        let suite = small_consumer(7).generate(&bundle).unwrap();
        let mutants = enumerate_mutants(
            bundle.inventory().unwrap(),
            &["AddHead", "RemoveAt", "RemoveHead"],
        );
        (suite.len() * mutants.len()) as u64
    };
    assert!(
        skipped * 5 >= total_mutant_executions,
        "selection skipped {skipped} of {total_mutant_executions} mutant-phase \
         case executions (< 20%)"
    );
    let off_summary = Summary::from_events(&sink_off.events());
    assert_eq!(
        off_summary.counters.get("selection.skipped"),
        None,
        "the disabled fast path must not skip anything"
    );
}
