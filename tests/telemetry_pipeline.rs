//! Cross-crate integration for the telemetry spine: a real pipeline run
//! (generate → execute → mutation analysis) recorded into a `MemorySink`
//! must account for every case and every mutant, and `JsonlSink` output
//! must be parseable one-object-per-line.

use concat::components::*;
use concat::core::{Consumer, SelfTestableBuilder};
use concat::driver::{Expansion, GeneratorConfig};
use concat::mutation::{KillReason, MutantStatus, MutationSwitch};
use concat::obs::{JsonlSink, MemorySink, Telemetry};
use std::rc::Rc;
use std::sync::Arc;

fn coblist_bundle() -> concat::core::SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
        .mutation(coblist_inventory(), switch)
        .build()
}

fn consumer_with(seed: u64, telemetry: Telemetry) -> Consumer {
    Consumer::with_config(GeneratorConfig {
        seed,
        expansion: Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    })
    .with_telemetry(telemetry)
}

#[test]
fn generation_and_execution_account_for_every_case() {
    let sink = Arc::new(MemorySink::new());
    let consumer = consumer_with(81, Telemetry::new(sink.clone()));
    let bundle = coblist_bundle();

    let suite = consumer.generate(&bundle).unwrap();
    assert_eq!(sink.span_count("generate"), 1);
    assert_eq!(sink.counter_total("gen.cases"), suite.len() as u64);
    assert!(
        sink.gauge_value("gen.transactions").unwrap() > 0,
        "transaction gauge set during generation"
    );

    let report = consumer.run_suite(&bundle, &suite).unwrap();
    let summary = sink.summary();
    assert_eq!(summary.span("suite").unwrap().count, 1);
    assert_eq!(
        summary.span("case").unwrap().count,
        suite.len() as u64,
        "one case span per generated case"
    );
    let outcomes = summary.counter("case.passed")
        + summary.counter("case.assertion_violated")
        + summary.counter("case.exception")
        + summary.counter("case.panicked");
    assert_eq!(
        outcomes,
        suite.len() as u64,
        "every case lands in exactly one outcome"
    );
    assert_eq!(
        summary.counter("case.passed"),
        report.result.passed() as u64
    );
    assert!(
        summary.counter("call.ok") + summary.counter("call.raised") > 0,
        "per-call counters recorded"
    );
    assert!(
        summary.counter("bit.invariant.checks") > 0,
        "BIT assertions report through the same spine"
    );
}

#[test]
fn mutation_analysis_accounts_for_every_mutant() {
    let sink = Arc::new(MemorySink::new());
    let consumer = consumer_with(82, Telemetry::new(sink.clone()));
    let bundle = coblist_bundle();
    let suite = consumer.generate(&bundle).unwrap();
    sink.clear();

    let run = consumer
        .evaluate_quality(&bundle, &suite, &["AddHead", "RemoveAt"], &[])
        .unwrap();

    let summary = sink.summary();
    assert_eq!(summary.span("mutation").unwrap().count, 1);
    assert_eq!(summary.span("golden").unwrap().count, 1);
    assert_eq!(
        summary.span("mutant").unwrap().count,
        run.total() as u64,
        "one mutant span per enumerated mutant"
    );

    let count = |f: &dyn Fn(&MutantStatus) -> bool| {
        run.results.iter().filter(|r| f(&r.status)).count() as u64
    };
    let killed_by = |want: KillReason| {
        count(&|s| matches!(s, MutantStatus::Killed { reason, .. } if *reason == want))
    };
    assert_eq!(
        summary.counter("mutant.killed.crash"),
        killed_by(KillReason::Crash)
    );
    assert_eq!(
        summary.counter("mutant.killed.assertion"),
        killed_by(KillReason::Assertion)
    );
    assert_eq!(
        summary.counter("mutant.killed.output_diff"),
        killed_by(KillReason::OutputDiff)
    );
    assert_eq!(
        summary.counter("mutant.survived"),
        count(&|s| matches!(s, MutantStatus::Survived))
    );
    assert_eq!(
        summary.counter("mutant.equivalent.presumed"),
        run.equivalent() as u64
    );
    let accounted = summary.counter("mutant.killed.crash")
        + summary.counter("mutant.killed.assertion")
        + summary.counter("mutant.killed.output_diff")
        + summary.counter("mutant.survived")
        + summary.counter("mutant.equivalent.presumed");
    assert_eq!(
        accounted,
        run.total() as u64,
        "every mutant lands in exactly one bucket"
    );
    assert_eq!(
        summary.gauge("mutant.equivalent"),
        Some(run.equivalent() as i64)
    );
}

#[test]
fn jsonl_sink_emits_one_parseable_object_per_line() {
    let sink = Arc::new(JsonlSink::in_memory());
    let consumer = consumer_with(83, Telemetry::new(sink.clone()));
    let bundle = coblist_bundle();
    let suite = consumer.generate(&bundle).unwrap();
    let _ = consumer.run_suite(&bundle, &suite).unwrap();

    let text = sink.contents();
    assert!(!text.is_empty());
    assert!(text.ends_with('\n'));
    let mut saw_span_end = false;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line is one JSON object: {line:?}"
        );
        assert!(line.contains("\"event\":\""), "typed events: {line:?}");
        assert!(!line[1..line.len() - 1].contains('\n'));
        saw_span_end |= line.contains("\"event\":\"span_end\"");
    }
    assert!(saw_span_end, "timed spans present in the stream");
}

#[test]
fn telemetry_does_not_change_pipeline_results() {
    let bundle_a = coblist_bundle();
    let bundle_b = coblist_bundle();
    let plain = consumer_with(84, Telemetry::disabled());
    let instrumented = consumer_with(84, Telemetry::new(Arc::new(MemorySink::new())));

    let suite_a = plain.generate(&bundle_a).unwrap();
    let suite_b = instrumented.generate(&bundle_b).unwrap();
    assert_eq!(
        suite_a, suite_b,
        "generation is deterministic under instrumentation"
    );

    let report_a = plain.run_suite(&bundle_a, &suite_a).unwrap();
    let report_b = instrumented.run_suite(&bundle_b, &suite_b).unwrap();
    assert_eq!(report_a.result.passed(), report_b.result.passed());
    assert_eq!(report_a.result.failed(), report_b.result.failed());
}
