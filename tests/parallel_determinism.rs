//! Determinism of the parallel mutation engine: for a fixed seed, every
//! worker count must yield byte-identical verdict vectors, scores and
//! report tables. The merge is by mutant index, so scheduling noise in
//! the worker pool can reorder *execution* but never *results*.

use concat::components::*;
use concat::core::{Consumer, SelfTestable, SelfTestableBuilder};
use concat::driver::{Expansion, GeneratorConfig};
use concat::mutation::{MutationMatrix, MutationRun, MutationSwitch};
use concat::obs::{MemorySink, Summary, Telemetry};
use concat::report::{render_score_table, summarize_run};
use std::rc::Rc;
use std::sync::Arc;

fn sharded_bundle() -> SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .mutation_shards(Arc::new(CSortableObListFactory::default()))
    .inheritance(sortable_inheritance_map())
    .build()
}

fn small_consumer(seed: u64) -> Consumer {
    Consumer::with_config(GeneratorConfig {
        seed,
        expansion: Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    })
}

const TARGETS: [&str; 2] = ["FindMax", "FindMin"];

fn run_with_workers(workers: usize, telemetry: Telemetry) -> MutationRun {
    let bundle = sharded_bundle();
    let consumer = small_consumer(71)
        .with_workers(workers)
        .with_telemetry(telemetry);
    let suite = consumer.generate(&bundle).unwrap();
    consumer
        .evaluate_quality(&bundle, &suite, &TARGETS, &[72])
        .unwrap()
}

#[test]
fn verdicts_scores_and_tables_are_identical_across_worker_counts() {
    let reference = run_with_workers(1, Telemetry::disabled());
    assert!(
        reference.total() >= 60,
        "enough mutants to make races likely"
    );
    let reference_table = render_score_table(
        "Table 2 (parallel determinism)",
        &MutationMatrix::from_run(&reference, &TARGETS),
    );
    for workers in [2, 8] {
        let run = run_with_workers(workers, Telemetry::disabled());
        assert_eq!(
            run.results, reference.results,
            "workers = {workers}: verdict vector diverged"
        );
        assert_eq!(run.score(), reference.score(), "workers = {workers}");
        assert_eq!(summarize_run(&run), summarize_run(&reference));
        let table = render_score_table(
            "Table 2 (parallel determinism)",
            &MutationMatrix::from_run(&run, &TARGETS),
        );
        assert_eq!(table, reference_table, "workers = {workers}");
    }
}

#[test]
fn telemetry_totals_are_identical_across_worker_counts() {
    // Span *durations* differ run to run, but counter totals, span
    // counts and classification tallies must not.
    let mut summaries = Vec::new();
    for workers in [1, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let run = run_with_workers(workers, Telemetry::new(sink.clone()));
        let summary = Summary::from_events(&sink.events());
        assert_eq!(
            summary.span("mutant").map(|s| s.count),
            Some(run.total() as u64),
            "workers = {workers}: one mutant span per mutant"
        );
        assert_eq!(summary.gauge("mutation.workers"), Some(workers as i64));
        summaries.push((workers, summary, run));
    }
    let (_, reference, _) = &summaries[0];
    for (workers, summary, _) in &summaries[1..] {
        // The sequential entry point records no workers gauge-equivalent
        // difference: every classification counter matches exactly.
        let mutant_counters = |s: &Summary| {
            s.counters
                .iter()
                .filter(|(name, _)| name.starts_with("mutant.") || name.starts_with("mutation."))
                .map(|(name, total)| (*name, *total))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            mutant_counters(summary),
            mutant_counters(reference),
            "workers = {workers}: classification counters diverged"
        );
    }
}
