//! Cross-crate integration: every figure artefact of the paper is
//! regenerable and structurally stable (guards the `figures` bench).

use concat::components::{product_spec, FIGURE2_SCENARIO};
use concat::driver::{render_cpp_suite, render_cpp_test_case, DriverGenerator};
use concat::tfm::{enumerate_transactions, to_dot, to_dot_highlighted};
use concat::tspec::{parse_tspec, print_tspec};

#[test]
fn figure1_interface_is_the_papers() {
    // Figure 1 lists these members of class Product.
    let spec = product_spec();
    let names: Vec<&str> = spec.methods.iter().map(|m| m.name.as_str()).collect();
    for expected in [
        "Product",
        "UpdateName",
        "UpdateQty",
        "UpdatePrice",
        "UpdateProv",
        "ShowAttributes",
        "InsertProduct",
        "RemoveProduct",
        "~Product",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
    // Three constructors, as in Figure 1.
    assert_eq!(names.iter().filter(|n| **n == "Product").count(), 3);
    let attrs: Vec<&str> = spec.attributes.iter().map(|a| a.name.as_str()).collect();
    assert_eq!(attrs, vec!["qty", "name", "price", "prov"]);
}

#[test]
fn figure2_dot_highlights_exactly_the_scenario() {
    let spec = product_spec();
    let transactions = enumerate_transactions(&spec.tfm);
    let scenario = transactions
        .iter()
        .find(|t| {
            let labels: Vec<&str> = t
                .nodes
                .iter()
                .map(|id| spec.tfm.node(*id).label.as_str())
                .collect();
            labels == FIGURE2_SCENARIO
        })
        .expect("scenario path exists");
    let dot = to_dot_highlighted(&spec.tfm, scenario);
    // Highlighted edges: n1->n4, n4->n5, n5->n6, n6->n7.
    for edge in [
        "n1 -> n4 [color=red",
        "n4 -> n5 [color=red",
        "n5 -> n6 [color=red",
        "n6 -> n7 [color=red",
    ] {
        assert!(dot.contains(edge), "missing highlighted {edge}");
    }
    // Un-highlighted render has no red at all.
    assert!(!to_dot(&spec.tfm).contains("color=red"));
}

#[test]
fn figure3_tspec_text_matches_the_papers_domains() {
    let text = print_tspec(&product_spec());
    assert!(text.contains("Class('Product', No, <empty>, ['product.cpp'])"));
    assert!(text.contains("Attribute('qty', range, 1, 99999)"));
    assert!(text.contains("Attribute('name', string, 30)"));
    assert!(text.contains("Attribute('prov', pointer, 'Provider')"));
    assert!(text.contains("Method(m1, 'Product', <empty>, constructor, 0)"));
    assert!(text.contains("Parameter(m5, 'q', range, 1, 99999)"));
    assert!(text.contains("Node(n1, birth, [m1, m2, m3])"));
    assert!(text.contains("Edge(n1, n4)"));
    // And it reparses to the same spec.
    assert_eq!(parse_tspec(&text).unwrap(), product_spec());
}

#[test]
fn figure6_and_7_driver_text_shape() {
    let spec = product_spec();
    let mut gen = DriverGenerator::with_seed(2001);
    concat::components::register_provider_pool(gen.inputs_mut());
    let suite = gen.generate(&spec).unwrap();
    let case = &suite.cases[0];
    let cpp = render_cpp_test_case(case);
    for marker in [
        "template <class ClassType>",
        &format!("void TestCase{} (ClassType* CUT)", case.id),
        "CUT -> InvariantTest();",
        "ofstream LogFile(\"Result.txt\", ios::app);",
        "catch (Error& er)",
        "CUT -> Reporter (\"Result.txt\");",
        "delete CUT;",
    ] {
        assert!(cpp.contains(marker), "figure 6 missing: {marker}");
    }
    let suite_cpp = render_cpp_suite(&suite);
    assert!(suite_cpp.contains("int main()"));
    assert!(suite_cpp.contains("TestCase0<Product>(CUT);"));
}

#[test]
fn figure_artifacts_are_deterministic() {
    let spec = product_spec();
    assert_eq!(print_tspec(&spec), print_tspec(&spec));
    assert_eq!(to_dot(&spec.tfm), to_dot(&spec.tfm));
    let a = DriverGenerator::with_seed(7).generate(&spec).unwrap();
    let b = DriverGenerator::with_seed(7).generate(&spec).unwrap();
    assert_eq!(render_cpp_suite(&a), render_cpp_suite(&b));
}
