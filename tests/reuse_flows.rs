//! Cross-crate integration: test reuse across the class hierarchy and
//! suite/history persistence — the rest of the paper's §3.4
//! infrastructure ("test history creation and maintenance, test
//! retrieval", template-function reuse).

use concat::components::*;
use concat::core::{Consumer, SelfTestableBuilder};
use concat::driver::{
    load_history, load_suite, retarget_suite, save_history, save_suite, RetargetMap, TestLog,
    TestRunner, TestingHistory,
};
use concat::mutation::MutationSwitch;
use std::rc::Rc;

#[test]
fn retargeted_parent_suite_passes_on_subclass() {
    // The paper's template-function reuse: the parent's full suite,
    // instantiated with the subclass as class under test.
    let parent_bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::default())).build();
    let suite = Consumer::with_seed(33).generate(&parent_bundle).unwrap();

    let map = RetargetMap::for_subclass("CObList", "CSortableObList");
    let sub_suite = retarget_suite(&suite, &map);
    assert_eq!(sub_suite.class_name, "CSortableObList");

    let factory = CSortableObListFactory::new(MutationSwitch::new());
    let runner = TestRunner::new();
    let result = runner.run_suite(&factory, &sub_suite, &mut TestLog::new());
    assert_eq!(
        result.failed(),
        0,
        "inherited behaviour satisfies the parent's entire test suite"
    );
}

#[test]
fn retargeted_suite_transcripts_match_parent() {
    // Liskov in transcript form: for inherited methods, the subclass's
    // observable behaviour equals the parent's, case by case.
    let parent_bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::default())).build();
    let suite = Consumer::with_seed(34).generate(&parent_bundle).unwrap();
    let runner = TestRunner::new();
    let parent_result = runner.run_suite(parent_bundle.factory(), &suite, &mut TestLog::new());

    let sub_suite = retarget_suite(
        &suite,
        &RetargetMap::for_subclass("CObList", "CSortableObList"),
    );
    let factory = CSortableObListFactory::new(MutationSwitch::new());
    let sub_result = runner.run_suite(&factory, &sub_suite, &mut TestLog::new());

    for (p, s) in parent_result.cases.iter().zip(sub_result.cases.iter()) {
        // The constructor/destructor render differently (different class
        // names); everything else — outcomes and final state — matches.
        assert_eq!(p.status, s.status, "case {}", p.case_id);
        assert_eq!(
            p.transcript.final_report, s.transcript.final_report,
            "case {}",
            p.case_id
        );
    }
}

#[test]
fn suite_persistence_round_trips_through_text() {
    let bundle =
        SelfTestableBuilder::new(sortable_spec(), Rc::new(CSortableObListFactory::default()))
            .build();
    let suite = Consumer::with_seed(35).generate(&bundle).unwrap();
    let text = save_suite(&suite);
    let restored = load_suite(&text).unwrap();
    assert_eq!(restored, suite);
}

#[test]
fn restored_suite_replays_identically() {
    // Retrieval: a consumer that saved its suite can re-run it later and
    // observe the same outcomes (regression-test usage).
    let bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::default())).build();
    let consumer = Consumer::with_seed(36);
    let suite = consumer.generate(&bundle).unwrap();
    let restored = load_suite(&save_suite(&suite)).unwrap();
    let a = consumer.run_suite(&bundle, &suite).unwrap();
    let b = consumer.run_suite(&bundle, &restored).unwrap();
    assert_eq!(a.result, b.result);
}

#[test]
fn history_persistence_preserves_reuse_decisions() {
    let bundle =
        SelfTestableBuilder::new(sortable_spec(), Rc::new(CSortableObListFactory::default()))
            .inheritance(sortable_inheritance_map())
            .build();
    let consumer = Consumer::with_seed(37);
    let suite = consumer.generate(&bundle).unwrap();
    let history = TestingHistory::from_suite(&suite);
    let restored = load_history(&save_history(&history)).unwrap();
    assert_eq!(restored, history);

    // The reuse plan computed from the restored history is identical.
    let plan_a = concat::driver::ReusePlan::analyze(&history, &sortable_inheritance_map());
    let plan_b = concat::driver::ReusePlan::analyze(&restored, &sortable_inheritance_map());
    assert_eq!(plan_a, plan_b);
}

#[test]
fn abstract_class_workflow_via_retarget() {
    // Advantage (iii) of §3.2: tests generated for an abstract class can
    // be incorporated into a subclass's suite. Model: mark the parent
    // spec abstract, generate from it, and instantiate against the
    // concrete subclass.
    let mut abstract_spec = coblist_spec();
    abstract_spec.is_abstract = true;
    let bundle =
        SelfTestableBuilder::new(abstract_spec, Rc::new(CObListFactory::default())).build();
    let suite = Consumer::with_seed(38).generate(&bundle).unwrap();
    let sub_suite = retarget_suite(
        &suite,
        &RetargetMap::for_subclass("CObList", "CSortableObList"),
    );
    let factory = CSortableObListFactory::default();
    let runner = TestRunner::new();
    let result = runner.run_suite(&factory, &sub_suite, &mut TestLog::new());
    assert_eq!(result.failed(), 0);
}

#[test]
fn regression_check_across_releases() {
    use concat::core::{record_baseline, regression_check};
    use concat::mutation::{FaultPlan, Replacement, ReqConst};
    // Old release: record baseline; new release: one behavioural change
    // (modelled by arming a fault in the shared switch).
    let switch = MutationSwitch::new();
    let bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
            .build();
    let suite = Consumer::with_seed(39).generate(&bundle).unwrap();
    let baseline = record_baseline(&bundle, &suite);
    assert!(regression_check(&bundle, &suite, &baseline).is_clean());

    switch.arm(FaultPlan {
        method: "AddHead".into(),
        site: 0,
        replacement: Replacement::Const(ReqConst::Null),
    });
    let report = regression_check(&bundle, &suite, &baseline);
    switch.disarm();
    assert!(
        !report.is_clean(),
        "the substituted release must be flagged"
    );
}
