//! Cross-crate integration: the §4 mutation-analysis pipeline end to end,
//! scaled down to stay fast in debug builds (the benches run the full
//! Table 2/3 configurations in release).

use concat::components::*;
use concat::core::{Consumer, SelfTestableBuilder};
use concat::driver::Expansion;
use concat::driver::GeneratorConfig;
use concat::mutation::*;
use std::rc::Rc;

fn sortable_bundle() -> concat::core::SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch)
    .inheritance(sortable_inheritance_map())
    .build()
}

fn small_consumer(seed: u64) -> Consumer {
    Consumer::with_config(GeneratorConfig {
        seed,
        expansion: Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    })
}

#[test]
fn enumeration_matches_formula_on_real_inventories() {
    for (inv, methods) in [
        (
            coblist_inventory(),
            vec!["AddHead", "RemoveAt", "RemoveHead"],
        ),
        (
            sortable_inventory(),
            vec!["Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"],
        ),
    ] {
        let methods: Vec<&str> = methods;
        let mutants = enumerate_mutants(&inv, &methods);
        assert_eq!(mutants.len(), expected_count(&inv, &methods));
        assert!(!mutants.is_empty());
    }
}

#[test]
fn findmax_mutants_mostly_die() {
    let bundle = sortable_bundle();
    let consumer = small_consumer(71);
    let suite = consumer.generate(&bundle).unwrap();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["FindMax"], &[72])
        .unwrap();
    assert!(run.total() >= 30, "enough mutants enumerated");
    assert!(run.score() > 0.7, "score was {:.2}", run.score());
    assert_eq!(
        run.total(),
        run.killed() + run.survived() + run.equivalent()
    );
}

#[test]
fn kill_reasons_are_diverse_for_link_surgery_faults() {
    // AddHead faults corrupt chain structure: expect assertion kills
    // (invariant) and domain/output kills; RemoveAt index faults crash.
    let switch = MutationSwitch::new();
    let bundle =
        SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
            .mutation(coblist_inventory(), switch)
            .build();
    let consumer = small_consumer(73);
    let suite = consumer.generate(&bundle).unwrap();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["AddHead", "RemoveAt", "RemoveHead"], &[])
        .unwrap();
    assert!(
        run.killed_by_assertion() > 0,
        "chain corruption hits the invariant"
    );
    let output_kills = run
        .results
        .iter()
        .filter(|r| {
            matches!(
                r.status,
                MutantStatus::Killed {
                    reason: KillReason::OutputDiff,
                    ..
                }
            )
        })
        .count();
    assert!(output_kills > 0, "golden-transcript oracle fires too");
    assert!(run.score() > 0.8, "full base suite kills most base mutants");
}

#[test]
fn assertions_contribute_kills_that_vanish_without_bit() {
    // Run the same mutants against the same suite with BIT off: the
    // assertion-kill share must drop to zero (every kill becomes an
    // output difference or disappears).
    use concat::driver::{differing_cases, TestLog, TestRunner};
    let switch = MutationSwitch::new();
    let factory = CObListFactory::new(switch.clone());
    let consumer = small_consumer(74);
    let bundle = SelfTestableBuilder::new(coblist_spec(), Rc::new(factory.clone()))
        .mutation(coblist_inventory(), switch.clone())
        .build();
    let suite = consumer.generate(&bundle).unwrap();
    let mutants = enumerate_mutants(&coblist_inventory(), &["AddHead"]);

    // BIT off: manual golden/observed comparison.
    let runner = TestRunner::without_bit();
    switch.disarm();
    let golden = runner.run_suite(&factory, &suite, &mut TestLog::new());
    let mut killed_without_bit = 0usize;
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for mutant in &mutants {
        switch.arm(mutant.plan.clone());
        let observed = runner.run_suite(&factory, &suite, &mut TestLog::new());
        if !differing_cases(&golden, &observed).is_empty() {
            killed_without_bit += 1;
        }
    }
    std::panic::set_hook(prev);
    switch.disarm();

    // BIT on, via the engine.
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["AddHead"], &[])
        .unwrap();
    assert!(run.killed_by_assertion() > 0);
    assert!(
        run.killed() >= killed_without_bit,
        "assertions only add detection power: {} (BIT on) vs {killed_without_bit} (BIT off)",
        run.killed()
    );
    let _ = factory.switch();
}

#[test]
fn reduced_subclass_suite_is_weaker_on_base_mutants() {
    // The Table-3 effect, in miniature: the reuse-pruned subclass suite
    // kills fewer base-class mutants than the full suite.
    let bundle = sortable_bundle();
    let consumer = small_consumer(75);
    let suite = consumer.generate(&bundle).unwrap();
    let plan = consumer.subclass_plan(&bundle, &suite).unwrap();
    let reduced = suite.filtered(&plan.reused_case_ids());
    assert!(reduced.len() < suite.len());

    let targets = ["AddHead", "RemoveAt", "RemoveHead"];
    // Note: base-method mutants run against the *subclass* factory — the
    // inherited methods delegate to the instrumented base.
    // Probe suites matter here: without them, survivors would be
    // misclassified as equivalent and the score would be inflated.
    let full_run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[91])
        .unwrap();
    let reduced_run = consumer
        .evaluate_quality(&bundle, &reduced, &targets, &[91])
        .unwrap();
    assert!(
        reduced_run.killed() < full_run.killed(),
        "reduced {} vs full {}",
        reduced_run.killed(),
        full_run.killed()
    );
    assert!(reduced_run.score() < full_run.score());
}

#[test]
fn matrix_totals_agree_with_run_counters() {
    let bundle = sortable_bundle();
    let consumer = small_consumer(76);
    let suite = consumer.generate(&bundle).unwrap();
    let targets = ["FindMin"];
    let run = consumer
        .evaluate_quality(&bundle, &suite, &targets, &[])
        .unwrap();
    let matrix = MutationMatrix::from_run(&run, &targets);
    let overall = matrix.overall();
    assert_eq!(overall.mutants, run.total());
    assert_eq!(overall.killed, run.killed());
    assert_eq!(overall.equivalent, run.equivalent());
    assert!((overall.score() - run.score()).abs() < 1e-12);
}

#[test]
fn armed_switch_does_not_leak_between_analyses() {
    let bundle = sortable_bundle();
    let consumer = small_consumer(77);
    let suite = consumer.generate(&bundle).unwrap();
    let _ = consumer
        .evaluate_quality(&bundle, &suite, &["FindMax"], &[])
        .unwrap();
    assert!(bundle.switch().unwrap().armed().is_none());
    // A follow-up self-test behaves as the original program.
    let report = consumer.run_suite(&bundle, &suite).unwrap();
    assert!(report.result.passed() > 0);
}
