//! Cross-crate integration: the full producer→consumer pipeline on every
//! shipped subject component.

use concat::components::*;
use concat::core::{Consumer, Producer, SelfTestableBuilder};
use concat::driver::{CaseStatus, GeneratorConfig};
use concat::mutation::MutationSwitch;
use std::rc::Rc;

fn stack_bundle() -> concat::core::SelfTestable {
    SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory)).build()
}

fn product_bundle() -> concat::core::SelfTestable {
    SelfTestableBuilder::new(product_spec(), Rc::new(ProductFactory::new())).build()
}

fn coblist_bundle() -> (concat::core::SelfTestable, MutationSwitch) {
    let switch = MutationSwitch::new();
    let b = SelfTestableBuilder::new(coblist_spec(), Rc::new(CObListFactory::new(switch.clone())))
        .mutation(coblist_inventory(), switch.clone())
        .build();
    (b, switch)
}

fn sortable_bundle() -> (concat::core::SelfTestable, MutationSwitch) {
    let switch = MutationSwitch::new();
    let b = SelfTestableBuilder::new(
        sortable_spec(),
        Rc::new(CSortableObListFactory::new(switch.clone())),
    )
    .mutation(sortable_inventory(), switch.clone())
    .inheritance(sortable_inheritance_map())
    .build();
    (b, switch)
}

#[test]
fn every_subject_packages_cleanly() {
    Producer::package(&stack_bundle()).unwrap();
    Producer::package(&product_bundle()).unwrap();
    Producer::package(&coblist_bundle().0).unwrap();
    Producer::package(&sortable_bundle().0).unwrap();
}

#[test]
fn stack_self_test_green() {
    let report = Consumer::with_seed(11).self_test(&stack_bundle()).unwrap();
    assert!(report.all_passed(), "{}", report.summary());
}

#[test]
fn coblist_self_test_green() {
    let (bundle, _) = coblist_bundle();
    let report = Consumer::with_seed(12).self_test(&bundle).unwrap();
    assert!(report.all_passed(), "{}", report.summary());
    assert!(report.assertion_checks > 0);
}

#[test]
fn sortable_self_test_mostly_green_with_logged_error_recovery() {
    let (bundle, _) = sortable_bundle();
    let report = Consumer::with_seed(13).self_test(&bundle).unwrap();
    // A handful of error-recovery transactions (RemoveAt index out of a
    // 1-element list, etc.) violate preconditions by design; everything
    // else passes.
    assert!(report.result.passed() as f64 > 0.9 * report.result.cases.len() as f64);
    for case in &report.result.cases {
        match &case.status {
            CaseStatus::Passed | CaseStatus::AssertionViolated { .. } => {}
            other => panic!("unexpected terminal status {other:?}"),
        }
    }
}

#[test]
fn product_self_test_covers_figure2_scenario() {
    let bundle = product_bundle();
    let report = Consumer::with_seed(14).self_test(&bundle).unwrap();
    let scenario_cases: Vec<_> = report
        .suite
        .iter()
        .filter(|c| c.node_path == FIGURE2_SCENARIO)
        .collect();
    assert!(!scenario_cases.is_empty(), "the Figure-2 path is covered");
    // Those cases insert then read then remove: they must pass.
    for case in scenario_cases {
        let result = report
            .result
            .cases
            .iter()
            .find(|r| r.case_id == case.id)
            .unwrap();
        assert!(result.status.is_pass(), "scenario case {} failed", case.id);
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    let (bundle, _) = sortable_bundle();
    let a = Consumer::with_seed(99).generate(&bundle).unwrap();
    let b = Consumer::with_seed(99).generate(&bundle).unwrap();
    let c = Consumer::with_seed(100).generate(&bundle).unwrap();
    assert_eq!(a, b, "same seed, same suite");
    assert_ne!(a, c, "different seed, different argument values");
}

#[test]
fn runs_are_reproducible() {
    let (bundle, _) = coblist_bundle();
    let consumer = Consumer::with_seed(21);
    let suite = consumer.generate(&bundle).unwrap();
    let r1 = consumer.run_suite(&bundle, &suite).unwrap();
    let r2 = consumer.run_suite(&bundle, &suite).unwrap();
    assert_eq!(r1.result, r2.result);
    assert_eq!(r1.log, r2.log);
}

#[test]
fn bit_disabled_run_skips_assertions() {
    use concat::driver::{TestLog, TestRunner};
    let (bundle, _) = coblist_bundle();
    let suite = Consumer::with_seed(31).generate(&bundle).unwrap();
    let runner = TestRunner::without_bit();
    let result = runner.run_suite(bundle.factory(), &suite, &mut TestLog::new());
    assert_eq!(
        runner.bit_control().checks(),
        0,
        "deployment mode: no checks"
    );
    // Without preconditions some cases raise domain errors instead.
    for case in &result.cases {
        assert!(
            !matches!(case.status, CaseStatus::AssertionViolated { .. }),
            "no assertion can fire with BIT off"
        );
    }
}

#[test]
fn custom_generator_config_flows_through() {
    let (bundle, _) = sortable_bundle();
    let consumer = Consumer::with_config(GeneratorConfig {
        seed: 5,
        expansion: concat::driver::Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    });
    let small = consumer.generate(&bundle).unwrap();
    let big = Consumer::with_seed(5).generate(&bundle).unwrap();
    assert!(small.len() < big.len());
    assert_eq!(small.stats.transactions, big.stats.transactions);
}

#[test]
fn suite_runs_are_independent_across_cases() {
    // Each case constructs a fresh instance: a destructive case must not
    // leak state into the next.
    let (bundle, _) = coblist_bundle();
    let consumer = Consumer::with_seed(44);
    let suite = consumer.generate(&bundle).unwrap();
    let full = consumer.run_suite(&bundle, &suite).unwrap();
    // Running a single case in isolation gives the same transcript as in
    // the full run.
    let lone_id = suite.cases[suite.len() / 2].id;
    let lone_suite = suite.filtered(&[lone_id]);
    let lone = consumer.run_suite(&bundle, &lone_suite).unwrap();
    let in_full = full
        .result
        .cases
        .iter()
        .find(|c| c.case_id == lone_id)
        .unwrap();
    assert_eq!(lone.result.cases[0].transcript, in_full.transcript);
}
