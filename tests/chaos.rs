//! Chaos suite: fault-injection and fail-safe execution, end to end.
//!
//! The three scenarios the hardening layer exists for:
//!
//! 1. a mutant that turns a loop guard into an infinite loop is
//!    *quarantined* by the watchdog deadline instead of hanging the
//!    mutation analysis;
//! 2. injected JSONL sink failures are retried, then the sink degrades
//!    to counting drops — while the test run itself stays green;
//! 3. a call budget exhausts mid-case and the suite keeps running,
//!    reporting the stop instead of failing.
//!
//! Everything is seeded; the quarantine verdicts must be identical
//! across two identical runs. Run single-threaded (`--test-threads=1`)
//! when adding tests that share process-global state.

use concat::bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat::core::{Consumer, SelfTestableBuilder};
use concat::driver::{CaseStatus, Expansion, GeneratorConfig};
use concat::mutation::{
    ClassInventory, MethodInventory, MutantStatus, MutationSwitch, QuarantineReason, VarEnv,
};
use concat::obs::{JsonlSink, Summary, Telemetry, JSONL_WRITE_OP};
use concat::runtime::{
    unknown_method, AssertionViolation, Budget, BudgetResource, Component, FaultInjector,
    FaultKind, InvokeResult, IoPolicy, RetryPolicy, TestException, Value,
};
use concat::tspec::{ClassSpec, ClassSpecBuilder, MethodCategory};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A component whose `Work` method reads its loop guard through the
/// mutation switch. Unmutated, the guard is `1` and the loop exits on
/// the first iteration; any mutant that replaces it with a value `<= 0`
/// (`0`, `-1`, `MININT`, `NULL`, `~1`) spins forever — exactly the
/// non-terminating mutant class the watchdog quarantines.
#[derive(Debug)]
struct Spinner {
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Spinner {
    const CLASS: &'static str = "Spinner";
}

impl Component for Spinner {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Work", "~Spinner"]
    }

    fn invoke(&mut self, method: &str, _a: &[Value]) -> InvokeResult {
        match method {
            "Work" => {
                let env = VarEnv::new();
                loop {
                    // Instrumented read: the switch polls the runner's
                    // cancellation token, so the watchdog can break the
                    // loop a mutant made infinite.
                    let step = self.switch.read_int("Work", 0, "step", 1, &env);
                    if step > 0 {
                        return Ok(Value::Int(step));
                    }
                }
            }
            "~Spinner" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Spinner {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        StateReport::new()
    }
}

#[derive(Debug)]
struct SpinnerFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for SpinnerFactory {
    fn class_name(&self) -> &str {
        Spinner::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        _a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Spinner" => Ok(Box::new(Spinner {
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method(Spinner::CLASS, other)),
        }
    }
}

fn spinner_spec() -> ClassSpec {
    ClassSpecBuilder::new(Spinner::CLASS)
        .constructor("m1", "Spinner")
        .method("m2", "Work", MethodCategory::Update)
        .returns("int")
        .destructor("m3", "~Spinner")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2"])
        .death_node("n3", ["m3"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n1", "n3")
        .build()
        .expect("Spinner spec is valid")
}

fn spinner_inventory() -> ClassInventory {
    ClassInventory::new(Spinner::CLASS).method(MethodInventory::new("Work").locals(["step"]).site(
        0,
        "step",
        "loop guard",
    ))
}

fn spinner_bundle() -> (concat::core::SelfTestable, MutationSwitch) {
    let switch = MutationSwitch::new();
    let bundle = SelfTestableBuilder::new(
        spinner_spec(),
        Rc::new(SpinnerFactory {
            switch: switch.clone(),
        }),
    )
    .mutation(spinner_inventory(), switch.clone())
    .build();
    (bundle, switch)
}

/// The sharding seam for `Spinner`: each analysis worker gets a factory
/// bound to its own switch, so one worker's hanging mutant cannot stall
/// a sibling's instrumented reads.
struct SpinnerShards;

impl concat::mutation::ClonableFactory for SpinnerShards {
    fn class_name(&self) -> &str {
        Spinner::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(SpinnerFactory {
            switch: switch.clone(),
        })
    }
}

fn spinner_sharded_bundle() -> concat::core::SelfTestable {
    let switch = MutationSwitch::new();
    SelfTestableBuilder::new(
        spinner_spec(),
        Rc::new(SpinnerFactory {
            switch: switch.clone(),
        }),
    )
    .mutation(spinner_inventory(), switch)
    .mutation_shards(Arc::new(SpinnerShards))
    .build()
}

fn deadline_consumer(seed: u64, deadline: Duration) -> Consumer {
    Consumer::with_config(GeneratorConfig {
        seed,
        expansion: Expansion::Covering { repeats: 1 },
        ..GeneratorConfig::default()
    })
    .with_budget(Budget::unlimited().with_deadline(deadline))
}

fn quarantine_statuses(consumer: &Consumer) -> Vec<(usize, String)> {
    let (bundle, _switch) = spinner_bundle();
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["Work"], &[])
        .expect("bundle carries mutation support");
    run.results
        .iter()
        .map(|r| (r.mutant.id, format!("{:?}", r.status)))
        .collect()
}

#[test]
fn hanging_mutants_are_quarantined_within_the_deadline() {
    let deadline = Duration::from_millis(200);
    let consumer = deadline_consumer(11, deadline);
    let (bundle, _switch) = spinner_bundle();
    let suite = consumer.generate(&bundle).expect("generation succeeds");

    let started = Instant::now();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["Work"], &[])
        .expect("analysis completes instead of hanging");
    let elapsed = started.elapsed();

    let quarantined: Vec<_> = run
        .results
        .iter()
        .filter(|r| r.status.is_quarantined())
        .collect();
    assert!(
        quarantined.len() >= 2,
        "the <=0 loop-guard replacements hang: {:?}",
        run.results
    );
    for r in &quarantined {
        assert_eq!(
            r.status,
            MutantStatus::Quarantined {
                reason: QuarantineReason::Timeout
            },
            "mutant {} should time out",
            r.mutant.id
        );
    }
    assert_eq!(run.quarantined(), quarantined.len());
    assert_eq!(
        run.total(),
        run.killed() + run.survived() + run.equivalent() + run.quarantined()
    );
    // Each hanging mutant costs at most ~one deadline per case that
    // reaches `Work`; well under the 2 s ceiling per mutant.
    let ceiling = Duration::from_secs(2) * (run.total() as u32);
    assert!(
        elapsed < ceiling,
        "analysis took {elapsed:?} for {} mutants",
        run.total()
    );
    // The run itself is not an error: killed mutants still classified.
    assert!(run.killed() > 0, "terminating mutants die by output diff");
}

#[test]
fn quarantine_verdicts_are_deterministic_across_identical_runs() {
    let first = quarantine_statuses(&deadline_consumer(23, Duration::from_millis(200)));
    let second = quarantine_statuses(&deadline_consumer(23, Duration::from_millis(200)));
    assert_eq!(first, second, "same seed, same budget, same verdicts");
    assert!(
        first.iter().any(|(_, s)| s.contains("Quarantined")),
        "the scenario actually quarantines: {first:?}"
    );
}

#[test]
fn parallel_analysis_quarantines_hangers_without_stalling_siblings() {
    // The CI chaos matrix sets CONCAT_CHAOS_WORKERS to exercise both the
    // workers=1 and workers=N legs of this scenario.
    let workers = std::env::var("CONCAT_CHAOS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let deadline = Duration::from_millis(200);
    let sequential = quarantine_statuses(&deadline_consumer(11, deadline));

    let bundle = spinner_sharded_bundle();
    let consumer = deadline_consumer(11, deadline).with_workers(workers);
    let suite = consumer.generate(&bundle).expect("generation succeeds");
    let started = Instant::now();
    let run = consumer
        .evaluate_quality(&bundle, &suite, &["Work"], &[])
        .expect("parallel analysis completes instead of hanging");
    let elapsed = started.elapsed();

    let parallel: Vec<(usize, String)> = run
        .results
        .iter()
        .map(|r| (r.mutant.id, format!("{:?}", r.status)))
        .collect();
    assert_eq!(
        parallel, sequential,
        "workers = {workers}: sharded verdicts must match the sequential run"
    );
    assert!(
        run.quarantined() >= 2,
        "the <=0 loop-guard replacements hang: {:?}",
        run.results
    );
    // A hanging mutant blocks only the worker that claimed it — the
    // analysis drains every other mutant meanwhile and the whole run
    // stays within a ceiling far below hangers x cases x deadline run
    // back to back with no overlap.
    let ceiling = Duration::from_secs(2) * (run.total() as u32);
    assert!(
        elapsed < ceiling,
        "parallel analysis took {elapsed:?} for {} mutants with {workers} worker(s)",
        run.total()
    );
}

/// A component whose reporter blows up when its charge has gone
/// negative. The reporter runs *outside* the runner's panic-catch
/// boundary, so a mutant that drives the charge negative (`-1`, `MININT`,
/// `~5`) takes the whole analysis worker down with it — the seeded
/// worker-crash scenario. With `live: false` the fuse is inert and the
/// same mutants are classified normally (the panic-free baseline).
#[derive(Debug)]
struct Fuse {
    charge: i64,
    live: bool,
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Fuse {
    const CLASS: &'static str = "Fuse";
}

impl Component for Fuse {
    fn class_name(&self) -> &'static str {
        Self::CLASS
    }

    fn method_names(&self) -> Vec<&'static str> {
        vec!["Charge", "~Fuse"]
    }

    fn invoke(&mut self, method: &str, _a: &[Value]) -> InvokeResult {
        match method {
            "Charge" => {
                let env = VarEnv::new().bind("level", 5);
                self.charge = self.switch.read_int("Charge", 0, "level", 5, &env);
                Ok(Value::Int(self.charge))
            }
            "~Fuse" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), method)),
        }
    }
}

impl BuiltInTest for Fuse {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }

    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }

    fn reporter(&self) -> StateReport {
        assert!(!self.live || self.charge >= 0, "live fuse: negative charge");
        let mut r = StateReport::new();
        r.set("charge", Value::Int(self.charge));
        r
    }
}

#[derive(Debug)]
struct FuseFactory {
    live: bool,
    switch: MutationSwitch,
}

impl ComponentFactory for FuseFactory {
    fn class_name(&self) -> &str {
        Fuse::CLASS
    }

    fn construct(
        &self,
        constructor: &str,
        _a: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Fuse" => Ok(Box::new(Fuse {
                charge: 0,
                live: self.live,
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method(Fuse::CLASS, other)),
        }
    }
}

struct FuseShards {
    live: bool,
}

impl concat::mutation::ClonableFactory for FuseShards {
    fn class_name(&self) -> &str {
        Fuse::CLASS
    }

    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(FuseFactory {
            live: self.live,
            switch: switch.clone(),
        })
    }
}

fn fuse_spec() -> ClassSpec {
    ClassSpecBuilder::new(Fuse::CLASS)
        .constructor("m1", "Fuse")
        .method("m2", "Charge", MethodCategory::Update)
        .returns("int")
        .destructor("m3", "~Fuse")
        .birth_node("n1", ["m1"])
        .task_node("n2", ["m2"])
        .death_node("n3", ["m3"])
        .edge("n1", "n2")
        .edge("n2", "n3")
        .edge("n1", "n3")
        .build()
        .expect("Fuse spec is valid")
}

fn fuse_bundle(live: bool) -> concat::core::SelfTestable {
    let switch = MutationSwitch::new();
    let inventory = ClassInventory::new(Fuse::CLASS).method(
        MethodInventory::new("Charge")
            .locals(["level"])
            .site(0, "level", "charge level"),
    );
    SelfTestableBuilder::new(
        fuse_spec(),
        Rc::new(FuseFactory {
            live,
            switch: switch.clone(),
        }),
    )
    .mutation(inventory, switch)
    .mutation_shards(Arc::new(FuseShards { live }))
    .build()
}

#[test]
fn worker_panics_are_contained_and_the_campaign_completes() {
    let workers = std::env::var("CONCAT_CHAOS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let run_fuse = |live: bool, telemetry: Telemetry| {
        let bundle = fuse_bundle(live);
        let consumer = Consumer::with_seed(53)
            .with_workers(workers)
            .with_telemetry(telemetry);
        let suite = consumer.generate(&bundle).expect("generation succeeds");
        consumer
            .evaluate_quality(&bundle, &suite, &["Charge"], &[])
            .expect("campaign completes despite worker panics")
    };
    let baseline = run_fuse(false, Telemetry::disabled());
    let sink = Arc::new(concat::obs::MemorySink::new());
    let run = run_fuse(true, Telemetry::new(sink.clone()));

    let crashed: Vec<usize> = run
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            r.status
                == MutantStatus::Quarantined {
                    reason: QuarantineReason::WorkerCrash,
                }
        })
        .map(|(index, _)| index)
        .collect();
    assert!(
        !crashed.is_empty(),
        "negative-charge mutants must crash a worker: {:?}",
        run.results
    );
    // Only the in-flight mutants were quarantined; every other verdict
    // matches the panic-free baseline exactly.
    assert_eq!(run.results.len(), baseline.results.len());
    for (index, (got, want)) in run.results.iter().zip(&baseline.results).enumerate() {
        if crashed.contains(&index) {
            continue;
        }
        assert_eq!(got, want, "mutant {index} must be unaffected by crashes");
    }
    assert_eq!(
        run.killed() + run.survived() + run.equivalent() + run.quarantined(),
        run.total(),
        "campaign completed with a verdict for every mutant"
    );
    let summary = Summary::from_events(&sink.events());
    assert_eq!(
        summary
            .counters
            .get("mutation.worker_crash")
            .copied()
            .unwrap_or(0) as usize,
        crashed.len()
    );
}

#[test]
fn jsonl_write_faults_retry_then_degrade_while_the_run_stays_green() {
    // Nth-write fault: one transient fault is absorbed by retries.
    let injector = FaultInjector::seeded(5);
    injector.fail_nth(JSONL_WRITE_OP, 3, FaultKind::Transient);
    let sink = Arc::new(JsonlSink::in_memory_with_policy(
        IoPolicy::with_retry(RetryPolicy::no_delay(3)).injector(injector),
    ));
    let consumer = Consumer::with_seed(31).with_telemetry(Telemetry::new(sink.clone()));
    let report = consumer
        .self_test(&stack_bundle())
        .expect("self-test runs despite sink faults");
    assert!(report.all_passed(), "{}", report.summary());
    assert!(!sink.is_degraded(), "one transient is absorbed");
    assert!(sink.retries() >= 1);
    assert_eq!(sink.dropped_events(), 0);

    // Persistent faults: retries exhaust, the sink degrades to counting
    // drops — and the run STILL completes green.
    let injector = FaultInjector::seeded(5);
    injector.fail_always(JSONL_WRITE_OP, FaultKind::Persistent);
    let sink = Arc::new(JsonlSink::in_memory_with_policy(
        IoPolicy::with_retry(RetryPolicy::no_delay(2)).injector(injector),
    ));
    let consumer = Consumer::with_seed(31).with_telemetry(Telemetry::new(sink.clone()));
    let report = consumer
        .self_test(&stack_bundle())
        .expect("telemetry loss must not fail the run");
    assert!(report.all_passed(), "{}", report.summary());
    assert!(sink.is_degraded());
    assert!(sink.dropped_events() > 0);
    assert!(sink.contents().is_empty(), "nothing got through");
}

#[test]
fn call_budget_exhausts_mid_case_without_failing_the_run() {
    let consumer = Consumer::with_seed(41).with_budget(Budget::unlimited().with_max_calls(1));
    let report = consumer
        .self_test(&stack_bundle())
        .expect("budget stops are reported, not raised");
    let stopped: Vec<_> = report
        .result
        .cases
        .iter()
        .filter(|c| {
            matches!(
                c.status,
                CaseStatus::BudgetExhausted {
                    resource: BudgetResource::Calls,
                    ..
                }
            )
        })
        .collect();
    assert!(!stopped.is_empty(), "multi-call cases hit the 1-call cap");
    assert_eq!(report.result.harness_stops(), stopped.len());
    assert!(!report.notes().is_empty(), "stops surface as notes");
    assert!(report.summary().contains("harness stop(s)"));
    // A stopped case still carries the transcript prefix up to the cap:
    // the constructor record plus at most the one budgeted call.
    assert!(stopped.iter().all(|c| c.transcript.records.len() <= 2));
}

#[test]
fn persisting_through_injected_faults_degrades_and_counts() {
    let sink = Arc::new(concat::obs::MemorySink::new());
    let consumer = Consumer::with_seed(47).with_telemetry(Telemetry::new(sink.clone()));
    let report = consumer.self_test(&stack_bundle()).expect("self-test runs");

    let dir = std::env::temp_dir().join("concat-chaos-persist");
    let _ = std::fs::remove_dir_all(&dir);
    let injector = FaultInjector::seeded(7);
    injector.fail_nth(concat::driver::SUITE_SAVE_OP, 1, FaultKind::Transient);
    injector.fail_always(concat::driver::LOG_WRITE_OP, FaultKind::Transient);
    let policy = IoPolicy::with_retry(RetryPolicy::no_delay(2)).injector(injector);

    let session = consumer.persist_session(&report, &dir, &policy);
    assert!(session.suite_path.is_some(), "suite recovers after retry");
    assert!(session.log_path.is_none(), "log writes stay exhausted");
    assert_eq!(session.notes.len(), 1, "{:?}", session.notes);
    assert!(
        session.retries >= 2,
        "retries were spent: {}",
        session.retries
    );

    let summary = Summary::from_events(&sink.events());
    assert!(summary.counters.get("harden.retry").copied().unwrap_or(0) >= 2);
    assert_eq!(
        summary
            .counters
            .get("harden.degraded")
            .copied()
            .unwrap_or(0),
        1
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn stack_bundle() -> concat::core::SelfTestable {
    use concat::components::{bounded_stack_spec, BoundedStackFactory};
    SelfTestableBuilder::new(bounded_stack_spec(), Rc::new(BoundedStackFactory)).build()
}
