//! The transaction flow model (TFM) graph.
//!
//! Beizer's transaction flow model, adapted by Siegel to class-level unit
//! testing (paper §3.2): a directed graph whose nodes are public features of
//! the class and whose paths from a *birth* node (a constructor) to a *death*
//! node (the destructor) are the allowable transactions of an object.
//!
//! A node may group several *alternative* methods (Figure 3 of the paper
//! lists `Node(n1, ..., [m1, m2])` where `m1`/`m2` are the two constructors):
//! any one of them realizes the node when a transaction is executed.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a node within its [`Tfm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index of the node in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0 + 1)
    }
}

/// Role a node plays in the life cycle of the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Object creation: the node's methods are constructors.
    Birth,
    /// An intermediate processing task.
    Task,
    /// Object destruction: transactions end here.
    Death,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Birth => "birth",
            NodeKind::Task => "task",
            NodeKind::Death => "death",
        };
        f.write_str(s)
    }
}

/// A node of the TFM: a public feature (or set of alternative methods).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Stable label used in specs and DOT output (e.g. `"n3"` or `"update"`).
    pub label: String,
    /// Life-cycle role.
    pub kind: NodeKind,
    /// Alternative methods realizing this node. Must be non-empty.
    pub methods: Vec<String>,
}

/// A directed edge: "task A is immediately followed by task B".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// Errors detected while building or validating a TFM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfmError {
    /// A node was declared with an empty method list.
    EmptyNode {
        /// Label of the offending node.
        label: String,
    },
    /// Two nodes share the same label.
    DuplicateLabel {
        /// The non-unique label.
        label: String,
    },
    /// An edge references a node id that does not exist.
    UnknownNode {
        /// The out-of-range id.
        id: usize,
    },
    /// The model has no birth node: no transaction can start.
    NoBirth,
    /// The model has no death node: no transaction can finish.
    NoDeath,
    /// A node can never appear in any transaction.
    Unreachable {
        /// Label of the unreachable node.
        label: String,
    },
    /// A node cannot reach any death node, so transactions entering it
    /// never terminate.
    DeadEnd {
        /// Label of the dead-end node.
        label: String,
    },
    /// A birth node has an incoming edge (objects cannot be re-born).
    EdgeIntoBirth {
        /// Label of the birth node.
        label: String,
    },
    /// A death node has an outgoing edge (objects cannot act after death).
    EdgeFromDeath {
        /// Label of the death node.
        label: String,
    },
}

impl fmt::Display for TfmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfmError::EmptyNode { label } => write!(f, "node {label} has no methods"),
            TfmError::DuplicateLabel { label } => write!(f, "duplicate node label {label}"),
            TfmError::UnknownNode { id } => write!(f, "edge references unknown node index {id}"),
            TfmError::NoBirth => f.write_str("model has no birth node"),
            TfmError::NoDeath => f.write_str("model has no death node"),
            TfmError::Unreachable { label } => {
                write!(f, "node {label} is unreachable from every birth node")
            }
            TfmError::DeadEnd { label } => {
                write!(f, "node {label} cannot reach any death node")
            }
            TfmError::EdgeIntoBirth { label } => {
                write!(f, "birth node {label} has an incoming edge")
            }
            TfmError::EdgeFromDeath { label } => {
                write!(f, "death node {label} has an outgoing edge")
            }
        }
    }
}

impl std::error::Error for TfmError {}

/// A transaction flow model: the test model of the paper's t-spec.
///
/// # Examples
///
/// ```
/// use concat_tfm::{NodeKind, Tfm};
///
/// let mut tfm = Tfm::new("Product");
/// let birth = tfm.add_node("create", NodeKind::Birth, ["Product"]);
/// let show = tfm.add_node("show", NodeKind::Task, ["ShowAttributes"]);
/// let death = tfm.add_node("destroy", NodeKind::Death, ["~Product"]);
/// tfm.add_edge(birth, show);
/// tfm.add_edge(show, death);
/// assert!(tfm.validate().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tfm {
    class_name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Tfm {
    /// Creates an empty model for `class_name`.
    pub fn new(class_name: impl Into<String>) -> Self {
        Tfm {
            class_name: class_name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The class this model describes.
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// Adds a node and returns its id.
    pub fn add_node<I, S>(&mut self, label: impl Into<String>, kind: NodeKind, methods: I) -> NodeId
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let node = Node {
            label: label.into(),
            kind,
            methods: methods.into_iter().map(Into::into).collect(),
        };
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a directed edge between two existing nodes. Parallel edges are
    /// collapsed (adding the same edge twice is a no-op).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        let e = Edge { from, to };
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// The nodes, in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes (the paper reports "16 nodes").
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (the paper reports "43 links").
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Finds a node id by label.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.label == label).map(NodeId)
    }

    /// Ids of all birth nodes.
    pub fn birth_nodes(&self) -> Vec<NodeId> {
        self.ids_of_kind(NodeKind::Birth)
    }

    /// Ids of all death nodes.
    pub fn death_nodes(&self) -> Vec<NodeId> {
        self.ids_of_kind(NodeKind::Death)
    }

    fn ids_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == kind)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Successors of `id`, in edge insertion order.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.from == id)
            .map(|e| e.to)
            .collect()
    }

    /// Predecessors of `id`, in edge insertion order.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.to == id)
            .map(|e| e.from)
            .collect()
    }

    /// Every method name referenced by any node, sorted and deduplicated.
    pub fn referenced_methods(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self
            .nodes
            .iter()
            .flat_map(|n| n.methods.iter().map(String::as_str))
            .collect();
        set.into_iter().collect()
    }

    /// Validates the model, returning every problem found (empty = valid).
    ///
    /// Checks: non-empty nodes, unique labels, birth/death presence, no
    /// edges into birth or out of death, reachability from birth, and
    /// co-reachability of death.
    pub fn validate(&self) -> Vec<TfmError> {
        let mut errors = Vec::new();
        let mut seen = BTreeSet::new();
        for node in &self.nodes {
            if node.methods.is_empty() {
                errors.push(TfmError::EmptyNode {
                    label: node.label.clone(),
                });
            }
            if !seen.insert(node.label.as_str()) {
                errors.push(TfmError::DuplicateLabel {
                    label: node.label.clone(),
                });
            }
        }
        let births = self.birth_nodes();
        let deaths = self.death_nodes();
        if births.is_empty() {
            errors.push(TfmError::NoBirth);
        }
        if deaths.is_empty() {
            errors.push(TfmError::NoDeath);
        }
        for e in &self.edges {
            if self
                .nodes
                .get(e.to.0)
                .is_some_and(|n| n.kind == NodeKind::Birth)
            {
                errors.push(TfmError::EdgeIntoBirth {
                    label: self.nodes[e.to.0].label.clone(),
                });
            }
            if self
                .nodes
                .get(e.from.0)
                .is_some_and(|n| n.kind == NodeKind::Death)
            {
                errors.push(TfmError::EdgeFromDeath {
                    label: self.nodes[e.from.0].label.clone(),
                });
            }
        }
        // Forward reachability from birth nodes.
        let reachable = self.closure(&births, |id| self.successors(id));
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind != NodeKind::Birth && !reachable.contains(&NodeId(i)) {
                errors.push(TfmError::Unreachable {
                    label: node.label.clone(),
                });
            }
        }
        // Backward reachability from death nodes.
        let coreachable = self.closure(&deaths, |id| self.predecessors(id));
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind != NodeKind::Death && !coreachable.contains(&NodeId(i)) {
                errors.push(TfmError::DeadEnd {
                    label: node.label.clone(),
                });
            }
        }
        errors
    }

    fn closure<F>(&self, seeds: &[NodeId], next: F) -> BTreeSet<NodeId>
    where
        F: Fn(NodeId) -> Vec<NodeId>,
    {
        let mut seen: BTreeSet<NodeId> = seeds.iter().copied().collect();
        let mut stack: Vec<NodeId> = seeds.to_vec();
        while let Some(id) = stack.pop() {
            for succ in next(id) {
                if seen.insert(succ) {
                    stack.push(succ);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> Tfm {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New"]);
        let b = t.add_node("b", NodeKind::Task, ["Work"]);
        let c = t.add_node("c", NodeKind::Death, ["Drop"]);
        t.add_edge(a, b);
        t.add_edge(b, c);
        t
    }

    #[test]
    fn counts_and_lookup() {
        let t = linear();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.class_name(), "C");
        let b = t.node_by_label("b").unwrap();
        assert_eq!(t.node(b).methods, vec!["Work".to_owned()]);
        assert!(t.node_by_label("zzz").is_none());
    }

    #[test]
    fn valid_linear_model_has_no_errors() {
        assert!(linear().validate().is_empty());
    }

    #[test]
    fn successors_and_predecessors() {
        let t = linear();
        let a = t.node_by_label("a").unwrap();
        let b = t.node_by_label("b").unwrap();
        let c = t.node_by_label("c").unwrap();
        assert_eq!(t.successors(a), vec![b]);
        assert_eq!(t.predecessors(c), vec![b]);
        assert!(t.predecessors(a).is_empty());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut t = linear();
        let a = t.node_by_label("a").unwrap();
        let b = t.node_by_label("b").unwrap();
        t.add_edge(a, b);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn missing_birth_and_death_detected() {
        let mut t = Tfm::new("C");
        t.add_node("only", NodeKind::Task, ["M"]);
        let errs = t.validate();
        assert!(errs.contains(&TfmError::NoBirth));
        assert!(errs.contains(&TfmError::NoDeath));
    }

    #[test]
    fn unreachable_and_dead_end_detected() {
        let mut t = linear();
        t.add_node("island", NodeKind::Task, ["M"]);
        let errs = t.validate();
        assert!(errs.contains(&TfmError::Unreachable {
            label: "island".into()
        }));
        assert!(errs.contains(&TfmError::DeadEnd {
            label: "island".into()
        }));
    }

    #[test]
    fn empty_node_detected() {
        let mut t = linear();
        t.add_node("hollow", NodeKind::Task, Vec::<String>::new());
        let errs = t.validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TfmError::EmptyNode { label } if label == "hollow")));
    }

    #[test]
    fn duplicate_label_detected() {
        let mut t = linear();
        t.add_node("a", NodeKind::Task, ["M"]);
        let errs = t.validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TfmError::DuplicateLabel { label } if label == "a")));
    }

    #[test]
    fn edges_violating_lifecycle_detected() {
        let mut t = linear();
        let a = t.node_by_label("a").unwrap();
        let b = t.node_by_label("b").unwrap();
        let c = t.node_by_label("c").unwrap();
        t.add_edge(b, a);
        t.add_edge(c, b);
        let errs = t.validate();
        assert!(errs.contains(&TfmError::EdgeIntoBirth { label: "a".into() }));
        assert!(errs.contains(&TfmError::EdgeFromDeath { label: "c".into() }));
    }

    #[test]
    fn referenced_methods_sorted_unique() {
        let mut t = linear();
        t.add_node("b2", NodeKind::Task, ["Work", "Another"]);
        assert_eq!(
            t.referenced_methods(),
            vec!["Another", "Drop", "New", "Work"]
        );
    }

    #[test]
    fn error_display_nonempty() {
        let errs = vec![
            TfmError::EmptyNode { label: "x".into() },
            TfmError::NoBirth,
            TfmError::DeadEnd { label: "x".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
