//! Model metrics: size and complexity measures of a TFM.
//!
//! Testability assessment needs numbers — the paper reports its models as
//! "16 nodes and 43 links" and its suites by transaction counts.
//! [`ModelMetrics`] computes those plus the standard graph-complexity
//! measures testers use to judge a model before committing to it.

use crate::graph::{NodeKind, Tfm};
use crate::paths::{enumerate_transactions_with, EnumerationConfig};
use std::fmt;

/// Size/complexity measures of one transaction flow model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (links).
    pub edges: usize,
    /// Number of birth nodes.
    pub births: usize,
    /// Number of death nodes.
    pub deaths: usize,
    /// Transactions under the default cycle bound (capped; see
    /// `transactions_capped`).
    pub transactions: usize,
    /// True when the transaction count hit the metric's cap.
    pub transactions_capped: bool,
    /// McCabe cyclomatic complexity `E - N + 2·P` with `P = 1` (the model
    /// is connected by validation).
    pub cyclomatic: i64,
    /// Maximum out-degree over all nodes (decision breadth).
    pub max_out_degree: usize,
    /// Total method alternatives across nodes (case-multiplication
    /// potential of the covering expansion).
    pub total_alternatives: usize,
    /// Length of the longest transaction (nodes on the path).
    pub longest_transaction: usize,
    /// Length of the shortest transaction.
    pub shortest_transaction: usize,
}

impl ModelMetrics {
    /// Cap used for the transaction count (prevents metric computation
    /// itself from exploding).
    pub const TRANSACTION_CAP: usize = 100_000;

    /// Computes all metrics for `tfm`.
    pub fn of(tfm: &Tfm) -> ModelMetrics {
        let set = enumerate_transactions_with(
            tfm,
            EnumerationConfig {
                cycle_bound: 1,
                max_transactions: Self::TRANSACTION_CAP,
            },
        );
        let lengths: Vec<usize> = set.iter().map(|t| t.len()).collect();
        let max_out = tfm
            .nodes()
            .map(|(id, _)| tfm.successors(id).len())
            .max()
            .unwrap_or(0);
        ModelMetrics {
            nodes: tfm.node_count(),
            edges: tfm.edge_count(),
            births: tfm.birth_nodes().len(),
            deaths: tfm.death_nodes().len(),
            transactions: set.len(),
            transactions_capped: set.truncated,
            cyclomatic: tfm.edge_count() as i64 - tfm.node_count() as i64 + 2,
            max_out_degree: max_out,
            total_alternatives: tfm.nodes().map(|(_, n)| n.methods.len()).sum(),
            longest_transaction: lengths.iter().copied().max().unwrap_or(0),
            shortest_transaction: lengths.iter().copied().min().unwrap_or(0),
        }
    }

    /// True when the model looks like a straight line (no branching).
    pub fn is_linear(&self) -> bool {
        self.max_out_degree <= 1
    }
}

impl fmt::Display for ModelMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} links, {} transaction(s){}; cyclomatic {}, \
             max out-degree {}, path lengths {}..{}",
            self.nodes,
            self.edges,
            self.transactions,
            if self.transactions_capped {
                " (capped)"
            } else {
                ""
            },
            self.cyclomatic,
            self.max_out_degree,
            self.shortest_transaction,
            self.longest_transaction,
        )
    }
}

/// Per-node coverage weight: in how many transactions does each node
/// appear? Nodes appearing in few transactions are fragile coverage
/// (paper §3.4.1: transaction coverage is "useful to reveal faults in
/// transactions, specially those used less frequently").
pub fn node_transaction_counts(tfm: &Tfm) -> Vec<(String, usize)> {
    let set = enumerate_transactions_with(
        tfm,
        EnumerationConfig {
            cycle_bound: 1,
            max_transactions: ModelMetrics::TRANSACTION_CAP,
        },
    );
    tfm.nodes()
        .map(|(id, node)| {
            let count = set.iter().filter(|t| t.nodes.contains(&id)).count();
            (node.label.clone(), count)
        })
        .collect()
}

/// The kind distribution `(births, tasks, deaths)` of a model.
pub fn kind_distribution(tfm: &Tfm) -> (usize, usize, usize) {
    let mut dist = (0, 0, 0);
    for (_, node) in tfm.nodes() {
        match node.kind {
            NodeKind::Birth => dist.0 += 1,
            NodeKind::Task => dist.1 += 1,
            NodeKind::Death => dist.2 += 1,
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn diamond() -> Tfm {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New", "New2"]);
        let b = t.add_node("b", NodeKind::Task, ["Left"]);
        let c = t.add_node("c", NodeKind::Task, ["Right"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(a, b);
        t.add_edge(a, c);
        t.add_edge(b, d);
        t.add_edge(c, d);
        t
    }

    #[test]
    fn metrics_of_diamond() {
        let m = ModelMetrics::of(&diamond());
        assert_eq!(m.nodes, 4);
        assert_eq!(m.edges, 4);
        assert_eq!(m.births, 1);
        assert_eq!(m.deaths, 1);
        assert_eq!(m.transactions, 2);
        assert!(!m.transactions_capped);
        assert_eq!(m.cyclomatic, 2);
        assert_eq!(m.max_out_degree, 2);
        assert_eq!(m.total_alternatives, 5);
        assert_eq!(m.longest_transaction, 3);
        assert_eq!(m.shortest_transaction, 3);
        assert!(!m.is_linear());
    }

    #[test]
    fn linear_chain_metrics() {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New"]);
        let b = t.add_node("b", NodeKind::Task, ["W"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(a, b);
        t.add_edge(b, d);
        let m = ModelMetrics::of(&t);
        assert!(m.is_linear());
        assert_eq!(m.cyclomatic, 1);
        assert_eq!(m.transactions, 1);
    }

    #[test]
    fn node_counts_identify_rare_nodes() {
        let counts = node_transaction_counts(&diamond());
        let get = |label: &str| counts.iter().find(|(l, _)| l == label).unwrap().1;
        assert_eq!(get("a"), 2);
        assert_eq!(get("b"), 1);
        assert_eq!(get("c"), 1);
        assert_eq!(get("d"), 2);
    }

    #[test]
    fn kind_distribution_counts() {
        assert_eq!(kind_distribution(&diamond()), (1, 2, 1));
    }

    #[test]
    fn empty_model_metrics_are_sane() {
        let t = Tfm::new("Empty");
        let m = ModelMetrics::of(&t);
        assert_eq!(m.transactions, 0);
        assert_eq!(m.longest_transaction, 0);
        assert_eq!(m.max_out_degree, 0);
    }

    #[test]
    fn display_mentions_the_paper_style_counts() {
        let s = ModelMetrics::of(&diamond()).to_string();
        assert!(s.contains("4 nodes"));
        assert!(s.contains("4 links"));
        assert!(s.contains("2 transaction(s)"));
    }
}
