//! # concat-tfm
//!
//! Transaction Flow Model (TFM) substrate for self-testable components.
//!
//! Part of the `concat-rs` reproduction of *"Constructing Self-Testable
//! Software Components"* (Martins, Toyota & Yanagawa, DSN 2001). The paper
//! uses Beizer's transaction flow model, adapted by Siegel to the unit
//! testing of a class: a directed graph whose nodes are public features and
//! whose birth→death paths are the allowable method sequences (transactions)
//! of an object (paper §3.2, Figure 2).
//!
//! This crate provides:
//!
//! * [`Tfm`] — the graph itself, with validation ([`Tfm::validate`]);
//! * [`enumerate_transactions`] — the *transaction coverage* path
//!   enumeration used by the driver generator (bounded cycle unrolling,
//!   flagged truncation);
//! * [`to_dot`] / [`to_dot_highlighted`] — Graphviz export regenerating
//!   Figure 2.
//!
//! # Examples
//!
//! ```
//! use concat_tfm::{enumerate_transactions, NodeKind, Tfm};
//!
//! // The Figure-2 style model: create, use, destroy.
//! let mut tfm = Tfm::new("Product");
//! let create = tfm.add_node("create", NodeKind::Birth, ["Product()"]);
//! let show = tfm.add_node("show", NodeKind::Task, ["ShowAttributes"]);
//! let destroy = tfm.add_node("destroy", NodeKind::Death, ["~Product"]);
//! tfm.add_edge(create, show);
//! tfm.add_edge(show, destroy);
//! tfm.add_edge(create, destroy);
//!
//! assert!(tfm.validate().is_empty());
//! let transactions = enumerate_transactions(&tfm);
//! assert_eq!(transactions.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod graph;
mod metrics;
mod paths;
mod walk;

pub use dot::{to_dot, to_dot_highlighted};
pub use graph::{Edge, Node, NodeId, NodeKind, Tfm, TfmError};
pub use metrics::{kind_distribution, node_transaction_counts, ModelMetrics};
pub use paths::{
    enumerate_transactions, enumerate_transactions_with, EnumerationConfig, Transaction,
    TransactionSet,
};
pub use walk::{coverage_step_bound, reachable_edges, EdgeWalker, WalkPolicy};
