//! Transaction enumeration: the *transaction coverage* criterion.
//!
//! The paper's Driver Generator "creates test cases according to the
//! transaction coverage criterion that requires exercising each individual
//! transaction at least once" (§3.4.1). A transaction is a path through the
//! TFM from a birth node to a death node. For models with cycles the set of
//! paths is infinite, so enumeration is bounded: each *edge* may be traversed
//! at most `cycle_bound` times within one transaction (bound 1 yields the
//! classic "loop-free plus each loop once" path set when combined with
//! distinct edges around the cycle).

use crate::graph::{NodeId, Tfm};
use std::collections::HashMap;
use std::fmt;

/// One transaction: a birth→death path through the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Node sequence from birth to death, inclusive.
    pub nodes: Vec<NodeId>,
}

impl Transaction {
    /// Number of nodes on the path.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the path is empty (never produced by enumeration).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders the path as `n1 -> n4 -> n9` using node labels.
    pub fn describe(&self, tfm: &Tfm) -> String {
        self.nodes
            .iter()
            .map(|id| tfm.node(*id).label.clone())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Expands the path into every concrete method sequence, choosing one
    /// alternative method per node (cartesian product over node method
    /// lists). This is what the driver generator turns into test cases.
    pub fn method_sequences(&self, tfm: &Tfm) -> Vec<Vec<String>> {
        let mut seqs: Vec<Vec<String>> = vec![Vec::new()];
        for id in &self.nodes {
            let methods = &tfm.node(*id).methods;
            let mut next = Vec::with_capacity(seqs.len() * methods.len());
            for seq in &seqs {
                for m in methods {
                    let mut s = seq.clone();
                    s.push(m.clone());
                    next.push(s);
                }
            }
            seqs = next;
        }
        seqs
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<String> = self.nodes.iter().map(|n| n.to_string()).collect();
        f.write_str(&labels.join(" -> "))
    }
}

/// Configuration of the transaction enumerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationConfig {
    /// Maximum traversals of a single edge within one transaction.
    pub cycle_bound: usize,
    /// Hard cap on the number of transactions produced. When hit, the
    /// result is flagged as truncated — never silently.
    pub max_transactions: usize,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig {
            cycle_bound: 1,
            max_transactions: 100_000,
        }
    }
}

/// The outcome of transaction enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionSet {
    /// The transactions, in deterministic DFS order.
    pub transactions: Vec<Transaction>,
    /// True when `max_transactions` stopped the enumeration early.
    pub truncated: bool,
}

impl TransactionSet {
    /// Number of enumerated transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when no transaction exists (invalid or empty model).
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Iterates over the transactions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.transactions.iter()
    }
}

impl<'a> IntoIterator for &'a TransactionSet {
    type Item = &'a Transaction;
    type IntoIter = std::slice::Iter<'a, Transaction>;
    fn into_iter(self) -> Self::IntoIter {
        self.transactions.iter()
    }
}

/// Enumerates every transaction of `tfm` under the default configuration.
///
/// # Examples
///
/// ```
/// use concat_tfm::{enumerate_transactions, NodeKind, Tfm};
///
/// let mut t = Tfm::new("C");
/// let a = t.add_node("a", NodeKind::Birth, ["New"]);
/// let b = t.add_node("b", NodeKind::Task, ["Work"]);
/// let d = t.add_node("d", NodeKind::Death, ["Drop"]);
/// t.add_edge(a, b);
/// t.add_edge(b, d);
/// t.add_edge(a, d);
/// let set = enumerate_transactions(&t);
/// assert_eq!(set.len(), 2); // a->b->d and a->d
/// ```
pub fn enumerate_transactions(tfm: &Tfm) -> TransactionSet {
    enumerate_transactions_with(tfm, EnumerationConfig::default())
}

/// Enumerates transactions with an explicit [`EnumerationConfig`].
pub fn enumerate_transactions_with(tfm: &Tfm, config: EnumerationConfig) -> TransactionSet {
    let mut out = Vec::new();
    let mut truncated = false;
    let deaths = tfm.death_nodes();
    for birth in tfm.birth_nodes() {
        let mut path = vec![birth];
        let mut edge_counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        dfs(
            tfm,
            &deaths,
            &config,
            &mut path,
            &mut edge_counts,
            &mut out,
            &mut truncated,
        );
    }
    TransactionSet {
        transactions: out,
        truncated,
    }
}

fn dfs(
    tfm: &Tfm,
    deaths: &[NodeId],
    config: &EnumerationConfig,
    path: &mut Vec<NodeId>,
    edge_counts: &mut HashMap<(NodeId, NodeId), usize>,
    out: &mut Vec<Transaction>,
    truncated: &mut bool,
) {
    if *truncated {
        return;
    }
    let current = *path.last().expect("path never empty");
    if deaths.contains(&current) {
        if out.len() >= config.max_transactions {
            *truncated = true;
            return;
        }
        out.push(Transaction {
            nodes: path.clone(),
        });
        return;
    }
    for succ in tfm.successors(current) {
        let key = (current, succ);
        let count = edge_counts.get(&key).copied().unwrap_or(0);
        if count >= config.cycle_bound {
            continue;
        }
        edge_counts.insert(key, count + 1);
        path.push(succ);
        dfs(tfm, deaths, config, path, edge_counts, out, truncated);
        path.pop();
        edge_counts.insert(key, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn diamond() -> Tfm {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New"]);
        let b = t.add_node("b", NodeKind::Task, ["Left"]);
        let c = t.add_node("c", NodeKind::Task, ["Right"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(a, b);
        t.add_edge(a, c);
        t.add_edge(b, d);
        t.add_edge(c, d);
        t
    }

    #[test]
    fn diamond_has_two_transactions() {
        let set = enumerate_transactions(&diamond());
        assert_eq!(set.len(), 2);
        assert!(!set.truncated);
        let t = &diamond();
        let descriptions: Vec<String> = set.iter().map(|tr| tr.describe(t)).collect();
        assert!(descriptions.contains(&"a -> b -> d".to_owned()));
        assert!(descriptions.contains(&"a -> c -> d".to_owned()));
    }

    #[test]
    fn cycle_is_unrolled_once_by_default() {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New"]);
        let b = t.add_node("b", NodeKind::Task, ["Work"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(a, b);
        t.add_edge(b, b); // self loop
        t.add_edge(b, d);
        let set = enumerate_transactions(&t);
        // a->b->d and a->b->b->d
        assert_eq!(set.len(), 2);
        let lens: Vec<usize> = set.iter().map(Transaction::len).collect();
        assert!(lens.contains(&3));
        assert!(lens.contains(&4));
    }

    #[test]
    fn cycle_bound_two_unrolls_twice() {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New"]);
        let b = t.add_node("b", NodeKind::Task, ["Work"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(a, b);
        t.add_edge(b, b);
        t.add_edge(b, d);
        let set = enumerate_transactions_with(
            &t,
            EnumerationConfig {
                cycle_bound: 2,
                max_transactions: 100,
            },
        );
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn truncation_is_flagged_not_silent() {
        let set = enumerate_transactions_with(
            &diamond(),
            EnumerationConfig {
                cycle_bound: 1,
                max_transactions: 1,
            },
        );
        assert_eq!(set.len(), 1);
        assert!(set.truncated);
    }

    #[test]
    fn no_birth_yields_empty_set() {
        let mut t = Tfm::new("C");
        t.add_node("only", NodeKind::Death, ["Drop"]);
        let set = enumerate_transactions(&t);
        assert!(set.is_empty());
    }

    #[test]
    fn every_transaction_starts_birth_ends_death() {
        let t = diamond();
        let set = enumerate_transactions(&t);
        for tr in &set {
            assert_eq!(t.node(tr.nodes[0]).kind, NodeKind::Birth);
            assert_eq!(t.node(*tr.nodes.last().unwrap()).kind, NodeKind::Death);
            // consecutive nodes are connected
            for w in tr.nodes.windows(2) {
                assert!(t.successors(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn method_sequences_expand_alternatives() {
        let mut t = Tfm::new("C");
        let a = t.add_node("a", NodeKind::Birth, ["New1", "New2"]);
        let d = t.add_node("d", NodeKind::Death, ["Drop"]);
        t.add_edge(a, d);
        let set = enumerate_transactions(&t);
        assert_eq!(set.len(), 1);
        let seqs = set.transactions[0].method_sequences(&t);
        assert_eq!(seqs.len(), 2);
        assert!(seqs.contains(&vec!["New1".to_owned(), "Drop".to_owned()]));
        assert!(seqs.contains(&vec!["New2".to_owned(), "Drop".to_owned()]));
    }

    #[test]
    fn display_uses_node_ids() {
        let t = diamond();
        let set = enumerate_transactions(&t);
        let s = set.transactions[0].to_string();
        assert!(s.starts_with("n1 -> "));
    }

    #[test]
    fn birth_equals_death_is_rejected_by_structure() {
        // a single node cannot be both birth and death in this model; a
        // model with only a birth node yields no transaction.
        let mut t = Tfm::new("C");
        t.add_node("a", NodeKind::Birth, ["New"]);
        assert!(enumerate_transactions(&t).is_empty());
    }
}
