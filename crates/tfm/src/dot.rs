//! Graphviz DOT export — regenerates Figure 2 of the paper.
//!
//! The paper's Figure 2 shows the TFM of the `Product` class with the path
//! of one use-case scenario highlighted. [`to_dot`] renders any model, and
//! [`to_dot_highlighted`] additionally bolds one transaction.

use crate::graph::{NodeKind, Tfm};
use crate::paths::Transaction;
use std::fmt::Write as _;

/// Renders the model as a Graphviz `digraph`.
///
/// Birth nodes are drawn as double circles, death nodes as double octagons,
/// task nodes as boxes. Node labels show the label and the method list.
///
/// # Examples
///
/// ```
/// use concat_tfm::{to_dot, NodeKind, Tfm};
/// let mut t = Tfm::new("C");
/// let a = t.add_node("a", NodeKind::Birth, ["New"]);
/// let d = t.add_node("d", NodeKind::Death, ["Drop"]);
/// t.add_edge(a, d);
/// let dot = to_dot(&t);
/// assert!(dot.contains("digraph"));
/// ```
pub fn to_dot(tfm: &Tfm) -> String {
    to_dot_inner(tfm, None)
}

/// Renders the model with one transaction's nodes and edges highlighted
/// (bold, red), the way Figure 2 highlights the example scenario.
pub fn to_dot_highlighted(tfm: &Tfm, highlight: &Transaction) -> String {
    to_dot_inner(tfm, Some(highlight))
}

fn to_dot_inner(tfm: &Tfm, highlight: Option<&Transaction>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", tfm.class_name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    let on_path = |idx: usize| -> bool {
        highlight.is_some_and(|h| h.nodes.iter().any(|n| n.index() == idx))
    };
    for (id, node) in tfm.nodes() {
        let shape = match node.kind {
            NodeKind::Birth => "doublecircle",
            NodeKind::Task => "box",
            NodeKind::Death => "doubleoctagon",
        };
        let methods = node.methods.join("\\n");
        let extra = if on_path(id.index()) {
            ", color=red, penwidth=2.0"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} [shape={shape}, label=\"{}\\n{methods}\"{extra}];",
            id, node.label
        );
    }
    let highlighted_edges: Vec<(usize, usize)> = highlight
        .map(|h| {
            h.nodes
                .windows(2)
                .map(|w| (w[0].index(), w[1].index()))
                .collect()
        })
        .unwrap_or_default();
    for e in tfm.edges() {
        let extra = if highlighted_edges.contains(&(e.from.index(), e.to.index())) {
            " [color=red, penwidth=2.0]"
        } else {
            ""
        };
        let _ = writeln!(out, "  {} -> {}{extra};", e.from, e.to);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use crate::paths::enumerate_transactions;

    fn model() -> Tfm {
        let mut t = Tfm::new("Product");
        let a = t.add_node("create", NodeKind::Birth, ["Product"]);
        let b = t.add_node("show", NodeKind::Task, ["ShowAttributes"]);
        let d = t.add_node("destroy", NodeKind::Death, ["~Product"]);
        t.add_edge(a, b);
        t.add_edge(b, d);
        t.add_edge(a, d);
        t
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let t = model();
        let dot = to_dot(&t);
        assert!(dot.starts_with("digraph \"Product\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.contains("n2 -> n3;"));
        assert!(dot.contains("n1 -> n3;"));
        assert!(dot.contains("ShowAttributes"));
    }

    #[test]
    fn highlight_marks_path_edges_only() {
        let t = model();
        let set = enumerate_transactions(&t);
        let long = set
            .iter()
            .find(|tr| tr.len() == 3)
            .expect("three-node path exists");
        let dot = to_dot_highlighted(&t, long);
        assert!(dot.contains("n1 -> n2 [color=red"));
        assert!(dot.contains("n2 -> n3 [color=red"));
        assert!(dot.contains("n1 -> n3;")); // the short edge stays plain
    }

    #[test]
    fn plain_render_has_no_highlight() {
        let dot = to_dot(&model());
        assert!(!dot.contains("color=red"));
    }
}
