//! Random walks over the transaction flow model.
//!
//! Transaction enumeration ([`crate::enumerate_transactions`]) realizes
//! the paper's transaction-coverage criterion: each birth→death path is
//! exercised once. A *walk* is the complementary exploration mode behind
//! invariant fuzzing: a long, seeded random traversal of the TFM that
//! revisits nodes, interleaves lifecycles and — under the
//! [`WalkPolicy::LeastVisited`] policy — provably reaches every edge
//! reachable from a birth node within a bounded number of steps.
//!
//! The walker is deliberately free of any random-number dependency: every
//! choice among `n` alternatives is delegated to a caller-supplied
//! `pick(n) -> index` closure, so the driver crate can plug in its seeded
//! RNG while this crate stays dependency-free and the walk stays
//! byte-reproducible.

use crate::graph::{NodeId, Tfm};
use std::collections::BTreeSet;

/// Edge-selection policy of a TFM walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WalkPolicy {
    /// Choose uniformly among the current node's successors.
    Uniform,
    /// Steer toward the nearest unvisited reachable edge (an unvisited
    /// outgoing edge is distance 0), breaking distance ties by fewest
    /// visits, then uniformly. On a validated model this guarantees
    /// every reachable edge is covered within
    /// [`coverage_step_bound`] steps: each step either traverses a new
    /// edge or strictly shrinks the distance to one, and a shortest
    /// edge-path never revisits a node, so a new edge falls within
    /// `nodes + 1` steps of any position that can reach one.
    #[default]
    LeastVisited,
}

impl WalkPolicy {
    /// The keyword used in configs and reports.
    pub fn keyword(&self) -> &'static str {
        match self {
            WalkPolicy::Uniform => "uniform",
            WalkPolicy::LeastVisited => "least-visited",
        }
    }

    /// Parses a keyword; `None` for anything unrecognized.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "uniform" => WalkPolicy::Uniform,
            "least-visited" => WalkPolicy::LeastVisited,
            _ => return None,
        })
    }
}

/// A resumable random walk over one TFM, tracking per-edge visit counts.
///
/// The walker holds no reference to the graph; every step borrows it
/// afresh, so one walker can be embedded in engines that also consult the
/// graph between steps. Positions: [`EdgeWalker::restart`] places the
/// walker on a birth node, [`EdgeWalker::step`] moves along one outgoing
/// edge, returning `None` at a dead end (death nodes, or a malformed
/// node without successors), after which the caller restarts.
///
/// # Examples
///
/// ```
/// use concat_tfm::{EdgeWalker, NodeKind, Tfm, WalkPolicy};
///
/// let mut tfm = Tfm::new("C");
/// let b = tfm.add_node("b", NodeKind::Birth, ["m1"]);
/// let t = tfm.add_node("t", NodeKind::Task, ["m2"]);
/// let d = tfm.add_node("d", NodeKind::Death, ["m3"]);
/// tfm.add_edge(b, t);
/// tfm.add_edge(t, t);
/// tfm.add_edge(t, d);
///
/// let mut pick = |n: usize| 0; // deterministic "random" source
/// let mut walker = EdgeWalker::new(WalkPolicy::LeastVisited);
/// let start = walker.restart(&tfm, &mut pick);
/// assert_eq!(start, b);
/// let mut steps = 0;
/// while walker.step(&tfm, &mut pick).is_some() {
///     steps += 1;
///     if steps > 16 { break; }
/// }
/// let (visited, reachable) = walker.coverage(&tfm);
/// assert_eq!(reachable, 3);
/// assert!(visited >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct EdgeWalker {
    policy: WalkPolicy,
    position: Option<NodeId>,
    /// Visit count per edge index (parallel to `Tfm::edges`).
    visits: Vec<u64>,
    steps: u64,
}

impl EdgeWalker {
    /// Creates a walker with no position; call [`EdgeWalker::restart`].
    pub fn new(policy: WalkPolicy) -> Self {
        EdgeWalker {
            policy,
            position: None,
            visits: Vec::new(),
            steps: 0,
        }
    }

    /// The walker's policy.
    pub fn policy(&self) -> WalkPolicy {
        self.policy
    }

    /// Current node, if the walker has been started.
    pub fn position(&self) -> Option<NodeId> {
        self.position
    }

    /// Total steps taken across all restarts.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Places the walker on a birth node chosen by `pick` (uniformly over
    /// the birth nodes) and returns it. Visit counts are retained across
    /// restarts — a restart models a fresh object lifecycle, not a fresh
    /// exploration.
    ///
    /// # Panics
    ///
    /// Panics when the model has no birth node (a validation error every
    /// caller should have rejected via [`Tfm::validate`]).
    pub fn restart(&mut self, tfm: &Tfm, pick: &mut dyn FnMut(usize) -> usize) -> NodeId {
        let births = tfm.birth_nodes();
        assert!(!births.is_empty(), "walked model must have a birth node");
        let chosen = births[bounded(pick, births.len())];
        self.position = Some(chosen);
        chosen
    }

    /// Moves along one outgoing edge of the current position, chosen by
    /// the policy, and returns the new node. Returns `None` when the
    /// current node has no successors (death node or dead end) — the
    /// position is then cleared and the caller is expected to restart.
    ///
    /// # Panics
    ///
    /// Panics when called before [`EdgeWalker::restart`].
    pub fn step(&mut self, tfm: &Tfm, pick: &mut dyn FnMut(usize) -> usize) -> Option<NodeId> {
        let here = self.position.expect("step() requires a started walker");
        self.visits
            .resize(tfm.edge_count().max(self.visits.len()), 0);
        // Indices into the edge list of every outgoing edge, in insertion
        // order (the same order `successors` reports).
        let outgoing: Vec<usize> = tfm
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == here)
            .map(|(i, _)| i)
            .collect();
        if outgoing.is_empty() {
            self.position = None;
            return None;
        }
        let edge_index = match self.policy {
            WalkPolicy::Uniform => outgoing[bounded(pick, outgoing.len())],
            WalkPolicy::LeastVisited => {
                // Rank by distance to the nearest unvisited edge first:
                // plain per-node least-visited balances its way into an
                // exponential number of restarts on caterpillar-shaped
                // graphs, so the coverage bound needs the global pull.
                let dist = self.edge_distances(tfm);
                let near = outgoing.iter().map(|&i| dist[i]).min().unwrap();
                let min = outgoing
                    .iter()
                    .filter(|&&i| dist[i] == near)
                    .map(|&i| self.visits[i])
                    .min()
                    .unwrap_or(0);
                let ties: Vec<usize> = outgoing
                    .iter()
                    .copied()
                    .filter(|&i| dist[i] == near && self.visits[i] == min)
                    .collect();
                ties[bounded(pick, ties.len())]
            }
        };
        self.visits[edge_index] += 1;
        self.steps += 1;
        let next = tfm.edges()[edge_index].to;
        self.position = Some(next);
        Some(next)
    }

    /// Per-edge distance (in edges still to traverse) to the nearest
    /// unvisited edge: an unvisited edge is 0, an edge one hop before
    /// one is 1, `usize::MAX` when no unvisited edge is reachable.
    /// Relaxation to a fixpoint; the models are small enough that the
    /// quadratic worst case is irrelevant.
    fn edge_distances(&self, tfm: &Tfm) -> Vec<usize> {
        let edges = tfm.edges();
        let mut dist: Vec<usize> = edges
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if self.visits.get(i).copied().unwrap_or(0) == 0 {
                    0
                } else {
                    usize::MAX
                }
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..edges.len() {
                let through = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.from == edges[i].to)
                    .map(|(j, _)| dist[j])
                    .min()
                    .unwrap_or(usize::MAX)
                    .saturating_add(1);
                if through < dist[i] {
                    dist[i] = through;
                    changed = true;
                }
            }
        }
        dist
    }

    /// Number of distinct edges visited so far.
    pub fn visited_edges(&self) -> usize {
        self.visits.iter().filter(|&&v| v > 0).count()
    }

    /// `(visited, reachable)` edge counts: how many of the edges reachable
    /// from any birth node this walker has traversed.
    pub fn coverage(&self, tfm: &Tfm) -> (usize, usize) {
        (self.visited_edges(), reachable_edges(tfm).len())
    }
}

/// `pick` constrained to the valid range: a policy choice among `n`
/// alternatives must return an index below `n`, whatever the closure does.
fn bounded(pick: &mut dyn FnMut(usize) -> usize, n: usize) -> usize {
    debug_assert!(n > 0);
    pick(n).min(n - 1)
}

/// Indices (into [`Tfm::edges`]) of every edge reachable from a birth
/// node — the denominator of walk edge coverage. Unreachable islands are
/// excluded: no walk can ever traverse them, and
/// [`Tfm::validate`] flags them separately.
pub fn reachable_edges(tfm: &Tfm) -> BTreeSet<usize> {
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<NodeId> = tfm.birth_nodes();
    let mut seen: BTreeSet<usize> = frontier.iter().map(|n| n.index()).collect();
    while let Some(node) = frontier.pop() {
        for (i, e) in tfm.edges().iter().enumerate() {
            if e.from == node {
                reached.insert(i);
                if seen.insert(e.to.index()) {
                    frontier.push(e.to);
                }
            }
        }
    }
    reached
}

/// An upper bound on the steps (restarts included) a
/// [`WalkPolicy::LeastVisited`] walker needs to traverse every reachable
/// edge of a validated model, restarting at dead ends. The policy steers
/// toward the nearest unvisited edge along a shortest edge-path, which
/// never revisits a node — so every `nodes + 1` steps cover at least one
/// new edge while any remains reachable, and at most `edges` new edges
/// are ever needed.
pub fn coverage_step_bound(tfm: &Tfm) -> u64 {
    let e = reachable_edges(tfm).len() as u64;
    let n = tfm.node_count() as u64;
    (e + 1) * (n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    /// b → t1 → d, with a t1→t2→t1 side loop and a parallel t1→d path.
    fn looped() -> Tfm {
        let mut tfm = Tfm::new("C");
        let b = tfm.add_node("b", NodeKind::Birth, ["m1"]);
        let t1 = tfm.add_node("t1", NodeKind::Task, ["m2"]);
        let t2 = tfm.add_node("t2", NodeKind::Task, ["m3"]);
        let d = tfm.add_node("d", NodeKind::Death, ["m4"]);
        tfm.add_edge(b, t1);
        tfm.add_edge(t1, t2);
        tfm.add_edge(t2, t1);
        tfm.add_edge(t1, d);
        tfm
    }

    /// A counter-based deterministic pick source.
    fn counter_pick() -> impl FnMut(usize) -> usize {
        let mut c = 0usize;
        move |n: usize| {
            c = c.wrapping_add(1);
            c % n
        }
    }

    #[test]
    fn least_visited_covers_all_edges_within_bound() {
        let tfm = looped();
        let mut pick = counter_pick();
        let mut walker = EdgeWalker::new(WalkPolicy::LeastVisited);
        walker.restart(&tfm, &mut pick);
        let bound = coverage_step_bound(&tfm);
        for _ in 0..bound {
            let (visited, reachable) = walker.coverage(&tfm);
            if visited == reachable {
                return;
            }
            if walker.step(&tfm, &mut pick).is_none() {
                walker.restart(&tfm, &mut pick);
            }
        }
        let (visited, reachable) = walker.coverage(&tfm);
        assert_eq!(visited, reachable, "walker failed to cover in bound");
    }

    #[test]
    fn uniform_walks_stay_on_edges() {
        let tfm = looped();
        let mut pick = counter_pick();
        let mut walker = EdgeWalker::new(WalkPolicy::Uniform);
        let mut here = walker.restart(&tfm, &mut pick);
        for _ in 0..64 {
            match walker.step(&tfm, &mut pick) {
                Some(next) => {
                    assert!(
                        tfm.successors(here).contains(&next),
                        "walk left the edge relation"
                    );
                    here = next;
                }
                None => here = walker.restart(&tfm, &mut pick),
            }
        }
        assert!(walker.steps() > 0);
    }

    #[test]
    fn reachable_excludes_islands() {
        let mut tfm = looped();
        // An island edge between two unreachable task nodes.
        let x = tfm.add_node("x", NodeKind::Task, ["m5"]);
        let y = tfm.add_node("y", NodeKind::Task, ["m6"]);
        tfm.add_edge(x, y);
        assert_eq!(reachable_edges(&tfm).len(), 4);
    }

    #[test]
    fn visit_counts_survive_restart() {
        let tfm = looped();
        let mut pick = counter_pick();
        let mut walker = EdgeWalker::new(WalkPolicy::LeastVisited);
        walker.restart(&tfm, &mut pick);
        while walker.step(&tfm, &mut pick).is_some() {}
        let before = walker.visited_edges();
        walker.restart(&tfm, &mut pick);
        assert_eq!(walker.visited_edges(), before);
    }

    #[test]
    fn policy_keywords_round_trip() {
        for p in [WalkPolicy::Uniform, WalkPolicy::LeastVisited] {
            assert_eq!(WalkPolicy::from_keyword(p.keyword()), Some(p));
        }
        assert_eq!(WalkPolicy::from_keyword("hamiltonian"), None);
    }
}
