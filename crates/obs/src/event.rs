//! The telemetry event model.
//!
//! Everything the instrumented pipeline reports flows through one small
//! enum: span boundaries (with monotonic timing measured by the emitting
//! [`crate::Telemetry`] handle), counter increments and gauge sets. Sinks
//! consume [`Event`]s; they never see clocks or atomics.

use std::fmt;

/// One telemetry observation.
///
/// Span `kind`s and counter/gauge `name`s are `&'static str` by design:
/// instrumentation sites name a fixed, greppable vocabulary (e.g.
/// `"case"`, `"mutant"`, `"bit.invariant.violations"`), and the hot path
/// never allocates for them. Only span *labels* (the dynamic part, e.g. a
/// test-case name) are owned strings, and those are only materialized when
/// a real sink is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span began. `id` pairs it with its matching end event.
    SpanStart {
        /// Fixed span vocabulary entry, e.g. `"suite"`, `"case"`,
        /// `"mutant"`.
        kind: &'static str,
        /// Dynamic label, e.g. the test-case name.
        label: String,
        /// Process-unique pairing id.
        id: u64,
    },
    /// A span finished after `nanos` nanoseconds of wall time.
    SpanEnd {
        /// Same kind as the matching start.
        kind: &'static str,
        /// Same label as the matching start.
        label: String,
        /// Same id as the matching start.
        id: u64,
        /// Elapsed monotonic wall time in nanoseconds.
        nanos: u64,
    },
    /// A named counter moved up by `delta`.
    Counter {
        /// Counter name, e.g. `"case.passed"`.
        name: &'static str,
        /// Increment (usually 1).
        delta: u64,
    },
    /// A named gauge was set to `value`.
    Gauge {
        /// Gauge name, e.g. `"mutant.equivalent"`.
        name: &'static str,
        /// The new value.
        value: i64,
    },
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline), the
    /// line format of [`crate::JsonlSink`]. Hand-rolled — the workspace
    /// runs without registry dependencies, so there is no serde here.
    pub fn to_json(&self) -> String {
        match self {
            Event::SpanStart { kind, label, id } => format!(
                "{{\"event\":\"span_start\",\"kind\":\"{}\",\"label\":\"{}\",\"id\":{}}}",
                escape_json(kind),
                escape_json(label),
                id
            ),
            Event::SpanEnd { kind, label, id, nanos } => format!(
                "{{\"event\":\"span_end\",\"kind\":\"{}\",\"label\":\"{}\",\"id\":{},\"nanos\":{}}}",
                escape_json(kind),
                escape_json(label),
                id,
                nanos
            ),
            Event::Counter { name, delta } => format!(
                "{{\"event\":\"counter\",\"name\":\"{}\",\"delta\":{}}}",
                escape_json(name),
                delta
            ),
            Event::Gauge { name, value } => format!(
                "{{\"event\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape_json(name),
                value
            ),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shapes() {
        let e = Event::SpanEnd {
            kind: "case",
            label: "TC0".into(),
            id: 3,
            nanos: 1500,
        }
        .to_json();
        assert_eq!(
            e,
            "{\"event\":\"span_end\",\"kind\":\"case\",\"label\":\"TC0\",\"id\":3,\"nanos\":1500}"
        );
        let c = Event::Counter {
            name: "case.passed",
            delta: 1,
        }
        .to_json();
        assert!(c.contains("\"delta\":1"));
        let g = Event::Gauge {
            name: "g",
            value: -4,
        }
        .to_json();
        assert!(g.contains("\"value\":-4"));
    }

    #[test]
    fn labels_are_escaped() {
        let e = Event::SpanStart {
            kind: "case",
            label: "a\"b\\c\nd\u{1}".into(),
            id: 0,
        };
        let json = e.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd\\u0001"));
        assert_eq!(e.to_string(), json);
    }
}
