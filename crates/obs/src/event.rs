//! The telemetry event model.
//!
//! Everything the instrumented pipeline reports flows through one small
//! enum: span boundaries (with monotonic timing measured by the emitting
//! [`crate::Telemetry`] handle), counter increments, gauge sets and
//! periodic progress snapshots. Sinks consume [`Event`]s; they never see
//! clocks or atomics.
//!
//! Spans are *causal*: every start carries the id of its parent span (if
//! any) and a timestamp against the process trace epoch
//! ([`concat_runtime::monotonic_nanos`]), so a recorded stream is a
//! forest of span trees that consumers — the hot-path attribution table,
//! the Chrome-trace exporter — can reconstruct exactly.

use std::fmt;

/// One telemetry observation.
///
/// Span `kind`s and counter/gauge `name`s are `&'static str` by design:
/// instrumentation sites name a fixed, greppable vocabulary (e.g.
/// `"case"`, `"mutant"`, `"bit.invariant.violations"`), and the hot path
/// never allocates for them. Only span *labels* (the dynamic part, e.g. a
/// test-case name) are owned strings, and those are only materialized when
/// a real sink is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span began. `id` pairs it with its matching end event.
    SpanStart {
        /// Fixed span vocabulary entry, e.g. `"suite"`, `"case"`,
        /// `"mutant"`.
        kind: &'static str,
        /// Dynamic label, e.g. the test-case name.
        label: String,
        /// Process-unique pairing id.
        id: u64,
        /// Id of the enclosing span, `None` for a root span. Parent and
        /// child always share a sink id space (the emitting handle's), so
        /// the recorded stream forms a well-founded forest.
        parent: Option<u64>,
        /// Start time, nanoseconds since the process trace epoch.
        ts_nanos: u64,
    },
    /// A span finished after `nanos` nanoseconds of wall time.
    SpanEnd {
        /// Same kind as the matching start.
        kind: &'static str,
        /// Same label as the matching start.
        label: String,
        /// Same id as the matching start.
        id: u64,
        /// Elapsed monotonic wall time in nanoseconds.
        nanos: u64,
        /// End time, nanoseconds since the process trace epoch (the
        /// matching start's `ts_nanos` plus `nanos`, so a start/end pair
        /// is always self-consistent).
        ts_nanos: u64,
    },
    /// A named counter moved up by `delta`.
    Counter {
        /// Counter name, e.g. `"case.passed"`.
        name: &'static str,
        /// Increment (usually 1).
        delta: u64,
    },
    /// A named gauge was set to `value`.
    Gauge {
        /// Gauge name, e.g. `"mutant.equivalent"`.
        name: &'static str,
        /// The new value.
        value: i64,
    },
    /// A periodic multi-reading snapshot — the live progress heartbeat
    /// (e.g. `campaign.progress`: mutants done/queued/quarantined per
    /// worker). Unlike a [`Event::Gauge`], a snapshot carries several
    /// named readings taken at one instant, plus a sequence number so
    /// merged streams keep their emission order.
    Snapshot {
        /// Snapshot name, e.g. `"campaign.progress"`.
        name: &'static str,
        /// Per-handle emission sequence number.
        seq: u64,
        /// Snapshot time, nanoseconds since the process trace epoch.
        ts_nanos: u64,
        /// Named readings, in emission order.
        readings: Vec<(String, i64)>,
    },
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline), the
    /// line format of [`crate::JsonlSink`]. Hand-rolled — the workspace
    /// runs without registry dependencies, so there is no serde here.
    pub fn to_json(&self) -> String {
        match self {
            Event::SpanStart {
                kind,
                label,
                id,
                parent,
                ts_nanos,
            } => {
                let parent = match parent {
                    Some(p) => format!(",\"parent\":{p}"),
                    None => String::new(),
                };
                format!(
                    "{{\"event\":\"span_start\",\"kind\":\"{}\",\"label\":\"{}\",\"id\":{}{},\"ts\":{}}}",
                    escape_json(kind),
                    escape_json(label),
                    id,
                    parent,
                    ts_nanos
                )
            }
            Event::SpanEnd {
                kind,
                label,
                id,
                nanos,
                ts_nanos,
            } => format!(
                "{{\"event\":\"span_end\",\"kind\":\"{}\",\"label\":\"{}\",\"id\":{},\"nanos\":{},\"ts\":{}}}",
                escape_json(kind),
                escape_json(label),
                id,
                nanos,
                ts_nanos
            ),
            Event::Counter { name, delta } => format!(
                "{{\"event\":\"counter\",\"name\":\"{}\",\"delta\":{}}}",
                escape_json(name),
                delta
            ),
            Event::Gauge { name, value } => format!(
                "{{\"event\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape_json(name),
                value
            ),
            Event::Snapshot {
                name,
                seq,
                ts_nanos,
                readings,
            } => {
                let body: Vec<String> = readings
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
                    .collect();
                format!(
                    "{{\"event\":\"snapshot\",\"name\":\"{}\",\"seq\":{},\"ts\":{},\"readings\":{{{}}}}}",
                    escape_json(name),
                    seq,
                    ts_nanos,
                    body.join(",")
                )
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shapes() {
        let e = Event::SpanEnd {
            kind: "case",
            label: "TC0".into(),
            id: 3,
            nanos: 1500,
            ts_nanos: 9_000,
        }
        .to_json();
        assert_eq!(
            e,
            "{\"event\":\"span_end\",\"kind\":\"case\",\"label\":\"TC0\",\"id\":3,\"nanos\":1500,\"ts\":9000}"
        );
        let c = Event::Counter {
            name: "case.passed",
            delta: 1,
        }
        .to_json();
        assert!(c.contains("\"delta\":1"));
        let g = Event::Gauge {
            name: "g",
            value: -4,
        }
        .to_json();
        assert!(g.contains("\"value\":-4"));
    }

    #[test]
    fn span_start_renders_parent_only_when_present() {
        let root = Event::SpanStart {
            kind: "mutation",
            label: "Acc".into(),
            id: 0,
            parent: None,
            ts_nanos: 10,
        };
        assert_eq!(
            root.to_json(),
            "{\"event\":\"span_start\",\"kind\":\"mutation\",\"label\":\"Acc\",\"id\":0,\"ts\":10}"
        );
        let child = Event::SpanStart {
            kind: "mutant",
            label: "#1".into(),
            id: 4,
            parent: Some(0),
            ts_nanos: 20,
        };
        assert!(child.to_json().contains("\"id\":4,\"parent\":0,\"ts\":20"));
    }

    #[test]
    fn snapshot_renders_readings_object() {
        let s = Event::Snapshot {
            name: "campaign.progress",
            seq: 2,
            ts_nanos: 77,
            readings: vec![("done".into(), 5), ("queued".into(), 3)],
        };
        assert_eq!(
            s.to_json(),
            "{\"event\":\"snapshot\",\"name\":\"campaign.progress\",\"seq\":2,\"ts\":77,\
             \"readings\":{\"done\":5,\"queued\":3}}"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let e = Event::SpanStart {
            kind: "case",
            label: "a\"b\\c\nd\u{1}".into(),
            id: 0,
            parent: None,
            ts_nanos: 0,
        };
        let json = e.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd\\u0001"));
        assert_eq!(e.to_string(), json);
    }
}
