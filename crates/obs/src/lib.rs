//! # concat-obs
//!
//! The telemetry spine of the `concat-rs` workspace, a Rust reproduction
//! of *"Constructing Self-Testable Software Components"* (Martins, Toyota
//! & Yanagawa, DSN 2001).
//!
//! The paper's Concat tool judges a component by its final `Result.txt`
//! and mutation score; growing the reproduction toward a production-scale
//! system needs per-phase visibility first. This crate provides it with
//! zero registry dependencies (the build environment is offline, so —
//! like `TestLog` — everything here is hand-rolled):
//!
//! * [`Event`] — span start/end (monotonic timing, causal parent links),
//!   counters, gauges, progress snapshots;
//! * [`Telemetry`] — the cheap, clonable handle instrumented code holds;
//!   disabled by default, in which case every call is a guaranteed no-op
//!   (no clock read, no allocation); [`Telemetry::at`] positions a handle
//!   under a parent span so recorded streams form causal span trees;
//! * [`Collector`] sinks — [`NullSink`] (default), [`MemorySink`]
//!   (tests/reports), [`JsonlSink`] (one JSON object per line, feeding
//!   benchmark trajectories), [`ChromeTraceSink`] (live Chrome-trace
//!   flight recorder; [`chrome_trace`] is the offline exporter);
//! * [`Histogram`] — fixed-bucket timing histograms; [`Summary`] — the
//!   count/min/max/mean/p50/p95 aggregation reports print, now with
//!   per-kind self-time ([`Summary::self_spans`]) derived from the span
//!   tree.
//!
//! # Examples
//!
//! ```
//! use concat_obs::{MemorySink, Telemetry};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tel = Telemetry::new(sink.clone());
//! {
//!     let _span = tel.span("case", "TC0");
//!     tel.incr("case.passed");
//! }
//! let summary = sink.summary();
//! assert_eq!(summary.span("case").unwrap().count, 1);
//! assert_eq!(summary.counter("case.passed"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod collector;
mod event;
mod histogram;
mod summary;
mod telemetry;
mod trace;

pub use collector::{Collector, JsonlSink, MemorySink, NullSink, JSONL_WRITE_OP};
pub use event::{escape_json, Event};
pub use histogram::{Histogram, BUCKET_BOUNDS_NANOS};
pub use summary::{SnapshotRecord, SpanStats, Summary};
pub use telemetry::{Span, SpanId, Telemetry};
pub use trace::{chrome_trace, ChromeTraceSink};
