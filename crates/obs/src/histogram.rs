//! Fixed-bucket timing histograms.
//!
//! Span durations land in a histogram with a fixed, log-spaced bucket
//! ladder from 1µs to 1s. Fixed buckets keep recording O(buckets) in the
//! worst case and — more importantly — make two histograms mergeable and
//! comparable across runs, which is what the `BENCH_*.json` trajectories
//! need. Quantiles are bucket-upper-bound estimates; min/max/mean are
//! tracked exactly alongside.

/// Upper bounds (inclusive, nanoseconds) of the histogram buckets. A final
/// overflow bucket catches everything above the last bound.
pub const BUCKET_BOUNDS_NANOS: [u64; 16] = [
    1_000, // 1µs
    2_000,
    5_000,
    10_000, // 10µs
    20_000,
    50_000,
    100_000, // 100µs
    200_000,
    500_000,
    1_000_000, // 1ms
    2_000_000,
    5_000_000,
    10_000_000,    // 10ms
    50_000_000,    // 50ms
    100_000_000,   // 100ms
    1_000_000_000, // 1s
];

/// A timing histogram with the fixed [`BUCKET_BOUNDS_NANOS`] ladder plus
/// exact count/sum/min/max.
///
/// # Examples
///
/// ```
/// use concat_obs::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(1_500);
/// h.record(800);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.min_nanos(), 800);
/// assert_eq!(h.max_nanos(), 1_500);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS_NANOS.len() + 1],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS_NANOS.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one duration. A value exactly on a bucket bound lands in
    /// that bucket (bounds are upper-inclusive).
    pub fn record(&mut self, nanos: u64) {
        let idx = BUCKET_BOUNDS_NANOS
            .iter()
            .position(|b| nanos <= *b)
            .unwrap_or(BUCKET_BOUNDS_NANOS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations (nanoseconds, saturating).
    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded duration; 0 when empty.
    pub fn min_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded duration; 0 when empty.
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Mean recorded duration; 0 when empty.
    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-quantile observation (the exact max for the overflow bucket,
    /// clamped to the observed max elsewhere). `q` is clamped to `[0, 1]`.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return if i < BUCKET_BOUNDS_NANOS.len() {
                    BUCKET_BOUNDS_NANOS[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Per-bucket counts: `(upper_bound_nanos, count)` pairs, the overflow
    /// bucket reported with `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        BUCKET_BOUNDS_NANOS
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_bound_lands_in_its_bucket() {
        let mut h = Histogram::new();
        for bound in BUCKET_BOUNDS_NANOS {
            h.record(bound);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        // one observation per named bucket, none in overflow
        for (i, c) in counts.iter().enumerate() {
            let expect = if i < BUCKET_BOUNDS_NANOS.len() { 1 } else { 0 };
            assert_eq!(*c, expect, "bucket {i}");
        }
    }

    #[test]
    fn one_past_bound_spills_to_next_bucket() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(1_001);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let mut h = Histogram::new();
        h.record(2_000_000_000);
        assert_eq!(h.buckets().last().unwrap().1, 1);
        assert_eq!(h.quantile_nanos(0.5), 2_000_000_000);
    }

    #[test]
    fn stats_track_exactly() {
        let mut h = Histogram::new();
        for v in [100, 200, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min_nanos(), 100);
        assert_eq!(h.max_nanos(), 300);
        assert_eq!(h.mean_nanos(), 200);
        assert_eq!(h.sum_nanos(), 600);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.max_nanos(), 0);
        assert_eq!(h.mean_nanos(), 0);
        assert_eq!(h.quantile_nanos(0.5), 0);
    }

    #[test]
    fn quantiles_walk_the_ladder() {
        let mut h = Histogram::new();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(900); // ≤ 1µs bucket
        }
        for _ in 0..10 {
            h.record(90_000); // ≤ 100µs bucket
        }
        // p50 falls in the first bucket: estimate = its upper bound.
        assert_eq!(h.quantile_nanos(0.5), 1_000);
        // p95 falls in the ≤100µs bucket; the estimate is clamped to the
        // observed max.
        assert_eq!(h.quantile_nanos(0.95), 90_000);
        assert_eq!(h.quantile_nanos(1.0), 90_000);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0, including the extremes.
        let empty = Histogram::new();
        assert_eq!(empty.quantile_nanos(0.0), 0);
        assert_eq!(empty.quantile_nanos(1.0), 0);

        let mut h = Histogram::new();
        h.record(900);
        h.record(90_000);
        // q=0.0 still targets the first observation (a minimum estimate,
        // bounded by the first occupied bucket).
        assert_eq!(h.quantile_nanos(0.0), 1_000);
        // q=1.0 is the exact observed maximum.
        assert_eq!(h.quantile_nanos(1.0), 90_000);
        // Out-of-range inputs clamp rather than panic or extrapolate.
        assert_eq!(h.quantile_nanos(-3.0), h.quantile_nanos(0.0));
        assert_eq!(h.quantile_nanos(7.5), h.quantile_nanos(1.0));
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_nanos(q), 42, "q = {q}");
        }
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(500);
        let mut b = Histogram::new();
        b.record(5_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_nanos(), 500);
        assert_eq!(a.max_nanos(), 5_000_000);
    }
}
