//! Chrome-trace export: the flight-recorder view of a campaign.
//!
//! Converts the causal event stream into the [Trace Event Format] that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) render as a
//! zoomable timeline: span start/end become `"B"`/`"E"` duration events,
//! counters/gauges/heartbeat snapshots become `"C"` counter tracks, and
//! worker spans open their own thread tracks so the parallel campaign's
//! interleaving is visible at a glance.
//!
//! Two entry points:
//!
//! * [`chrome_trace`] — offline: render a recorded `&[Event]` slice
//!   (e.g. `MemorySink::events`) to one complete JSON array.
//! * [`ChromeTraceSink`] — live: a [`Collector`] that streams each event
//!   to a writer as it happens. The emitted file is *deliberately* left
//!   without a closing `]` and uses trailing commas: the JSON array
//!   format is defined to be truncation-tolerant, so a SIGKILLed
//!   campaign still leaves a loadable trace of everything up to the
//!   kill. Perfetto and `chrome://tracing` both accept this form.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::collector::Collector;
use crate::event::{escape_json, Event};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// The process id all trace events carry (one campaign = one process
/// track).
const TRACE_PID: u64 = 1;

/// The thread id of the main (supervisor) track. Worker spans are
/// assigned fresh tids starting above this.
const MAIN_TID: u64 = 1;

/// Incremental Event → trace-line encoder.
///
/// Tracks make the timeline legible: a span whose kind is `"worker"`
/// opens a fresh thread track (named after the span label), and every
/// descendant span inherits its parent's track, so each worker's mutant
/// executions line up on their own row while supervisor phases (golden
/// run, merge, journal) stay on the main track.
struct TraceEncoder {
    /// Span id → thread track.
    tid_by_span: HashMap<u64, u64>,
    /// Next unassigned worker track.
    next_tid: u64,
    /// Running totals for counter events (the trace format wants absolute
    /// values on "C" samples, the event stream carries deltas).
    counter_totals: HashMap<&'static str, u64>,
    /// Timestamp of the last timestamped event, used to place counter and
    /// gauge samples (which carry no clock reading of their own).
    last_ts_nanos: u64,
}

/// Formats nanoseconds as the trace format's fractional microseconds.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl TraceEncoder {
    fn new() -> TraceEncoder {
        TraceEncoder {
            tid_by_span: HashMap::new(),
            next_tid: MAIN_TID + 1,
            counter_totals: HashMap::new(),
            last_ts_nanos: 0,
        }
    }

    /// The process-level metadata lines every trace starts with.
    fn preamble() -> Vec<String> {
        vec![
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\
                 \"args\":{{\"name\":\"concat campaign\"}}}}"
            ),
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\
                 \"tid\":{MAIN_TID},\"args\":{{\"name\":\"supervisor\"}}}}"
            ),
        ]
    }

    /// Encodes one event into zero or more trace lines (JSON objects,
    /// no separators).
    fn encode(&mut self, event: &Event) -> Vec<String> {
        match event {
            Event::SpanStart {
                kind,
                label,
                id,
                parent,
                ts_nanos,
            } => {
                self.last_ts_nanos = *ts_nanos;
                let mut lines = Vec::new();
                let tid = if *kind == "worker" {
                    let tid = self.next_tid;
                    self.next_tid += 1;
                    lines.push(format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\
                         \"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                        escape_json(label)
                    ));
                    tid
                } else {
                    parent
                        .and_then(|p| self.tid_by_span.get(&p).copied())
                        .unwrap_or(MAIN_TID)
                };
                self.tid_by_span.insert(*id, tid);
                let name = if label.is_empty() {
                    (*kind).to_owned()
                } else {
                    format!("{kind}: {label}")
                };
                let parent_arg = match parent {
                    Some(p) => format!(",\"parent\":{p}"),
                    None => String::new(),
                };
                lines.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\
                     \"pid\":{TRACE_PID},\"tid\":{tid},\"args\":{{\"id\":{id}{parent_arg}}}}}",
                    escape_json(&name),
                    escape_json(kind),
                    micros(*ts_nanos)
                ));
                lines
            }
            Event::SpanEnd { id, ts_nanos, .. } => {
                self.last_ts_nanos = *ts_nanos;
                let tid = self.tid_by_span.get(id).copied().unwrap_or(MAIN_TID);
                vec![format!(
                    "{{\"ph\":\"E\",\"ts\":{},\"pid\":{TRACE_PID},\"tid\":{tid}}}",
                    micros(*ts_nanos)
                )]
            }
            Event::Counter { name, delta } => {
                let total = self
                    .counter_totals
                    .entry(name)
                    .and_modify(|t| *t += delta)
                    .or_insert(*delta);
                vec![format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{TRACE_PID},\
                     \"tid\":{MAIN_TID},\"args\":{{\"value\":{total}}}}}",
                    escape_json(name),
                    micros(self.last_ts_nanos)
                )]
            }
            Event::Gauge { name, value } => {
                vec![format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{TRACE_PID},\
                     \"tid\":{MAIN_TID},\"args\":{{\"value\":{value}}}}}",
                    escape_json(name),
                    micros(self.last_ts_nanos)
                )]
            }
            Event::Snapshot {
                name,
                ts_nanos,
                readings,
                ..
            } => {
                self.last_ts_nanos = *ts_nanos;
                let args: Vec<String> = readings
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
                    .collect();
                vec![format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{TRACE_PID},\
                     \"tid\":{MAIN_TID},\"args\":{{{}}}}}",
                    escape_json(name),
                    micros(*ts_nanos),
                    args.join(",")
                )]
            }
        }
    }
}

/// Renders a recorded event slice as one complete Chrome-trace JSON
/// array (closing `]` included).
///
/// # Examples
///
/// ```
/// use concat_obs::{chrome_trace, MemorySink, Telemetry};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let tel = Telemetry::new(sink.clone());
/// tel.span("case", "TC0").finish();
/// let json = chrome_trace(&sink.events());
/// assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
/// ```
pub fn chrome_trace(events: &[Event]) -> String {
    let mut encoder = TraceEncoder::new();
    let mut lines = TraceEncoder::preamble();
    for event in events {
        lines.extend(encoder.encode(event));
    }
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// A [`Collector`] that streams events to a writer in Chrome-trace form
/// as they happen — the live flight recorder.
///
/// Each event is written as one line ending in a comma and flushed, and
/// the array is never closed: a process killed mid-campaign leaves a
/// trace that `chrome://tracing` and Perfetto still load (the format is
/// defined to tolerate a truncated tail). For the same reason the
/// file-backed constructor writes straight to the target path rather
/// than through the atomic rename used elsewhere — a half-written trace
/// is precisely what this sink is for.
pub struct ChromeTraceSink<W: Write + Send> {
    inner: Mutex<TraceState<W>>,
}

struct TraceState<W: Write + Send> {
    writer: W,
    encoder: TraceEncoder,
}

impl ChromeTraceSink<BufWriter<File>> {
    /// Opens (truncating) a trace file at `path` and writes the array
    /// header and process metadata.
    pub fn create_path(path: &Path) -> std::io::Result<ChromeTraceSink<BufWriter<File>>> {
        ChromeTraceSink::new(BufWriter::new(File::create(path)?))
    }
}

impl ChromeTraceSink<Vec<u8>> {
    /// An in-memory trace sink for tests.
    pub fn in_memory() -> ChromeTraceSink<Vec<u8>> {
        #[allow(clippy::expect_used)] // Vec<u8> writes cannot fail
        ChromeTraceSink::new(Vec::new()).expect("in-memory writes are infallible")
    }

    /// The bytes written so far (exactly what a reader of the file would
    /// see at this instant, truncated tail and all).
    pub fn contents(&self) -> String {
        let state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8_lossy(&state.writer).into_owned()
    }
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps `writer`, immediately emitting the array header and process
    /// metadata lines.
    pub fn new(mut writer: W) -> std::io::Result<ChromeTraceSink<W>> {
        writer.write_all(b"[\n")?;
        for line in TraceEncoder::preamble() {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b",\n")?;
        }
        writer.flush()?;
        Ok(ChromeTraceSink {
            inner: Mutex::new(TraceState {
                writer,
                encoder: TraceEncoder::new(),
            }),
        })
    }

    /// Unwraps the sink, returning the writer (without closing the JSON
    /// array — the format tolerates the open tail by design).
    pub fn into_inner(self) -> W {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .writer
    }
}

impl<W: Write + Send> Collector for ChromeTraceSink<W> {
    fn record(&self, event: Event) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let lines = state.encoder.encode(&event);
        for line in lines {
            // Trace output is best-effort by contract (the verdict path
            // must never depend on it): a full disk degrades to a
            // truncated — still loadable — trace.
            let _ = state.writer.write_all(line.as_bytes());
            let _ = state.writer.write_all(b",\n");
        }
        let _ = state.writer.flush();
    }
}

impl<W: Write + Send> std::fmt::Debug for ChromeTraceSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::MemorySink;
    use crate::telemetry::Telemetry;
    use std::sync::Arc;

    fn record_tree() -> Vec<Event> {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        let campaign = tel.span("mutation", "Acc");
        let scoped = tel.at(campaign.id());
        let worker = scoped.span("worker", "w0");
        scoped.at(worker.id()).span("mutant", "#1").finish();
        worker.finish();
        tel.incr("mutant.killed");
        tel.incr("mutant.killed");
        tel.gauge("mutation.workers", 4);
        tel.snapshot("campaign.progress", || {
            vec![("done".into(), 1), ("queued".into(), 2)]
        });
        campaign.finish();
        sink.events()
    }

    #[test]
    fn offline_export_is_a_complete_array() {
        let json = chrome_trace(&record_tree());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"mutation: Acc\""));
    }

    #[test]
    fn counters_accumulate_to_absolute_values() {
        let json = chrome_trace(&record_tree());
        // Two unit increments → samples at 1 then 2.
        assert!(json.contains("\"name\":\"mutant.killed\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":1}"));
        assert!(json.contains("\"args\":{\"value\":2}"));
        // Gauges sample their set value.
        assert!(json.contains("\"name\":\"mutation.workers\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":4}"));
        // Snapshots sample all readings on one track.
        assert!(json.contains("\"name\":\"campaign.progress\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"done\":1,\"queued\":2}"));
    }

    #[test]
    fn worker_spans_open_their_own_tracks() {
        let json = chrome_trace(&record_tree());
        // Worker w0 gets tid 2 and a thread_name record; its child mutant
        // span inherits the track.
        assert!(json.contains("\"tid\":2,\"args\":{\"name\":\"w0\"}"));
        let mutant_line = json
            .lines()
            .find(|l| l.contains("mutant: #1"))
            .expect("mutant B event present");
        assert!(mutant_line.contains("\"tid\":2"), "inherits worker track");
        // The campaign root stays on the supervisor track.
        let campaign_line = json
            .lines()
            .find(|l| l.contains("mutation: Acc"))
            .expect("campaign B event present");
        assert!(campaign_line.contains("\"tid\":1"));
    }

    #[test]
    fn timestamps_are_fractional_microseconds() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn live_sink_streams_lines_with_open_tail() {
        let sink = ChromeTraceSink::in_memory();
        let contents = sink.contents();
        assert!(contents.starts_with("[\n"), "header written eagerly");
        assert!(contents.contains("process_name"));
        for event in record_tree() {
            sink.record(event);
        }
        let contents = sink.contents();
        assert!(!contents.trim_end().ends_with(']'), "array never closed");
        assert!(contents.trim_end().ends_with(','), "trailing comma tail");
        assert!(contents.contains("\"ph\":\"B\""));
        assert!(contents.contains("\"ph\":\"E\""));
    }

    #[test]
    fn live_sink_is_not_null() {
        let sink: Arc<dyn Collector> = Arc::new(ChromeTraceSink::in_memory());
        assert!(!sink.is_null());
        let tel = Telemetry::new(sink);
        assert!(tel.is_enabled());
    }
}
