//! The [`Telemetry`] handle instrumented code holds.
//!
//! Cheap to clone (an `Option<Arc>`), thread-safe, and — critically —
//! free when disabled: a disabled handle never reads the clock, never
//! allocates a label, never touches an atomic. Instrumentation sites can
//! therefore sit on the hottest paths of the runner and the mutation
//! engine without a deployment-mode cost, the same bargain the paper's
//! BIT access control strikes for assertions.
//!
//! Handles are also *positioned*: [`Telemetry::at`] derives a handle
//! whose spans open under a given parent span, which is how the campaign
//! flight recorder threads causality through `TestRunner` → mutation
//! engine → workers → amplification rounds without any thread-local
//! context.

use crate::collector::Collector;
use crate::event::Event;
use concat_runtime::monotonic_nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Shared {
    sink: Arc<dyn Collector>,
    next_span_id: AtomicU64,
    next_snapshot_seq: AtomicU64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("next_span_id", &self.next_span_id)
            .finish_non_exhaustive()
    }
}

/// The identity of an open span, used to parent other spans under it via
/// [`Telemetry::at`]. Copyable and sendable; a span id from a disabled
/// handle is [`SpanId::NONE`], which parents nothing — so call sites can
/// thread ids unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanId(Option<u64>);

impl SpanId {
    /// The absent span id: spans opened "under" it are roots.
    pub const NONE: SpanId = SpanId(None);

    /// True when this id names no span (disabled handle, or explicitly
    /// [`SpanId::NONE`]).
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }
}

/// A handle for emitting telemetry events.
///
/// # Examples
///
/// ```
/// use concat_obs::{MemorySink, Telemetry};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let tel = Telemetry::new(sink.clone());
/// {
///     let span = tel.span("suite", "S");
///     // Derive a handle positioned under the suite span: its spans
///     // record the suite as their parent.
///     let under = tel.at(span.id());
///     under.span("case", "TC0").finish();
///     tel.incr("case.passed");
/// }
/// assert_eq!(sink.span_count("case"), 1);
/// assert_eq!(sink.counter_total("case.passed"), 1);
///
/// // The default handle is disabled and does nothing at all.
/// let off = Telemetry::disabled();
/// let _span = off.span("case", "TC1");
/// assert!(!off.is_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
    parent: SpanId,
}

impl Telemetry {
    /// The disabled handle: every operation is a no-op. This is also the
    /// `Default`.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            parent: SpanId::NONE,
        }
    }

    /// A handle over `sink`. Passing a sink whose
    /// [`Collector::is_null`] returns true (e.g. [`crate::NullSink`])
    /// yields the disabled fast path.
    pub fn new(sink: Arc<dyn Collector>) -> Self {
        if sink.is_null() {
            return Self::disabled();
        }
        Telemetry {
            inner: Some(Arc::new(Shared {
                sink,
                next_span_id: AtomicU64::new(0),
                next_snapshot_seq: AtomicU64::new(0),
            })),
            parent: SpanId::NONE,
        }
    }

    /// True when a real sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Derives a handle that shares this one's sink and id space but
    /// opens its spans under `parent`. Free on a disabled handle (and
    /// never allocates — it only clones the inner `Arc`), so call sites
    /// can reposition unconditionally.
    pub fn at(&self, parent: SpanId) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            parent,
        }
    }

    /// Opens a span. The returned guard emits [`Event::SpanStart`] now and
    /// the matching [`Event::SpanEnd`] (with monotonic elapsed nanoseconds)
    /// when dropped. The span's parent is this handle's position (set via
    /// [`Telemetry::at`]; roots by default). On a disabled handle this
    /// reads no clock and allocates nothing.
    pub fn span(&self, kind: &'static str, label: &str) -> Span {
        let Some(shared) = &self.inner else {
            return Span { state: None };
        };
        let id = shared.next_span_id.fetch_add(1, Ordering::Relaxed);
        let label = label.to_owned();
        let ts_nanos = monotonic_nanos();
        shared.sink.record(Event::SpanStart {
            kind,
            label: label.clone(),
            id,
            parent: self.parent.0,
            ts_nanos,
        });
        Span {
            state: Some(SpanState {
                shared: Arc::clone(shared),
                kind,
                label,
                id,
                start: Instant::now(),
                start_ts: ts_nanos,
            }),
        }
    }

    /// Opens a span with a lazily built label: `label` is only invoked
    /// when the handle is enabled, so callers can pass an allocating
    /// closure (`|| mutant.to_string()`) without paying for it in the
    /// disabled deployment mode.
    pub fn span_with(&self, kind: &'static str, label: impl FnOnce() -> String) -> Span {
        if self.inner.is_none() {
            return Span { state: None };
        }
        self.span(kind, &label())
    }

    /// Increments a counter by 1.
    pub fn incr(&self, name: &'static str) {
        self.incr_by(name, 1);
    }

    /// Increments a counter by `delta`.
    pub fn incr_by(&self, name: &'static str, delta: u64) {
        if let Some(shared) = &self.inner {
            shared.sink.record(Event::Counter { name, delta });
        }
    }

    /// Sets a gauge.
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(shared) = &self.inner {
            shared.sink.record(Event::Gauge { name, value });
        }
    }

    /// Emits a multi-reading progress snapshot (the campaign heartbeat).
    /// `readings` is only invoked when the handle is enabled, so callers
    /// can gather per-worker tallies in the closure without paying for it
    /// in the disabled deployment mode.
    pub fn snapshot(&self, name: &'static str, readings: impl FnOnce() -> Vec<(String, i64)>) {
        if let Some(shared) = &self.inner {
            let seq = shared.next_snapshot_seq.fetch_add(1, Ordering::Relaxed);
            shared.sink.record(Event::Snapshot {
                name,
                seq,
                ts_nanos: monotonic_nanos(),
                readings: readings(),
            });
        }
    }

    /// Replays events recorded elsewhere — typically a worker's private
    /// `MemorySink` — into this handle's sink, remapping span ids into
    /// this handle's id space so replayed start/end pairs stay paired and
    /// can never collide with natively emitted spans. Root spans in the
    /// replayed stream stay roots; to graft them under a local span, use
    /// [`Telemetry::absorb_under`]. A no-op on a disabled handle.
    ///
    /// Workers absorb in a deterministic order (worker index) so the
    /// parent's event stream is reproducible for a fixed worker count.
    pub fn absorb(&self, events: &[Event]) {
        self.absorb_under(events, SpanId::NONE);
    }

    /// Like [`Telemetry::absorb`], but grafts the replayed stream's *root*
    /// spans under `graft`, preserving the stream's internal parent links
    /// (remapped alongside the ids). This is how a worker's span forest
    /// becomes a subtree of the campaign span. Snapshot events are
    /// re-sequenced into this handle's snapshot order; timestamps are
    /// preserved (worker and parent share the process trace epoch).
    pub fn absorb_under(&self, events: &[Event], graft: SpanId) {
        let Some(shared) = &self.inner else {
            return;
        };
        fn fresh(
            remap: &mut std::collections::HashMap<u64, u64>,
            shared: &Shared,
            old: u64,
        ) -> u64 {
            *remap
                .entry(old)
                .or_insert_with(|| shared.next_span_id.fetch_add(1, Ordering::Relaxed))
        }
        let mut remap: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for event in events {
            let replayed = match event {
                Event::SpanStart {
                    kind,
                    label,
                    id,
                    parent,
                    ts_nanos,
                } => Event::SpanStart {
                    kind,
                    label: label.clone(),
                    id: fresh(&mut remap, shared, *id),
                    parent: match parent {
                        Some(p) => Some(fresh(&mut remap, shared, *p)),
                        None => graft.0,
                    },
                    ts_nanos: *ts_nanos,
                },
                Event::SpanEnd {
                    kind,
                    label,
                    id,
                    nanos,
                    ts_nanos,
                } => Event::SpanEnd {
                    kind,
                    label: label.clone(),
                    id: fresh(&mut remap, shared, *id),
                    nanos: *nanos,
                    ts_nanos: *ts_nanos,
                },
                Event::Snapshot {
                    name,
                    seq: _,
                    ts_nanos,
                    readings,
                } => Event::Snapshot {
                    name,
                    seq: shared.next_snapshot_seq.fetch_add(1, Ordering::Relaxed),
                    ts_nanos: *ts_nanos,
                    readings: readings.clone(),
                },
                other => other.clone(),
            };
            shared.sink.record(replayed);
        }
    }
}

struct SpanState {
    shared: Arc<Shared>,
    kind: &'static str,
    label: String,
    id: u64,
    start: Instant,
    start_ts: u64,
}

/// A span guard; see [`Telemetry::span`].
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}

    /// True when the span belongs to an enabled handle.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// This span's identity, for parenting other spans under it via
    /// [`Telemetry::at`]. [`SpanId::NONE`] when not recording.
    pub fn id(&self) -> SpanId {
        SpanId(self.state.as_ref().map(|s| s.id))
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.is_recording())
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let nanos = u64::try_from(state.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // The end timestamp is start + measured duration (not a second
            // clock read), so a start/end pair can never disagree with the
            // span's own duration in an exported trace.
            state.shared.sink.record(Event::SpanEnd {
                kind: state.kind,
                label: state.label,
                id: state.id,
                nanos,
                ts_nanos: state.start_ts.saturating_add(nanos),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{MemorySink, NullSink};

    #[test]
    fn default_is_disabled() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.incr("x");
        tel.gauge("g", 1);
        tel.snapshot("s", || vec![("a".into(), 1)]);
        let span = tel.span("k", "l");
        assert!(!span.is_recording());
        assert!(span.id().is_none());
        span.finish();
    }

    #[test]
    fn null_sink_collapses_to_disabled() {
        let tel = Telemetry::new(Arc::new(NullSink));
        assert!(!tel.is_enabled());
    }

    #[test]
    fn span_ids_pair_start_and_end() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        tel.span("a", "first").finish();
        tel.span("a", "second").finish();
        let events = sink.events();
        assert_eq!(events.len(), 4);
        match (&events[0], &events[1]) {
            (
                Event::SpanStart {
                    id: s,
                    label: l1,
                    parent,
                    ts_nanos: start_ts,
                    ..
                },
                Event::SpanEnd {
                    id: e,
                    label: l2,
                    nanos,
                    ts_nanos: end_ts,
                    ..
                },
            ) => {
                assert_eq!(s, e);
                assert_eq!(l1, "first");
                assert_eq!(l2, "first");
                assert_eq!(*parent, None, "handle not positioned: root span");
                assert_eq!(*end_ts, start_ts + nanos, "end ts = start ts + duration");
                assert!(*nanos < 1_000_000_000, "span must not take a second");
            }
            other => panic!("unexpected event order: {other:?}"),
        }
    }

    #[test]
    fn at_parents_spans_under_the_given_id() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        let outer = tel.span("suite", "S");
        let under = tel.at(outer.id());
        under.span("case", "TC0").finish();
        // Repositioning composes: a handle derived from `under` at a new
        // parent forgets the old one.
        let inner = under.span("case", "TC1");
        under.at(inner.id()).span("call", "M").finish();
        inner.finish();
        outer.finish();

        let events = sink.events();
        let parent_of = |want_kind: &str, want_label: &str| {
            events.iter().find_map(|e| match e {
                Event::SpanStart {
                    kind,
                    label,
                    parent,
                    ..
                } if *kind == want_kind && label == want_label => Some(*parent),
                _ => None,
            })
        };
        let id_of = |want_kind: &str, want_label: &str| {
            events.iter().find_map(|e| match e {
                Event::SpanStart {
                    kind, label, id, ..
                } if *kind == want_kind && label == want_label => Some(*id),
                _ => None,
            })
        };
        assert_eq!(parent_of("suite", "S"), Some(None));
        assert_eq!(parent_of("case", "TC0"), Some(id_of("suite", "S")));
        assert_eq!(parent_of("case", "TC1"), Some(id_of("suite", "S")));
        assert_eq!(parent_of("call", "M"), Some(id_of("case", "TC1")));
    }

    #[test]
    fn at_on_disabled_handle_stays_disabled() {
        let off = Telemetry::disabled();
        let derived = off.at(SpanId::NONE);
        assert!(!derived.is_enabled());
        // A live SpanId applied to a disabled handle is still a no-op.
        let sink = Arc::new(MemorySink::new());
        let live = Telemetry::new(sink.clone());
        let span = live.span("a", "x");
        let derived = off.at(span.id());
        assert!(!derived.is_enabled());
    }

    #[test]
    fn snapshots_sequence_per_handle() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        tel.snapshot("campaign.progress", || vec![("done".into(), 1)]);
        tel.snapshot("campaign.progress", || vec![("done".into(), 2)]);
        let seqs: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Snapshot { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        let tel2 = tel.clone();
        tel.incr("n");
        tel2.incr("n");
        assert_eq!(sink.counter_total("n"), 2);
    }

    #[test]
    fn absorb_replays_with_remapped_span_ids() {
        let worker_sink = Arc::new(MemorySink::new());
        let worker = Telemetry::new(worker_sink.clone());
        worker.span("mutant", "w0").finish();
        worker.incr("mutant.survived");
        worker.gauge("g", 4);

        let parent_sink = Arc::new(MemorySink::new());
        let parent = Telemetry::new(parent_sink.clone());
        // Claim id 0 natively so the worker's id 0 must be remapped.
        parent.span("golden", "base").finish();
        parent.absorb(&worker_sink.events());

        let events = parent_sink.events();
        assert_eq!(parent_sink.span_count("mutant"), 1);
        assert_eq!(parent_sink.counter_total("mutant.survived"), 1);
        assert_eq!(parent_sink.gauge_value("g"), Some(4));
        // The replayed pair shares one fresh id, distinct from the native
        // span's id.
        let ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart {
                    kind: "mutant", id, ..
                }
                | Event::SpanEnd {
                    kind: "mutant", id, ..
                } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], ids[1]);
        let native_ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart {
                    kind: "golden", id, ..
                } => Some(*id),
                _ => None,
            })
            .collect();
        assert!(!ids.contains(&native_ids[0]), "no id collision");
    }

    #[test]
    fn absorb_under_grafts_roots_and_preserves_inner_parents() {
        let worker_sink = Arc::new(MemorySink::new());
        let worker = Telemetry::new(worker_sink.clone());
        let root = worker.span("worker", "w0");
        worker.at(root.id()).span("mutant", "#1").finish();
        root.finish();
        worker.snapshot("campaign.progress", || vec![("done".into(), 1)]);

        let parent_sink = Arc::new(MemorySink::new());
        let parent = Telemetry::new(parent_sink.clone());
        let campaign = parent.span("mutation", "Acc");
        parent.snapshot("campaign.progress", || vec![("done".into(), 0)]);
        parent.absorb_under(&worker_sink.events(), campaign.id());
        campaign.finish();

        let events = parent_sink.events();
        let find_start = |want_kind: &str| {
            events.iter().find_map(|e| match e {
                Event::SpanStart {
                    kind, id, parent, ..
                } if *kind == want_kind => Some((*id, *parent)),
                _ => None,
            })
        };
        let (campaign_id, campaign_parent) = find_start("mutation").unwrap();
        let (worker_id, worker_parent) = find_start("worker").unwrap();
        let (_, mutant_parent) = find_start("mutant").unwrap();
        assert_eq!(campaign_parent, None);
        assert_eq!(worker_parent, Some(campaign_id), "root grafted");
        assert_eq!(worker_parent, Some(campaign_id));
        assert_eq!(
            mutant_parent,
            Some(worker_id),
            "inner parent link remapped, not grafted"
        );
        // The absorbed snapshot was re-sequenced after the native one.
        let seqs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Snapshot { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn absorb_on_disabled_handle_is_a_noop() {
        let off = Telemetry::disabled();
        off.absorb(&[Event::Counter {
            name: "n",
            delta: 1,
        }]);
        assert!(!off.is_enabled());
    }

    #[test]
    fn incr_by_and_gauge_record() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        tel.incr_by("n", 5);
        tel.gauge("g", -3);
        assert_eq!(sink.counter_total("n"), 5);
        assert_eq!(sink.gauge_value("g"), Some(-3));
    }
}
