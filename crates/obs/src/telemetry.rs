//! The [`Telemetry`] handle instrumented code holds.
//!
//! Cheap to clone (an `Option<Arc>`), thread-safe, and — critically —
//! free when disabled: a disabled handle never reads the clock, never
//! allocates a label, never touches an atomic. Instrumentation sites can
//! therefore sit on the hottest paths of the runner and the mutation
//! engine without a deployment-mode cost, the same bargain the paper's
//! BIT access control strikes for assertions.

use crate::collector::Collector;
use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Shared {
    sink: Arc<dyn Collector>,
    next_span_id: AtomicU64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("next_span_id", &self.next_span_id)
            .finish_non_exhaustive()
    }
}

/// A handle for emitting telemetry events.
///
/// # Examples
///
/// ```
/// use concat_obs::{MemorySink, Telemetry};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let tel = Telemetry::new(sink.clone());
/// {
///     let _span = tel.span("case", "TC0");
///     tel.incr("case.passed");
/// }
/// assert_eq!(sink.span_count("case"), 1);
/// assert_eq!(sink.counter_total("case.passed"), 1);
///
/// // The default handle is disabled and does nothing at all.
/// let off = Telemetry::disabled();
/// let _span = off.span("case", "TC1");
/// assert!(!off.is_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

impl Telemetry {
    /// The disabled handle: every operation is a no-op. This is also the
    /// `Default`.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle over `sink`. Passing a sink whose
    /// [`Collector::is_null`] returns true (e.g. [`crate::NullSink`])
    /// yields the disabled fast path.
    pub fn new(sink: Arc<dyn Collector>) -> Self {
        if sink.is_null() {
            return Self::disabled();
        }
        Telemetry {
            inner: Some(Arc::new(Shared {
                sink,
                next_span_id: AtomicU64::new(0),
            })),
        }
    }

    /// True when a real sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. The returned guard emits [`Event::SpanStart`] now and
    /// the matching [`Event::SpanEnd`] (with monotonic elapsed nanoseconds)
    /// when dropped. On a disabled handle this reads no clock and
    /// allocates nothing.
    pub fn span(&self, kind: &'static str, label: &str) -> Span {
        let Some(shared) = &self.inner else {
            return Span { state: None };
        };
        let id = shared.next_span_id.fetch_add(1, Ordering::Relaxed);
        let label = label.to_owned();
        shared.sink.record(Event::SpanStart {
            kind,
            label: label.clone(),
            id,
        });
        Span {
            state: Some(SpanState {
                shared: Arc::clone(shared),
                kind,
                label,
                id,
                start: Instant::now(),
            }),
        }
    }

    /// Opens a span with a lazily built label: `label` is only invoked
    /// when the handle is enabled, so callers can pass an allocating
    /// closure (`|| mutant.to_string()`) without paying for it in the
    /// disabled deployment mode.
    pub fn span_with(&self, kind: &'static str, label: impl FnOnce() -> String) -> Span {
        if self.inner.is_none() {
            return Span { state: None };
        }
        self.span(kind, &label())
    }

    /// Increments a counter by 1.
    pub fn incr(&self, name: &'static str) {
        self.incr_by(name, 1);
    }

    /// Increments a counter by `delta`.
    pub fn incr_by(&self, name: &'static str, delta: u64) {
        if let Some(shared) = &self.inner {
            shared.sink.record(Event::Counter { name, delta });
        }
    }

    /// Sets a gauge.
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(shared) = &self.inner {
            shared.sink.record(Event::Gauge { name, value });
        }
    }

    /// Replays events recorded elsewhere — typically a worker's private
    /// `MemorySink` — into this handle's sink, remapping span ids into
    /// this handle's id space so replayed start/end pairs stay paired and
    /// can never collide with natively emitted spans. A no-op on a
    /// disabled handle.
    ///
    /// Workers absorb in a deterministic order (worker index) so the
    /// parent's event stream is reproducible for a fixed worker count.
    pub fn absorb(&self, events: &[Event]) {
        let Some(shared) = &self.inner else {
            return;
        };
        let mut remap: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for event in events {
            let mut fresh_id = |old: u64| {
                *remap
                    .entry(old)
                    .or_insert_with(|| shared.next_span_id.fetch_add(1, Ordering::Relaxed))
            };
            let replayed = match event {
                Event::SpanStart { kind, label, id } => Event::SpanStart {
                    kind,
                    label: label.clone(),
                    id: fresh_id(*id),
                },
                Event::SpanEnd {
                    kind,
                    label,
                    id,
                    nanos,
                } => Event::SpanEnd {
                    kind,
                    label: label.clone(),
                    id: fresh_id(*id),
                    nanos: *nanos,
                },
                other => other.clone(),
            };
            shared.sink.record(replayed);
        }
    }
}

struct SpanState {
    shared: Arc<Shared>,
    kind: &'static str,
    label: String,
    id: u64,
    start: Instant,
}

/// A span guard; see [`Telemetry::span`].
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}

    /// True when the span belongs to an enabled handle.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.is_recording())
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let nanos = u64::try_from(state.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            state.shared.sink.record(Event::SpanEnd {
                kind: state.kind,
                label: state.label,
                id: state.id,
                nanos,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{MemorySink, NullSink};

    #[test]
    fn default_is_disabled() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.incr("x");
        tel.gauge("g", 1);
        let span = tel.span("k", "l");
        assert!(!span.is_recording());
        span.finish();
    }

    #[test]
    fn null_sink_collapses_to_disabled() {
        let tel = Telemetry::new(Arc::new(NullSink));
        assert!(!tel.is_enabled());
    }

    #[test]
    fn span_ids_pair_start_and_end() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        tel.span("a", "first").finish();
        tel.span("a", "second").finish();
        let events = sink.events();
        assert_eq!(events.len(), 4);
        match (&events[0], &events[1]) {
            (
                Event::SpanStart {
                    id: s, label: l1, ..
                },
                Event::SpanEnd {
                    id: e,
                    label: l2,
                    nanos,
                    ..
                },
            ) => {
                assert_eq!(s, e);
                assert_eq!(l1, "first");
                assert_eq!(l2, "first");
                assert!(*nanos < 1_000_000_000, "span must not take a second");
            }
            other => panic!("unexpected event order: {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        let tel2 = tel.clone();
        tel.incr("n");
        tel2.incr("n");
        assert_eq!(sink.counter_total("n"), 2);
    }

    #[test]
    fn absorb_replays_with_remapped_span_ids() {
        let worker_sink = Arc::new(MemorySink::new());
        let worker = Telemetry::new(worker_sink.clone());
        worker.span("mutant", "w0").finish();
        worker.incr("mutant.survived");
        worker.gauge("g", 4);

        let parent_sink = Arc::new(MemorySink::new());
        let parent = Telemetry::new(parent_sink.clone());
        // Claim id 0 natively so the worker's id 0 must be remapped.
        parent.span("golden", "base").finish();
        parent.absorb(&worker_sink.events());

        let events = parent_sink.events();
        assert_eq!(parent_sink.span_count("mutant"), 1);
        assert_eq!(parent_sink.counter_total("mutant.survived"), 1);
        assert_eq!(parent_sink.gauge_value("g"), Some(4));
        // The replayed pair shares one fresh id, distinct from the native
        // span's id.
        let ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart {
                    kind: "mutant", id, ..
                }
                | Event::SpanEnd {
                    kind: "mutant", id, ..
                } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], ids[1]);
        let native_ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart {
                    kind: "golden", id, ..
                } => Some(*id),
                _ => None,
            })
            .collect();
        assert!(!ids.contains(&native_ids[0]), "no id collision");
    }

    #[test]
    fn absorb_on_disabled_handle_is_a_noop() {
        let off = Telemetry::disabled();
        off.absorb(&[Event::Counter {
            name: "n",
            delta: 1,
        }]);
        assert!(!off.is_enabled());
    }

    #[test]
    fn incr_by_and_gauge_record() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        tel.incr_by("n", 5);
        tel.gauge("g", -3);
        assert_eq!(sink.counter_total("n"), 5);
        assert_eq!(sink.gauge_value("g"), Some(-3));
    }
}
