//! Aggregated views over recorded events.
//!
//! A [`Summary`] is what reports print: per-span-kind timing statistics
//! (count/min/max/mean/p50/p95 from a fixed-bucket [`Histogram`]) plus
//! final counter and gauge values.

use crate::event::Event;
use crate::histogram::Histogram;
use std::collections::BTreeMap;

/// Timing statistics of one span kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans of this kind.
    pub count: u64,
    /// Shortest span, nanoseconds.
    pub min_nanos: u64,
    /// Longest span, nanoseconds.
    pub max_nanos: u64,
    /// Mean span duration, nanoseconds.
    pub mean_nanos: u64,
    /// Median estimate (histogram bucket bound), nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile estimate (histogram bucket bound), nanoseconds.
    pub p95_nanos: u64,
}

impl SpanStats {
    fn of(h: &Histogram) -> SpanStats {
        SpanStats {
            count: h.count(),
            min_nanos: h.min_nanos(),
            max_nanos: h.max_nanos(),
            mean_nanos: h.mean_nanos(),
            p50_nanos: h.quantile_nanos(0.50),
            p95_nanos: h.quantile_nanos(0.95),
        }
    }
}

/// Aggregation of a run's telemetry, keyed by span kind / counter name /
/// gauge name. Built by [`Summary::from_events`] (or
/// `MemorySink::summary`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Per-span-kind timing statistics, ordered by kind.
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Final counter totals, ordered by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-set gauge values, ordered by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// The underlying per-kind histograms `spans` was derived from, kept
    /// so two summaries can [`Summary::merge`] with exact bucket counts
    /// instead of re-deriving statistics from already-rounded quantiles.
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Summary {
    /// Aggregates a recorded event stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Summary {
        let mut histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&'static str, i64> = BTreeMap::new();
        for event in events {
            match event {
                Event::SpanStart { .. } => {}
                Event::SpanEnd { kind, nanos, .. } => {
                    histograms.entry(kind).or_default().record(*nanos);
                }
                Event::Counter { name, delta } => {
                    *counters.entry(name).or_insert(0) += delta;
                }
                Event::Gauge { name, value } => {
                    gauges.insert(name, *value);
                }
            }
        }
        Summary {
            spans: histograms
                .iter()
                .map(|(k, h)| (*k, SpanStats::of(h)))
                .collect(),
            counters,
            gauges,
            histograms,
        }
    }

    /// Merges another summary into this one — the aggregation path for
    /// per-worker telemetry collectors.
    ///
    /// Span statistics merge exactly (the underlying histograms are
    /// bucket-wise additive), counter totals sum, and gauge values *sum*
    /// as well: across workers a gauge holds a shard-local count (e.g.
    /// each worker's equivalent-mutant tally), so addition is the
    /// aggregation that preserves the run-wide reading. Merging summaries
    /// whose gauges are not additive is a caller error.
    pub fn merge(&mut self, other: &Summary) {
        for (kind, h) in &other.histograms {
            self.histograms.entry(kind).or_default().merge(h);
        }
        self.spans = self
            .histograms
            .iter()
            .map(|(k, h)| (*k, SpanStats::of(h)))
            .collect();
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name).or_insert(0) += value;
        }
    }

    /// Total of one counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last value of one gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Timing statistics for one span kind.
    pub fn span(&self, kind: &str) -> Option<&SpanStats> {
        self.spans.get(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_kind_and_name() {
        let events = vec![
            Event::SpanStart {
                kind: "case",
                label: "a".into(),
                id: 1,
            },
            Event::SpanEnd {
                kind: "case",
                label: "a".into(),
                id: 1,
                nanos: 1_000,
            },
            Event::SpanEnd {
                kind: "case",
                label: "b".into(),
                id: 2,
                nanos: 3_000,
            },
            Event::SpanEnd {
                kind: "suite",
                label: "s".into(),
                id: 3,
                nanos: 9_000,
            },
            Event::Counter {
                name: "case.passed",
                delta: 1,
            },
            Event::Counter {
                name: "case.passed",
                delta: 1,
            },
            Event::Gauge {
                name: "g",
                value: 5,
            },
            Event::Gauge {
                name: "g",
                value: 7,
            },
        ];
        let s = Summary::from_events(&events);
        let case = s.span("case").unwrap();
        assert_eq!(case.count, 2);
        assert_eq!(case.min_nanos, 1_000);
        assert_eq!(case.max_nanos, 3_000);
        assert_eq!(case.mean_nanos, 2_000);
        assert_eq!(s.span("suite").unwrap().count, 1);
        assert_eq!(s.counter("case.passed"), 2);
        assert_eq!(s.counter("never"), 0);
        assert_eq!(s.gauge("g"), Some(7));
        assert_eq!(s.gauge("absent"), None);
    }

    #[test]
    fn merge_matches_single_stream_aggregation() {
        // Two shards' event streams, summarized separately then merged,
        // must agree exactly with one summary over the concatenation.
        let shard_a = vec![
            Event::SpanEnd {
                kind: "mutant",
                label: "a".into(),
                id: 1,
                nanos: 1_000,
            },
            Event::Counter {
                name: "mutant.survived",
                delta: 2,
            },
            Event::Gauge {
                name: "equivalents",
                value: 3,
            },
        ];
        let shard_b = vec![
            Event::SpanEnd {
                kind: "mutant",
                label: "b".into(),
                id: 1,
                nanos: 9_000,
            },
            Event::SpanEnd {
                kind: "golden",
                label: "g".into(),
                id: 2,
                nanos: 4_000,
            },
            Event::Counter {
                name: "mutant.survived",
                delta: 1,
            },
            Event::Gauge {
                name: "equivalents",
                value: 4,
            },
        ];
        let mut merged = Summary::from_events(&shard_a);
        merged.merge(&Summary::from_events(&shard_b));

        let mutant = merged.span("mutant").unwrap();
        assert_eq!(mutant.count, 2);
        assert_eq!(mutant.min_nanos, 1_000);
        assert_eq!(mutant.max_nanos, 9_000);
        assert_eq!(mutant.mean_nanos, 5_000);
        assert_eq!(merged.span("golden").unwrap().count, 1);
        assert_eq!(merged.counter("mutant.survived"), 3);
        // Gauges are shard-local counts: they sum.
        assert_eq!(merged.gauge("equivalents"), Some(7));

        let combined: Vec<Event> = shard_a.iter().chain(&shard_b).cloned().collect();
        let whole = Summary::from_events(&combined);
        assert_eq!(merged.spans, whole.spans);
        assert_eq!(merged.counters, whole.counters);
        // (gauges differ by design: last-write vs additive)
    }

    #[test]
    fn merge_into_empty_is_identity_for_spans_and_counters() {
        let events = vec![Event::SpanEnd {
            kind: "case",
            label: "c".into(),
            id: 1,
            nanos: 2_000,
        }];
        let other = Summary::from_events(&events);
        let mut merged = Summary::default();
        merged.merge(&other);
        assert_eq!(merged.spans, other.spans);
        // A second merge keeps exact bucket counts (not re-derived).
        merged.merge(&other);
        assert_eq!(merged.span("case").unwrap().count, 2);
    }
}
