//! Aggregated views over recorded events.
//!
//! A [`Summary`] is what reports print: per-span-kind timing statistics
//! (count/min/max/mean/p50/p95 from a fixed-bucket [`Histogram`]) plus
//! final counter and gauge values. Since the event stream carries causal
//! span trees, the summary also derives *self time* per span kind —
//! total duration minus the time spent in child spans — which is what
//! the hot-path attribution table prints, and it collects the progress
//! [`SnapshotRecord`]s emitted by the campaign heartbeat.

use crate::event::Event;
use crate::histogram::Histogram;
use std::collections::{BTreeMap, HashMap};

/// Timing statistics of one span kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans of this kind.
    pub count: u64,
    /// Shortest span, nanoseconds.
    pub min_nanos: u64,
    /// Longest span, nanoseconds.
    pub max_nanos: u64,
    /// Mean span duration, nanoseconds.
    pub mean_nanos: u64,
    /// Median estimate (histogram bucket bound), nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile estimate (histogram bucket bound), nanoseconds.
    pub p95_nanos: u64,
}

impl SpanStats {
    fn of(h: &Histogram) -> SpanStats {
        SpanStats {
            count: h.count(),
            min_nanos: h.min_nanos(),
            max_nanos: h.max_nanos(),
            mean_nanos: h.mean_nanos(),
            p50_nanos: h.quantile_nanos(0.50),
            p95_nanos: h.quantile_nanos(0.95),
        }
    }
}

/// One progress snapshot (heartbeat) carried through to the summary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotRecord {
    /// Snapshot name, e.g. `"campaign.progress"`.
    pub name: &'static str,
    /// Emission sequence number within its stream.
    pub seq: u64,
    /// Snapshot time, nanoseconds since the process trace epoch.
    pub ts_nanos: u64,
    /// Named readings, in emission order.
    pub readings: Vec<(String, i64)>,
}

/// Aggregation of a run's telemetry, keyed by span kind / counter name /
/// gauge name. Built by [`Summary::from_events`] (or
/// `MemorySink::summary`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Per-span-kind timing statistics (total durations), ordered by
    /// kind.
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Per-span-kind *self*-time statistics: each span's duration minus
    /// the summed durations of its direct children (derived from the
    /// parent links in the event stream). For a span with no recorded
    /// children, self time equals total time.
    pub self_spans: BTreeMap<&'static str, SpanStats>,
    /// Final counter totals, ordered by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-set gauge values, ordered by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Progress snapshots, in a canonical order (name, then sequence)
    /// that is independent of how per-worker streams were merged.
    pub snapshots: Vec<SnapshotRecord>,
    /// The underlying per-kind histograms `spans` was derived from, kept
    /// so two summaries can [`Summary::merge`] with exact bucket counts
    /// instead of re-deriving statistics from already-rounded quantiles.
    histograms: BTreeMap<&'static str, Histogram>,
    /// Likewise for `self_spans`.
    self_histograms: BTreeMap<&'static str, Histogram>,
}

/// Book-keeping for one started-but-not-yet-ended span during
/// [`Summary::from_events`].
struct OpenSpan {
    parent: Option<u64>,
    child_nanos: u64,
}

impl Summary {
    /// Aggregates a recorded event stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Summary {
        let mut histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        let mut self_histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&'static str, i64> = BTreeMap::new();
        let mut snapshots: Vec<SnapshotRecord> = Vec::new();
        // Open spans by id. A stack per id tolerates id reuse across
        // absorbed streams; an end without a start (pre-tree streams,
        // truncated tails) degrades to self == total.
        let mut open: HashMap<u64, Vec<OpenSpan>> = HashMap::new();
        for event in events {
            match event {
                Event::SpanStart { id, parent, .. } => {
                    open.entry(*id).or_default().push(OpenSpan {
                        parent: *parent,
                        child_nanos: 0,
                    });
                }
                Event::SpanEnd {
                    kind, nanos, id, ..
                } => {
                    histograms.entry(kind).or_default().record(*nanos);
                    let entry =
                        open.get_mut(id)
                            .and_then(|stack| stack.pop())
                            .unwrap_or(OpenSpan {
                                parent: None,
                                child_nanos: 0,
                            });
                    self_histograms
                        .entry(kind)
                        .or_default()
                        .record(nanos.saturating_sub(entry.child_nanos));
                    if let Some(parent_id) = entry.parent {
                        if let Some(parent) =
                            open.get_mut(&parent_id).and_then(|stack| stack.last_mut())
                        {
                            parent.child_nanos = parent.child_nanos.saturating_add(*nanos);
                        }
                    }
                }
                Event::Counter { name, delta } => {
                    *counters.entry(name).or_insert(0) += delta;
                }
                Event::Gauge { name, value } => {
                    gauges.insert(name, *value);
                }
                Event::Snapshot {
                    name,
                    seq,
                    ts_nanos,
                    readings,
                } => {
                    snapshots.push(SnapshotRecord {
                        name,
                        seq: *seq,
                        ts_nanos: *ts_nanos,
                        readings: readings.clone(),
                    });
                }
            }
        }
        snapshots.sort();
        Summary {
            spans: histograms
                .iter()
                .map(|(k, h)| (*k, SpanStats::of(h)))
                .collect(),
            self_spans: self_histograms
                .iter()
                .map(|(k, h)| (*k, SpanStats::of(h)))
                .collect(),
            counters,
            gauges,
            snapshots,
            histograms,
            self_histograms,
        }
    }

    /// Merges another summary into this one — the aggregation path for
    /// per-worker telemetry collectors.
    ///
    /// Span statistics (total and self time) merge exactly (the
    /// underlying histograms are bucket-wise additive), counter totals
    /// sum, snapshots concatenate into the canonical order, and gauge
    /// values *sum*: across workers a gauge holds a shard-local count
    /// (e.g. each worker's equivalent-mutant tally), so addition is the
    /// aggregation that preserves the run-wide reading. Merging summaries
    /// whose gauges are not additive is a caller error. The result does
    /// not depend on merge order (see the regression test).
    pub fn merge(&mut self, other: &Summary) {
        for (kind, h) in &other.histograms {
            self.histograms.entry(kind).or_default().merge(h);
        }
        for (kind, h) in &other.self_histograms {
            self.self_histograms.entry(kind).or_default().merge(h);
        }
        self.spans = self
            .histograms
            .iter()
            .map(|(k, h)| (*k, SpanStats::of(h)))
            .collect();
        self.self_spans = self
            .self_histograms
            .iter()
            .map(|(k, h)| (*k, SpanStats::of(h)))
            .collect();
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name).or_insert(0) += value;
        }
        self.snapshots.extend(other.snapshots.iter().cloned());
        self.snapshots.sort();
    }

    /// Total of one counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last value of one gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Timing statistics for one span kind.
    pub fn span(&self, kind: &str) -> Option<&SpanStats> {
        self.spans.get(kind)
    }

    /// Self-time statistics for one span kind.
    pub fn self_span(&self, kind: &str) -> Option<&SpanStats> {
        self.self_spans.get(kind)
    }

    /// The exact duration histogram backing [`Summary::span`] for one
    /// kind — the source for report quantiles beyond p50/p95 (the bench
    /// harness reads p99 from here).
    pub fn histogram(&self, kind: &str) -> Option<&Histogram> {
        self.histograms.get(kind)
    }

    /// The exact *self*-time histogram backing [`Summary::self_span`] for
    /// one kind — the source for attribution totals, which need exact
    /// sums rather than `count × mean` re-derivations.
    pub fn self_histogram(&self, kind: &str) -> Option<&Histogram> {
        self.self_histograms.get(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(kind: &'static str, id: u64, parent: Option<u64>) -> Event {
        Event::SpanStart {
            kind,
            label: String::new(),
            id,
            parent,
            ts_nanos: 0,
        }
    }

    fn end(kind: &'static str, id: u64, nanos: u64) -> Event {
        Event::SpanEnd {
            kind,
            label: String::new(),
            id,
            nanos,
            ts_nanos: nanos,
        }
    }

    #[test]
    fn aggregates_by_kind_and_name() {
        let events = vec![
            start("case", 1, None),
            end("case", 1, 1_000),
            end("case", 2, 3_000),
            end("suite", 3, 9_000),
            Event::Counter {
                name: "case.passed",
                delta: 1,
            },
            Event::Counter {
                name: "case.passed",
                delta: 1,
            },
            Event::Gauge {
                name: "g",
                value: 5,
            },
            Event::Gauge {
                name: "g",
                value: 7,
            },
        ];
        let s = Summary::from_events(&events);
        let case = s.span("case").unwrap();
        assert_eq!(case.count, 2);
        assert_eq!(case.min_nanos, 1_000);
        assert_eq!(case.max_nanos, 3_000);
        assert_eq!(case.mean_nanos, 2_000);
        assert_eq!(s.span("suite").unwrap().count, 1);
        assert_eq!(s.counter("case.passed"), 2);
        assert_eq!(s.counter("never"), 0);
        assert_eq!(s.gauge("g"), Some(7));
        assert_eq!(s.gauge("absent"), None);
        // No children recorded: self time equals total time.
        assert_eq!(s.self_span("case"), s.span("case"));
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // suite(10_000) contains two cases (1_000 + 3_000); each case
        // contains one call; calls have no children.
        let events = vec![
            start("suite", 0, None),
            start("case", 1, Some(0)),
            start("call", 2, Some(1)),
            end("call", 2, 400),
            end("case", 1, 1_000),
            start("case", 3, Some(0)),
            start("call", 4, Some(3)),
            end("call", 4, 2_500),
            end("case", 3, 3_000),
            end("suite", 0, 10_000),
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.span("suite").unwrap().max_nanos, 10_000);
        // suite self = 10_000 - (1_000 + 3_000) = 6_000.
        assert_eq!(s.self_span("suite").unwrap().max_nanos, 6_000);
        // case selfs: 1_000 - 400 = 600 and 3_000 - 2_500 = 500.
        let case_self = s.self_span("case").unwrap();
        assert_eq!(case_self.min_nanos, 500);
        assert_eq!(case_self.max_nanos, 600);
        // Leaf spans: self == total.
        assert_eq!(s.self_span("call"), s.span("call"));
    }

    #[test]
    fn snapshots_are_collected_in_canonical_order() {
        let events = vec![
            Event::Snapshot {
                name: "campaign.progress",
                seq: 1,
                ts_nanos: 20,
                readings: vec![("done".into(), 2)],
            },
            Event::Snapshot {
                name: "campaign.progress",
                seq: 0,
                ts_nanos: 10,
                readings: vec![("done".into(), 1)],
            },
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.snapshots.len(), 2);
        assert_eq!(s.snapshots[0].seq, 0);
        assert_eq!(s.snapshots[0].readings, vec![("done".to_owned(), 1)]);
        assert_eq!(s.snapshots[1].seq, 1);
    }

    #[test]
    fn merge_matches_single_stream_aggregation() {
        // Two shards' event streams, summarized separately then merged,
        // must agree exactly with one summary over the concatenation.
        let shard_a = vec![
            end("mutant", 1, 1_000),
            Event::Counter {
                name: "mutant.survived",
                delta: 2,
            },
            Event::Gauge {
                name: "equivalents",
                value: 3,
            },
        ];
        let shard_b = vec![
            end("mutant", 1, 9_000),
            end("golden", 2, 4_000),
            Event::Counter {
                name: "mutant.survived",
                delta: 1,
            },
            Event::Gauge {
                name: "equivalents",
                value: 4,
            },
        ];
        let mut merged = Summary::from_events(&shard_a);
        merged.merge(&Summary::from_events(&shard_b));

        let mutant = merged.span("mutant").unwrap();
        assert_eq!(mutant.count, 2);
        assert_eq!(mutant.min_nanos, 1_000);
        assert_eq!(mutant.max_nanos, 9_000);
        assert_eq!(mutant.mean_nanos, 5_000);
        assert_eq!(merged.span("golden").unwrap().count, 1);
        assert_eq!(merged.counter("mutant.survived"), 3);
        // Gauges are shard-local counts: they sum.
        assert_eq!(merged.gauge("equivalents"), Some(7));

        let combined: Vec<Event> = shard_a.iter().chain(&shard_b).cloned().collect();
        let whole = Summary::from_events(&combined);
        assert_eq!(merged.spans, whole.spans);
        assert_eq!(merged.self_spans, whole.self_spans);
        assert_eq!(merged.counters, whole.counters);
        // (gauges differ by design: last-write vs additive)
    }

    #[test]
    fn merge_order_does_not_change_the_summary() {
        // Per-worker streams with span trees, snapshots, counters and
        // gauges: merging a←b must equal merging b←a field for field.
        let worker_a = vec![
            start("worker", 0, None),
            start("mutant", 1, Some(0)),
            end("mutant", 1, 2_000),
            end("worker", 0, 5_000),
            Event::Counter {
                name: "mutant.killed",
                delta: 3,
            },
            Event::Gauge {
                name: "mutant.equivalent",
                value: 1,
            },
            Event::Snapshot {
                name: "campaign.progress",
                seq: 0,
                ts_nanos: 100,
                readings: vec![("done".into(), 4)],
            },
        ];
        let worker_b = vec![
            start("worker", 0, None),
            start("mutant", 1, Some(0)),
            end("mutant", 1, 7_000),
            end("worker", 0, 8_000),
            Event::Counter {
                name: "mutant.killed",
                delta: 2,
            },
            Event::Gauge {
                name: "mutant.equivalent",
                value: 2,
            },
            Event::Snapshot {
                name: "campaign.progress",
                seq: 1,
                ts_nanos: 50,
                readings: vec![("done".into(), 7)],
            },
        ];
        let a = Summary::from_events(&worker_a);
        let b = Summary::from_events(&worker_b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // And the merged tree stats are what the streams say: worker
        // self = 5_000-2_000 and 8_000-7_000.
        let worker_self = ab.self_span("worker").unwrap();
        assert_eq!(worker_self.min_nanos, 1_000);
        assert_eq!(worker_self.max_nanos, 3_000);
        assert_eq!(ab.counter("mutant.killed"), 5);
        assert_eq!(ab.gauge("mutant.equivalent"), Some(3));
        assert_eq!(ab.snapshots.len(), 2);
    }

    #[test]
    fn merge_into_empty_is_identity_for_spans_and_counters() {
        let events = vec![end("case", 1, 2_000)];
        let other = Summary::from_events(&events);
        let mut merged = Summary::default();
        merged.merge(&other);
        assert_eq!(merged.spans, other.spans);
        // A second merge keeps exact bucket counts (not re-derived).
        merged.merge(&other);
        assert_eq!(merged.span("case").unwrap().count, 2);
    }
}
