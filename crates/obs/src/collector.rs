//! Sinks: where telemetry events go.
//!
//! A [`Collector`] receives [`Event`]s from any thread. Three sinks ship:
//!
//! * [`NullSink`] — drops everything; the default. A [`crate::Telemetry`]
//!   handle built over it short-circuits to the fully disabled fast path,
//!   so instrumentation costs nothing when nobody is watching.
//! * [`MemorySink`] — appends into a mutex-guarded vector; tests and
//!   report tables read it back, or ask for an aggregated
//!   [`crate::Summary`].
//! * [`JsonlSink`] — serializes one JSON object per line into any writer,
//!   the interchange format future benchmark trajectories consume.
//!
//! Sinks are fail-safe on two axes. Lock poisoning is recovered, not
//! propagated: a panicking instrumented thread must not take telemetry on
//! every other thread down with it (recoveries are counted via
//! `poisoned_recoveries`). And the [`JsonlSink`] retries transiently
//! failing writes per its [`IoPolicy`]; once retries are exhausted it
//! *degrades* into a counting null sink — subsequent events are dropped
//! and counted instead of erroring the run they observe.

use crate::event::Event;
use crate::summary::Summary;
use concat_runtime::IoPolicy;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The operation label under which [`JsonlSink`] writes consult the
/// fault injector of their [`IoPolicy`].
pub const JSONL_WRITE_OP: &str = "obs.jsonl.write";

fn recover<'a, T: ?Sized>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
    recoveries: &AtomicU64,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|poisoned| {
        // The protected data (an event vector / a line writer) is valid
        // after any interrupted append; recovering keeps telemetry alive
        // when an instrumented thread panics mid-record.
        recoveries.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// A thread-safe event sink.
pub trait Collector: Send + Sync {
    /// Accepts one event. Must not panic; telemetry must never take the
    /// pipeline down.
    fn record(&self, event: Event);

    /// True for sinks that drop every event. [`crate::Telemetry::new`]
    /// collapses such sinks to the disabled fast path (no clock reads, no
    /// label allocation).
    fn is_null(&self) -> bool {
        false
    }
}

/// The no-op sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Collector for NullSink {
    fn record(&self, _event: Event) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// An in-memory sink for tests and report generation.
///
/// # Examples
///
/// ```
/// use concat_obs::{Collector, Event, MemorySink};
///
/// let sink = MemorySink::new();
/// sink.record(Event::Counter { name: "case.passed", delta: 1 });
/// assert_eq!(sink.counter_total("case.passed"), 1);
/// ```
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    poisoned_recoveries: AtomicU64,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Event>> {
        recover(self.events.lock(), &self.poisoned_recoveries)
    }

    /// A snapshot of every recorded event, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times a poisoned lock was recovered.
    pub fn poisoned_recoveries(&self) -> u64 {
        self.poisoned_recoveries.load(Ordering::Relaxed)
    }

    /// Sum of all increments of one counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// Number of *completed* spans of one kind.
    pub fn span_count(&self, kind: &str) -> usize {
        self.lock()
            .iter()
            .filter(|e| matches!(e, Event::SpanEnd { kind: k, .. } if *k == kind))
            .count()
    }

    /// Last-set value of one gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.lock().iter().rev().find_map(|e| match e {
            Event::Gauge { name: n, value } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Aggregates everything recorded so far.
    pub fn summary(&self) -> Summary {
        Summary::from_events(self.lock().iter())
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl Collector for MemorySink {
    fn record(&self, event: Event) {
        self.lock().push(event);
    }
}

/// A sink writing one JSON object per line to any writer.
///
/// Telemetry is advisory and must never fail the run it observes (the
/// paper's driver likewise treats `Result.txt` as best-effort output), so
/// the failure policy is *retry, then degrade*: transient write errors
/// retry per the sink's [`IoPolicy`]; once a write fails for good the
/// sink flips to a degraded mode in which later events are dropped and
/// counted ([`JsonlSink::dropped_events`]) rather than attempted.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    policy: IoPolicy,
    degraded: AtomicBool,
    dropped: AtomicU64,
    retries: AtomicU64,
    poisoned_recoveries: AtomicU64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer with the default policy (3 attempts, no injection).
    pub fn new(writer: W) -> Self {
        Self::with_policy(writer, IoPolicy::default())
    }

    /// Wraps a writer with an explicit retry/fault-injection policy.
    pub fn with_policy(writer: W, policy: IoPolicy) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            policy,
            degraded: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            poisoned_recoveries: AtomicU64::new(0),
        }
    }

    /// True once a write failed past its retry budget; the sink now drops
    /// (and counts) events instead of writing.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Events dropped since the sink degraded.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total write retries performed (successful or not).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// How many times a poisoned lock was recovered.
    pub fn poisoned_recoveries(&self) -> u64 {
        self.poisoned_recoveries.load(Ordering::Relaxed)
    }

    /// The sink's degraded-mode statistics as counter events
    /// (`obs.dropped` / `obs.retries`), for folding into a run's summary
    /// so the harness-health table surfaces telemetry loss instead of
    /// leaving it query-only.
    pub fn health_events(&self) -> Vec<Event> {
        vec![
            Event::Counter {
                name: "obs.dropped",
                delta: self.dropped_events(),
            },
            Event::Counter {
                name: "obs.retries",
                delta: self.retries(),
            },
        ]
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl JsonlSink<std::io::BufWriter<concat_runtime::AtomicFile>> {
    /// Opens a JSONL sink over an atomic file: events buffer into a temp
    /// file next to `path`, and only [`JsonlSink::finish`] fsyncs and
    /// renames it into place. A kill mid-trace leaves any previous trace
    /// at `path` intact — never a torn one.
    ///
    /// # Errors
    ///
    /// Propagates temp-file creation errors.
    pub fn create_path(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Self::create_path_with_policy(path, IoPolicy::default())
    }

    /// [`JsonlSink::create_path`] with an explicit retry/fault-injection
    /// policy.
    ///
    /// # Errors
    ///
    /// Propagates temp-file creation errors.
    pub fn create_path_with_policy(
        path: impl AsRef<std::path::Path>,
        policy: IoPolicy,
    ) -> std::io::Result<Self> {
        let file = concat_runtime::AtomicFile::create(path.as_ref())?;
        Ok(Self::with_policy(std::io::BufWriter::new(file), policy))
    }

    /// Flushes, fsyncs and renames the trace into its destination,
    /// returning the final path.
    ///
    /// # Errors
    ///
    /// Propagates flush/fsync/rename errors; on error the destination is
    /// left untouched and the temp file is cleaned up.
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        let writer = self.into_inner();
        let file = writer.into_inner().map_err(|e| e.into_error())?;
        file.commit()
    }
}

impl JsonlSink<Vec<u8>> {
    /// An in-memory JSONL sink, convenient for tests.
    pub fn in_memory() -> Self {
        JsonlSink::new(Vec::new())
    }

    /// An in-memory JSONL sink with an explicit policy (chaos tests).
    pub fn in_memory_with_policy(policy: IoPolicy) -> Self {
        JsonlSink::with_policy(Vec::new(), policy)
    }

    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&recover(self.writer.lock(), &self.poisoned_recoveries))
            .into_owned()
    }
}

impl<W: Write + Send> Collector for JsonlSink<W> {
    fn record(&self, event: Event) {
        if self.is_degraded() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let line = event.to_json();
        let mut w = recover(self.writer.lock(), &self.poisoned_recoveries);
        let attempt = self.policy.run(JSONL_WRITE_OP, || writeln!(w, "{line}"));
        drop(w);
        self.retries
            .fetch_add(u64::from(attempt.retries), Ordering::Relaxed);
        if attempt.result.is_err() {
            // Exhausted or non-transient: become a counting null sink.
            self.degraded.store(true, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::{FaultInjector, FaultKind, RetryPolicy};

    #[test]
    fn null_sink_reports_null() {
        assert!(NullSink.is_null());
        NullSink.record(Event::Counter {
            name: "x",
            delta: 1,
        }); // no-op
        assert!(!MemorySink::new().is_null());
    }

    #[test]
    fn memory_sink_accumulates() {
        let sink = MemorySink::new();
        sink.record(Event::Counter {
            name: "a",
            delta: 2,
        });
        sink.record(Event::Counter {
            name: "a",
            delta: 3,
        });
        sink.record(Event::Gauge {
            name: "g",
            value: 1,
        });
        sink.record(Event::Gauge {
            name: "g",
            value: 9,
        });
        sink.record(Event::SpanEnd {
            kind: "k",
            label: "l".into(),
            id: 0,
            nanos: 5,
            ts_nanos: 5,
        });
        assert_eq!(sink.counter_total("a"), 5);
        assert_eq!(sink.gauge_value("g"), Some(9));
        assert_eq!(sink.span_count("k"), 1);
        assert_eq!(sink.len(), 5);
        assert!(!sink.is_empty());
        assert_eq!(sink.poisoned_recoveries(), 0);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::in_memory();
        sink.record(Event::Counter {
            name: "a",
            delta: 1,
        });
        sink.record(Event::Gauge {
            name: "g",
            value: 2,
        });
        let text = sink.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(!sink.is_degraded());
        assert_eq!(sink.dropped_events(), 0);
        let bytes = sink.into_inner();
        assert_eq!(String::from_utf8(bytes).unwrap(), text);
    }

    #[test]
    fn jsonl_sink_retries_transient_write_failures() {
        let injector = FaultInjector::seeded(3);
        injector.fail_next(JSONL_WRITE_OP, 2, FaultKind::Transient);
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector,
        };
        let sink = JsonlSink::in_memory_with_policy(policy);
        sink.record(Event::Counter {
            name: "a",
            delta: 1,
        });
        assert!(!sink.is_degraded(), "retries absorbed the faults");
        assert_eq!(sink.retries(), 2);
        assert_eq!(sink.contents().lines().count(), 1);
    }

    #[test]
    fn jsonl_sink_degrades_to_counting_drops() {
        let injector = FaultInjector::seeded(3);
        injector.fail_always(JSONL_WRITE_OP, FaultKind::Persistent);
        let policy = IoPolicy {
            retry: RetryPolicy::no_delay(3),
            injector,
        };
        let sink = JsonlSink::in_memory_with_policy(policy);
        for _ in 0..4 {
            sink.record(Event::Counter {
                name: "a",
                delta: 1,
            });
        }
        assert!(sink.is_degraded());
        assert_eq!(sink.dropped_events(), 4);
        assert_eq!(sink.contents(), "", "nothing was written");
        let health = sink.health_events();
        assert_eq!(
            health[0],
            Event::Counter {
                name: "obs.dropped",
                delta: 4,
            }
        );
        assert!(matches!(
            health[1],
            Event::Counter {
                name: "obs.retries",
                delta,
            } if delta == sink.retries()
        ));
    }

    #[test]
    fn jsonl_sink_atomic_path_commits_on_finish() {
        let dir = std::env::temp_dir().join("concat-obs-jsonl-atomic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, "old trace\n").unwrap();
        let sink = JsonlSink::create_path(&path).unwrap();
        sink.record(Event::Counter {
            name: "a",
            delta: 1,
        });
        // Not committed yet: the previous trace is still intact.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old trace\n");
        let finished = sink.finish().unwrap();
        assert_eq!(finished, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with('{'));
        // An unfinished sink (a killed run) leaves the destination alone
        // and its drop cleans the temp file up.
        let sink = JsonlSink::create_path(&path).unwrap();
        sink.record(Event::Counter {
            name: "b",
            delta: 1,
        });
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "no temp litter"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_memory_sink_recovers_and_counts() {
        let sink = std::sync::Arc::new(MemorySink::new());
        let for_thread = std::sync::Arc::clone(&sink);
        // Poison the events mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = for_thread.events.lock().unwrap();
            panic!("poison the sink");
        })
        .join();
        sink.record(Event::Counter {
            name: "after",
            delta: 1,
        });
        assert_eq!(sink.counter_total("after"), 1);
        assert!(sink.poisoned_recoveries() >= 1);
    }
}
