//! Sinks: where telemetry events go.
//!
//! A [`Collector`] receives [`Event`]s from any thread. Three sinks ship:
//!
//! * [`NullSink`] — drops everything; the default. A [`crate::Telemetry`]
//!   handle built over it short-circuits to the fully disabled fast path,
//!   so instrumentation costs nothing when nobody is watching.
//! * [`MemorySink`] — appends into a mutex-guarded vector; tests and
//!   report tables read it back, or ask for an aggregated
//!   [`crate::Summary`].
//! * [`JsonlSink`] — serializes one JSON object per line into any writer,
//!   the interchange format future benchmark trajectories consume.

use crate::event::Event;
use crate::summary::Summary;
use std::io::Write;
use std::sync::Mutex;

/// A thread-safe event sink.
pub trait Collector: Send + Sync {
    /// Accepts one event. Must not panic; telemetry must never take the
    /// pipeline down.
    fn record(&self, event: Event);

    /// True for sinks that drop every event. [`crate::Telemetry::new`]
    /// collapses such sinks to the disabled fast path (no clock reads, no
    /// label allocation).
    fn is_null(&self) -> bool {
        false
    }
}

/// The no-op sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Collector for NullSink {
    fn record(&self, _event: Event) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// An in-memory sink for tests and report generation.
///
/// # Examples
///
/// ```
/// use concat_obs::{Collector, Event, MemorySink};
///
/// let sink = MemorySink::new();
/// sink.record(Event::Counter { name: "case.passed", delta: 1 });
/// assert_eq!(sink.counter_total("case.passed"), 1);
/// ```
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every recorded event, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all increments of one counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// Number of *completed* spans of one kind.
    pub fn span_count(&self, kind: &str) -> usize {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .filter(|e| matches!(e, Event::SpanEnd { kind: k, .. } if *k == kind))
            .count()
    }

    /// Last-set value of one gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::Gauge { name: n, value } if *n == name => Some(*value),
                _ => None,
            })
    }

    /// Aggregates everything recorded so far.
    pub fn summary(&self) -> Summary {
        Summary::from_events(self.events.lock().expect("memory sink poisoned").iter())
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("memory sink poisoned").clear();
    }
}

impl Collector for MemorySink {
    fn record(&self, event: Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event);
    }
}

/// A sink writing one JSON object per line to any writer.
///
/// Write errors are swallowed: telemetry is advisory and must never fail
/// the run it observes (the paper's driver likewise treats `Result.txt`
/// as best-effort output).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("jsonl sink poisoned")
    }
}

impl JsonlSink<Vec<u8>> {
    /// An in-memory JSONL sink, convenient for tests.
    pub fn in_memory() -> Self {
        JsonlSink::new(Vec::new())
    }

    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.writer.lock().expect("jsonl sink poisoned")).into_owned()
    }
}

impl<W: Write + Send> Collector for JsonlSink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = writeln!(w, "{}", event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_reports_null() {
        assert!(NullSink.is_null());
        NullSink.record(Event::Counter {
            name: "x",
            delta: 1,
        }); // no-op
        assert!(!MemorySink::new().is_null());
    }

    #[test]
    fn memory_sink_accumulates() {
        let sink = MemorySink::new();
        sink.record(Event::Counter {
            name: "a",
            delta: 2,
        });
        sink.record(Event::Counter {
            name: "a",
            delta: 3,
        });
        sink.record(Event::Gauge {
            name: "g",
            value: 1,
        });
        sink.record(Event::Gauge {
            name: "g",
            value: 9,
        });
        sink.record(Event::SpanEnd {
            kind: "k",
            label: "l".into(),
            id: 0,
            nanos: 5,
        });
        assert_eq!(sink.counter_total("a"), 5);
        assert_eq!(sink.gauge_value("g"), Some(9));
        assert_eq!(sink.span_count("k"), 1);
        assert_eq!(sink.len(), 5);
        assert!(!sink.is_empty());
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::in_memory();
        sink.record(Event::Counter {
            name: "a",
            delta: 1,
        });
        sink.record(Event::Gauge {
            name: "g",
            value: 2,
        });
        let text = sink.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        let bytes = sink.into_inner();
        assert_eq!(String::from_utf8(bytes).unwrap(), text);
    }
}
