//! Integration tests for the telemetry spine that need things the library
//! itself forbids or avoids: a counting global allocator (unsafe; the lib
//! is `#![forbid(unsafe_code)]`), spawned threads, and a hand-rolled JSON
//! parser checking that `JsonlSink` output survives a round trip.

use concat_obs::{Event, JsonlSink, MemorySink, NullSink, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

// ---------------------------------------------------------------------------
// Counting allocator: proves the disabled/NullSink paths allocate nothing.
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_and_null_sink_paths_do_not_allocate() {
    let disabled = Telemetry::disabled();
    // Telemetry::new collapses a NullSink to the disabled representation.
    let null = Telemetry::new(Arc::new(NullSink));
    assert!(!null.is_enabled());

    for telemetry in [&disabled, &null] {
        let count = allocations_during(|| {
            for _ in 0..100 {
                let span = telemetry.span("case", "TC0");
                let positioned = telemetry.at(span.id());
                positioned.incr("case.passed");
                telemetry.incr_by("call.ok", 7);
                telemetry.gauge("gen.transactions", 42);
                telemetry.snapshot("campaign.progress", || vec![("never built".to_string(), 1)]);
                let lazy = telemetry.span_with("mutant", || "never built".to_string());
                span.finish();
                lazy.finish();
            }
        });
        assert_eq!(count, 0, "no allocation on the uninstrumented hot path");
    }
}

// ---------------------------------------------------------------------------
// Concurrency: counters from many threads land exactly.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_counter_increments_land_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1_000;

    let sink = Arc::new(MemorySink::new());
    let telemetry = Telemetry::new(sink.clone());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let telemetry = telemetry.clone();
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    telemetry.incr("case.passed");
                    telemetry.incr_by("call.ok", 2);
                    let span = telemetry.span_with("case", || format!("T{t}C{i}"));
                    span.finish();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(sink.counter_total("case.passed"), THREADS * PER_THREAD);
    assert_eq!(sink.counter_total("call.ok"), 2 * THREADS * PER_THREAD);
    assert_eq!(sink.span_count("case"), (THREADS * PER_THREAD) as usize);
    let summary = sink.summary();
    assert_eq!(summary.counter("case.passed"), THREADS * PER_THREAD);
    assert_eq!(summary.span("case").unwrap().count, THREADS * PER_THREAD);
}

// ---------------------------------------------------------------------------
// JSONL round trip through a hand-rolled parser.
// ---------------------------------------------------------------------------

/// A parsed JSON scalar — the only shapes `Event::to_json` emits.
#[derive(Debug, PartialEq)]
enum Json {
    Str(String),
    Num(i128),
}

/// Parses one flat JSON object (`{"k":"v","n":1,...}`) as emitted by
/// `Event::to_json`: string or integer values only, no nesting.
fn parse_flat_object(line: &str) -> BTreeMap<String, Json> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not an object: {line}"));
    let mut out = BTreeMap::new();
    let mut chars = inner.chars().peekable();
    loop {
        match chars.peek() {
            None => break,
            Some(',') => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars);
        assert_eq!(chars.next(), Some(':'), "missing colon after {key}");
        let value = if chars.peek() == Some(&'"') {
            Json::Str(parse_string(&mut chars))
        } else {
            let mut digits = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || *c == '-') {
                digits.push(chars.next().unwrap());
            }
            Json::Num(
                digits
                    .parse()
                    .unwrap_or_else(|_| panic!("bad number {digits:?}")),
            )
        };
        out.insert(key, value);
    }
    out
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> String {
    assert_eq!(chars.next(), Some('"'), "expected opening quote");
    let mut out = String::new();
    loop {
        match chars.next().expect("unterminated string") {
            '"' => return out,
            '\\' => match chars.next().expect("dangling escape") {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next().unwrap()).collect();
                    let code = u32::from_str_radix(&hex, 16).unwrap();
                    out.push(char::from_u32(code).unwrap());
                }
                other => panic!("unknown escape \\{other}"),
            },
            c => out.push(c),
        }
    }
}

fn get_str(obj: &BTreeMap<String, Json>, key: &str) -> String {
    match &obj[key] {
        Json::Str(s) => s.clone(),
        other => panic!("{key} is not a string: {other:?}"),
    }
}

fn get_num(obj: &BTreeMap<String, Json>, key: &str) -> i128 {
    match &obj[key] {
        Json::Num(n) => *n,
        other => panic!("{key} is not a number: {other:?}"),
    }
}

#[test]
fn jsonl_sink_output_round_trips() {
    let sink = Arc::new(JsonlSink::in_memory());
    let telemetry = Telemetry::new(sink.clone());

    let span = telemetry.span("case", "TC \"quoted\"\nnewline\tand\u{1}ctl");
    telemetry.incr_by("call.ok", 3);
    telemetry.gauge("mutant.equivalent", -4);
    span.finish();

    let text = sink.contents();
    assert!(text.ends_with('\n'), "jsonl output is newline-terminated");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "start, counter, gauge, end: {text}");

    let parsed: Vec<BTreeMap<String, Json>> = lines.iter().map(|l| parse_flat_object(l)).collect();

    assert_eq!(get_str(&parsed[0], "event"), "span_start");
    assert_eq!(get_str(&parsed[0], "kind"), "case");
    assert_eq!(
        get_str(&parsed[0], "label"),
        "TC \"quoted\"\nnewline\tand\u{1}ctl",
        "escapes decode back to the original label"
    );

    assert_eq!(get_str(&parsed[1], "event"), "counter");
    assert_eq!(get_str(&parsed[1], "name"), "call.ok");
    assert_eq!(get_num(&parsed[1], "delta"), 3);

    assert_eq!(get_str(&parsed[2], "event"), "gauge");
    assert_eq!(get_num(&parsed[2], "value"), -4);

    assert_eq!(get_str(&parsed[3], "event"), "span_end");
    assert_eq!(get_num(&parsed[3], "id"), get_num(&parsed[0], "id"));
    assert!(get_num(&parsed[3], "nanos") >= 0);
}

#[test]
fn every_event_variant_round_trips_through_its_json() {
    let events = [
        Event::SpanStart {
            kind: "suite",
            label: "CobList".into(),
            id: 9,
            parent: Some(3),
            ts_nanos: 100,
        },
        Event::SpanEnd {
            kind: "suite",
            label: "CobList".into(),
            id: 9,
            nanos: 12_345,
            ts_nanos: 12_445,
        },
        Event::Counter {
            name: "mutant.survived",
            delta: 2,
        },
        Event::Gauge {
            name: "gen.transactions",
            value: 25,
        },
    ];
    for event in &events {
        let obj = parse_flat_object(&event.to_json());
        match event {
            Event::SpanStart {
                kind,
                label,
                id,
                parent,
                ts_nanos,
            } => {
                assert_eq!(get_str(&obj, "event"), "span_start");
                assert_eq!(get_str(&obj, "kind"), *kind);
                assert_eq!(get_str(&obj, "label"), *label);
                assert_eq!(get_num(&obj, "id"), *id as i128);
                assert_eq!(get_num(&obj, "parent"), parent.unwrap() as i128);
                assert_eq!(get_num(&obj, "ts"), *ts_nanos as i128);
            }
            Event::SpanEnd {
                kind,
                nanos,
                ts_nanos,
                ..
            } => {
                assert_eq!(get_str(&obj, "event"), "span_end");
                assert_eq!(get_str(&obj, "kind"), *kind);
                assert_eq!(get_num(&obj, "nanos"), *nanos as i128);
                assert_eq!(get_num(&obj, "ts"), *ts_nanos as i128);
            }
            Event::Counter { name, delta } => {
                assert_eq!(get_str(&obj, "event"), "counter");
                assert_eq!(get_str(&obj, "name"), *name);
                assert_eq!(get_num(&obj, "delta"), *delta as i128);
            }
            Event::Gauge { name, value } => {
                assert_eq!(get_str(&obj, "event"), "gauge");
                assert_eq!(get_str(&obj, "name"), *name);
                assert_eq!(get_num(&obj, "value"), *value as i128);
            }
            Event::Snapshot { .. } => unreachable!("checked separately"),
        }
    }

    // A root span start omits the parent key entirely.
    let root = Event::SpanStart {
        kind: "mutation",
        label: "Acc".into(),
        id: 0,
        parent: None,
        ts_nanos: 0,
    };
    let obj = parse_flat_object(&root.to_json());
    assert!(!obj.contains_key("parent"));

    // Snapshots carry a nested readings object, beyond the flat parser;
    // check the envelope textually.
    let snap = Event::Snapshot {
        name: "campaign.progress",
        seq: 3,
        ts_nanos: 1_234,
        readings: vec![("done".into(), 10), ("w0.done".into(), 6)],
    };
    let json = snap.to_json();
    assert!(json.starts_with("{\"event\":\"snapshot\",\"name\":\"campaign.progress\""));
    assert!(json.contains("\"seq\":3"));
    assert!(json.contains("\"ts\":1234"));
    assert!(json.contains("\"readings\":{\"done\":10,\"w0.done\":6}"));
}
