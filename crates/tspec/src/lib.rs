//! # concat-tspec
//!
//! The *test specification* (t-spec) of a self-testable component.
//!
//! Part of the `concat-rs` reproduction of *"Constructing Self-Testable
//! Software Components"* (Martins, Toyota & Yanagawa, DSN 2001). The t-spec
//! (paper §3.2, Figure 3) is the machine-readable specification the producer
//! embeds into the component and the consumer's driver generator reads. It
//! has two halves:
//!
//! 1. an **interface description**: the class header, attributes with value
//!    [`Domain`]s, and method signatures with parameter domains;
//! 2. a **test model**: a transaction flow model (see `concat-tfm`) whose
//!    nodes reference method ids.
//!
//! Build specs with [`ClassSpecBuilder`], exchange them as text with
//! [`parse_tspec`] / [`print_tspec`], and check them with
//! [`ClassSpec::validate`].
//!
//! # Examples
//!
//! ```
//! use concat_tspec::{ClassSpecBuilder, Domain, MethodCategory, print_tspec, parse_tspec};
//!
//! let spec = ClassSpecBuilder::new("Counter")
//!     .attribute("n", Domain::int_range(0, 100))
//!     .constructor("m1", "Counter")
//!     .method("m2", "Add", MethodCategory::Update)
//!     .param("q", Domain::int_range(0, 100))
//!     .destructor("m3", "~Counter")
//!     .birth_node("n1", ["m1"])
//!     .task_node("n2", ["m2"])
//!     .death_node("n3", ["m3"])
//!     .edge("n1", "n2")
//!     .edge("n2", "n3")
//!     .build()
//!     .unwrap();
//!
//! // Round-trip through the Figure-3 text format.
//! assert_eq!(parse_tspec(&print_tspec(&spec)).unwrap(), spec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod domain;
pub mod format;
mod lint;
mod spec;

pub use builder::ClassSpecBuilder;
pub use domain::Domain;
pub use format::{parse_tspec, print_tspec, ParseError};
pub use lint::{lint_spec, LintWarning, TRANSACTION_EXPLOSION_THRESHOLD};
pub use spec::{
    AttributeSpec, ClassSpec, InvariantOp, InvariantSpec, InvariantTerm, MethodCategory,
    MethodSpec, ParamSpec, SpecError,
};
