//! Value domains for attributes and method parameters.
//!
//! The paper's t-spec (Figure 3) annotates every attribute and parameter
//! with a *domain*: `range` (numeric bounds), `set` (explicit values),
//! `string`, `object` or `pointer`. The driver generator draws random test
//! inputs from these domains (§3.4.1); structured kinds (`object`,
//! `pointer`) must be completed by the tester unless an object provider is
//! registered.

use concat_runtime::{Value, ValueKind};
use std::fmt;

/// The domain of an attribute or parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Integers in `[lo, hi]` (inclusive), the paper's `range` with integer
    /// bounds.
    IntRange {
        /// Lower bound, inclusive.
        lo: i64,
        /// Upper bound, inclusive.
        hi: i64,
    },
    /// Floats in `[lo, hi]` (inclusive), the paper's `range` with real
    /// bounds.
    FloatRange {
        /// Lower bound, inclusive.
        lo: f64,
        /// Upper bound, inclusive.
        hi: f64,
    },
    /// An explicit finite set of allowed values.
    Set(Vec<Value>),
    /// Strings up to `max_len` characters drawn from a letter alphabet.
    String {
        /// Maximum generated length (≥ 1).
        max_len: usize,
    },
    /// A by-value object of the named class; requires a registered provider
    /// or manual completion.
    Object {
        /// Class of the required object.
        class_name: String,
    },
    /// A nullable reference (`Class*` in the paper); requires a provider or
    /// manual completion, and may be `Null`.
    Pointer {
        /// Class of the referenced object.
        class_name: String,
    },
}

impl Domain {
    /// Shorthand for an integer range domain.
    pub fn int_range(lo: i64, hi: i64) -> Self {
        Domain::IntRange { lo, hi }
    }

    /// Shorthand for a float range domain.
    pub fn float_range(lo: f64, hi: f64) -> Self {
        Domain::FloatRange { lo, hi }
    }

    /// Shorthand for a string domain.
    pub fn string(max_len: usize) -> Self {
        Domain::String { max_len }
    }

    /// The t-spec keyword of this domain kind (Figure 3's "allowable
    /// types").
    pub fn keyword(&self) -> &'static str {
        match self {
            Domain::IntRange { .. } | Domain::FloatRange { .. } => "range",
            Domain::Set(_) => "set",
            Domain::String { .. } => "string",
            Domain::Object { .. } => "object",
            Domain::Pointer { .. } => "pointer",
        }
    }

    /// Whether the driver generator can fill this domain automatically.
    ///
    /// Mirrors the paper: "Currently, this is implemented only for numeric
    /// types and strings … Structured type parameters (including objects,
    /// arrays, and pointers) must be completed manually by the tester."
    pub fn is_auto_generatable(&self) -> bool {
        !matches!(self, Domain::Object { .. } | Domain::Pointer { .. })
    }

    /// Checks whether `value` belongs to this domain.
    ///
    /// Used by the input generator's self-check and by property tests.
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            Domain::IntRange { lo, hi } => {
                matches!(value, Value::Int(i) if lo <= i && i <= hi)
            }
            Domain::FloatRange { lo, hi } => match value {
                Value::Float(x) => *lo <= *x && *x <= *hi,
                Value::Int(i) => *lo <= *i as f64 && (*i as f64) <= *hi,
                _ => false,
            },
            Domain::Set(values) => values.contains(value),
            Domain::String { max_len } => {
                matches!(value, Value::Str(s) if s.chars().count() <= *max_len)
            }
            Domain::Object { class_name } => {
                matches!(value, Value::Obj(r) if r.class_name == *class_name)
            }
            Domain::Pointer { class_name } => match value {
                Value::Null => true,
                Value::Obj(r) => r.class_name == *class_name,
                _ => false,
            },
        }
    }

    /// Whether the domain is degenerate (can produce no value).
    pub fn is_empty(&self) -> bool {
        match self {
            Domain::IntRange { lo, hi } => lo > hi,
            Domain::FloatRange { lo, hi } => lo > hi,
            Domain::Set(values) => values.is_empty(),
            Domain::String { .. } | Domain::Object { .. } | Domain::Pointer { .. } => false,
        }
    }

    /// The [`ValueKind`] values of this domain carry (pointers report
    /// `Obj`; `Null` is additionally allowed for pointers).
    pub fn value_kind(&self) -> Option<ValueKind> {
        match self {
            Domain::IntRange { .. } => Some(ValueKind::Int),
            Domain::FloatRange { .. } => Some(ValueKind::Float),
            Domain::Set(values) => values.first().map(Value::kind),
            Domain::String { .. } => Some(ValueKind::Str),
            Domain::Object { .. } | Domain::Pointer { .. } => Some(ValueKind::Obj),
        }
    }

    /// Representative boundary values of the domain, used by the input
    /// generator's boundary mode and by equivalence probing.
    pub fn boundary_values(&self) -> Vec<Value> {
        match self {
            Domain::IntRange { lo, hi } => {
                let mut v = vec![Value::Int(*lo), Value::Int(*hi)];
                if *lo < 0 && *hi > 0 {
                    v.push(Value::Int(0));
                }
                v.dedup();
                v
            }
            Domain::FloatRange { lo, hi } => {
                let mut v = vec![Value::Float(*lo), Value::Float(*hi)];
                v.dedup();
                v
            }
            Domain::Set(values) => {
                let mut v = Vec::new();
                if let Some(first) = values.first() {
                    v.push(first.clone());
                }
                if values.len() > 1 {
                    v.push(values[values.len() - 1].clone());
                }
                v
            }
            Domain::String { max_len } => {
                let mut v = vec![Value::Str(String::new())];
                v.push(Value::Str("a".repeat(*max_len)));
                v
            }
            Domain::Object { .. } => Vec::new(),
            Domain::Pointer { .. } => vec![Value::Null],
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::IntRange { lo, hi } => write!(f, "range[{lo}, {hi}]"),
            Domain::FloatRange { lo, hi } => write!(f, "range[{lo}, {hi}]"),
            Domain::Set(values) => {
                let items: Vec<String> = values.iter().map(Value::to_literal).collect();
                write!(f, "set{{{}}}", items.join(", "))
            }
            Domain::String { max_len } => write!(f, "string(max {max_len})"),
            Domain::Object { class_name } => write!(f, "object({class_name})"),
            Domain::Pointer { class_name } => write!(f, "pointer({class_name})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_runtime::ObjRef;

    #[test]
    fn keywords_match_figure3() {
        assert_eq!(Domain::int_range(1, 9).keyword(), "range");
        assert_eq!(Domain::float_range(0.0, 1.0).keyword(), "range");
        assert_eq!(Domain::Set(vec![Value::Int(1)]).keyword(), "set");
        assert_eq!(Domain::string(8).keyword(), "string");
        assert_eq!(
            Domain::Object {
                class_name: "P".into()
            }
            .keyword(),
            "object"
        );
        assert_eq!(
            Domain::Pointer {
                class_name: "P".into()
            }
            .keyword(),
            "pointer"
        );
    }

    #[test]
    fn auto_generatable_mirrors_paper() {
        assert!(Domain::int_range(0, 1).is_auto_generatable());
        assert!(Domain::string(3).is_auto_generatable());
        assert!(Domain::Set(vec![Value::Int(1)]).is_auto_generatable());
        assert!(!Domain::Object {
            class_name: "P".into()
        }
        .is_auto_generatable());
        assert!(!Domain::Pointer {
            class_name: "P".into()
        }
        .is_auto_generatable());
    }

    #[test]
    fn int_range_membership() {
        let d = Domain::int_range(1, 99_999);
        assert!(d.contains(&Value::Int(1)));
        assert!(d.contains(&Value::Int(99_999)));
        assert!(!d.contains(&Value::Int(0)));
        assert!(!d.contains(&Value::Str("1".into())));
    }

    #[test]
    fn float_range_accepts_ints() {
        let d = Domain::float_range(0.0, 10.0);
        assert!(d.contains(&Value::Float(9.5)));
        assert!(d.contains(&Value::Int(10)));
        assert!(!d.contains(&Value::Float(-0.1)));
    }

    #[test]
    fn set_membership_is_exact() {
        let d = Domain::Set(vec![Value::Int(1), Value::Str("a".into())]);
        assert!(d.contains(&Value::Int(1)));
        assert!(d.contains(&Value::Str("a".into())));
        assert!(!d.contains(&Value::Int(2)));
    }

    #[test]
    fn string_membership_counts_chars() {
        let d = Domain::string(3);
        assert!(d.contains(&Value::Str("abc".into())));
        assert!(d.contains(&Value::Str(String::new())));
        assert!(!d.contains(&Value::Str("abcd".into())));
    }

    #[test]
    fn pointer_allows_null_object_does_not() {
        let p = Domain::Pointer {
            class_name: "Provider".into(),
        };
        let o = Domain::Object {
            class_name: "Provider".into(),
        };
        assert!(p.contains(&Value::Null));
        assert!(!o.contains(&Value::Null));
        let r = Value::Obj(ObjRef::new("Provider", "p1"));
        assert!(p.contains(&r));
        assert!(o.contains(&r));
        let wrong = Value::Obj(ObjRef::new("Other", "x"));
        assert!(!p.contains(&wrong));
    }

    #[test]
    fn emptiness() {
        assert!(Domain::int_range(5, 4).is_empty());
        assert!(Domain::Set(vec![]).is_empty());
        assert!(!Domain::string(0).is_empty());
    }

    #[test]
    fn boundary_values_lie_in_domain() {
        let domains = [
            Domain::int_range(-5, 5),
            Domain::float_range(0.5, 2.5),
            Domain::Set(vec![Value::Int(3), Value::Int(9)]),
            Domain::string(4),
            Domain::Pointer {
                class_name: "P".into(),
            },
        ];
        for d in &domains {
            for v in d.boundary_values() {
                assert!(d.contains(&v), "{v:?} not in {d}");
            }
        }
    }

    #[test]
    fn int_boundaries_include_zero_when_spanning() {
        let b = Domain::int_range(-5, 5).boundary_values();
        assert!(b.contains(&Value::Int(0)));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Domain::int_range(1, 9).to_string(), "range[1, 9]");
        assert_eq!(Domain::string(8).to_string(), "string(max 8)");
        assert!(Domain::Set(vec![Value::Int(1)])
            .to_string()
            .contains("set{1}"));
    }

    #[test]
    fn value_kinds() {
        assert_eq!(Domain::int_range(0, 1).value_kind(), Some(ValueKind::Int));
        assert_eq!(Domain::Set(vec![]).value_kind(), None);
        assert_eq!(
            Domain::Pointer {
                class_name: "P".into()
            }
            .value_kind(),
            Some(ValueKind::Obj)
        );
    }
}
