//! Fluent construction of [`ClassSpec`]s.
//!
//! Component producers build t-specs programmatically (task 1 and 2 of the
//! producer methodology, paper §3.1); the builder keeps that terse while the
//! parsed text format (Figure 3) remains the interchange representation.

use crate::domain::Domain;
use crate::spec::{
    AttributeSpec, ClassSpec, InvariantOp, InvariantSpec, InvariantTerm, MethodCategory,
    MethodSpec, ParamSpec, SpecError,
};
use concat_tfm::{NodeId, NodeKind, Tfm};

/// Builder for [`ClassSpec`].
///
/// # Examples
///
/// ```
/// use concat_tspec::{ClassSpecBuilder, Domain, MethodCategory};
///
/// let spec = ClassSpecBuilder::new("Counter")
///     .constructor("m1", "Counter")
///     .method("m2", "Add", MethodCategory::Update)
///     .param("q", Domain::int_range(0, 100))
///     .destructor("m3", "~Counter")
///     .birth_node("create", ["m1"])
///     .task_node("work", ["m2"])
///     .death_node("destroy", ["m3"])
///     .edge("create", "work")
///     .edge("work", "destroy")
///     .edge("create", "destroy")
///     .build()
///     .expect("valid spec");
/// assert_eq!(spec.class_name, "Counter");
/// ```
#[derive(Debug)]
pub struct ClassSpecBuilder {
    class_name: String,
    is_abstract: bool,
    superclass: Option<String>,
    source_files: Vec<String>,
    attributes: Vec<AttributeSpec>,
    methods: Vec<MethodSpec>,
    invariants: Vec<InvariantSpec>,
    nodes: Vec<(String, NodeKind, Vec<String>)>,
    edges: Vec<(String, String)>,
}

impl ClassSpecBuilder {
    /// Starts a builder for the named class.
    pub fn new(class_name: impl Into<String>) -> Self {
        ClassSpecBuilder {
            class_name: class_name.into(),
            is_abstract: false,
            superclass: None,
            source_files: Vec::new(),
            attributes: Vec::new(),
            methods: Vec::new(),
            invariants: Vec::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Marks the class abstract.
    pub fn abstract_class(mut self) -> Self {
        self.is_abstract = true;
        self
    }

    /// Records the superclass name.
    pub fn superclass(mut self, name: impl Into<String>) -> Self {
        self.superclass = Some(name.into());
        self
    }

    /// Adds a source file to the compilation list (format fidelity only).
    pub fn source_file(mut self, file: impl Into<String>) -> Self {
        self.source_files.push(file.into());
        self
    }

    /// Documents an attribute and its domain.
    pub fn attribute(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.attributes.push(AttributeSpec::new(name, domain));
        self
    }

    /// Declares a method. Subsequent [`ClassSpecBuilder::param`] calls
    /// attach parameters to it.
    pub fn method(
        mut self,
        id: impl Into<String>,
        name: impl Into<String>,
        category: MethodCategory,
    ) -> Self {
        self.methods.push(MethodSpec::new(id, name, category));
        self
    }

    /// Shorthand for a constructor method.
    pub fn constructor(self, id: impl Into<String>, name: impl Into<String>) -> Self {
        self.method(id, name, MethodCategory::Constructor)
    }

    /// Shorthand for a destructor method.
    pub fn destructor(self, id: impl Into<String>, name: impl Into<String>) -> Self {
        self.method(id, name, MethodCategory::Destructor)
    }

    /// Sets the return type of the most recently declared method.
    ///
    /// # Panics
    ///
    /// Panics when no method has been declared yet.
    pub fn returns(mut self, type_name: impl Into<String>) -> Self {
        self.methods
            .last_mut()
            .expect("returns() must follow a method()")
            .return_type = Some(type_name.into());
        self
    }

    /// Adds a parameter to the most recently declared method.
    ///
    /// # Panics
    ///
    /// Panics when no method has been declared yet.
    pub fn param(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.methods
            .last_mut()
            .expect("param() must follow a method()")
            .params
            .push(ParamSpec::new(name, domain));
        self
    }

    /// Declares an invariant clause over the component's reported state.
    pub fn invariant(
        mut self,
        id: impl Into<String>,
        description: impl Into<String>,
        left: InvariantTerm,
        op: InvariantOp,
        right: InvariantTerm,
    ) -> Self {
        self.invariants
            .push(InvariantSpec::new(id, description, left, op, right));
        self
    }

    /// Adds a TFM node; `methods` lists method ids realized by the node.
    pub fn node<I, S>(mut self, label: impl Into<String>, kind: NodeKind, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.nodes.push((
            label.into(),
            kind,
            methods.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Shorthand for a birth node.
    pub fn birth_node<I, S>(self, label: impl Into<String>, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.node(label, NodeKind::Birth, methods)
    }

    /// Shorthand for a task node.
    pub fn task_node<I, S>(self, label: impl Into<String>, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.node(label, NodeKind::Task, methods)
    }

    /// Shorthand for a death node.
    pub fn death_node<I, S>(self, label: impl Into<String>, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.node(label, NodeKind::Death, methods)
    }

    /// Adds a TFM edge between two node labels.
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.edges.push((from.into(), to.into()));
        self
    }

    /// Builds and validates the spec.
    ///
    /// # Errors
    ///
    /// Returns every [`SpecError`] found, including edges that reference
    /// undeclared node labels (reported as model errors).
    pub fn build(self) -> Result<ClassSpec, Vec<SpecError>> {
        let mut tfm = Tfm::new(self.class_name.clone());
        let mut ids: Vec<(String, NodeId)> = Vec::new();
        for (label, kind, methods) in &self.nodes {
            let id = tfm.add_node(label.clone(), *kind, methods.clone());
            ids.push((label.clone(), id));
        }
        let mut errors = Vec::new();
        for (from, to) in &self.edges {
            let f = ids.iter().find(|(l, _)| l == from).map(|(_, id)| *id);
            let t = ids.iter().find(|(l, _)| l == to).map(|(_, id)| *id);
            match (f, t) {
                (Some(f), Some(t)) => tfm.add_edge(f, t),
                _ => errors.push(SpecError::UnknownMethodInModel {
                    method: format!("edge {from} -> {to}"),
                    node: "<edges>".into(),
                }),
            }
        }
        let spec = ClassSpec {
            class_name: self.class_name,
            is_abstract: self.is_abstract,
            superclass: self.superclass,
            source_files: self.source_files,
            attributes: self.attributes,
            methods: self.methods,
            invariants: self.invariants,
            tfm,
        };
        errors.extend(spec.validate());
        if errors.is_empty() {
            Ok(spec)
        } else {
            Err(errors)
        }
    }

    /// Builds without validating — for tests that need a broken spec.
    pub fn build_unchecked(self) -> ClassSpec {
        let mut tfm = Tfm::new(self.class_name.clone());
        let mut ids: Vec<(String, NodeId)> = Vec::new();
        for (label, kind, methods) in &self.nodes {
            let id = tfm.add_node(label.clone(), *kind, methods.clone());
            ids.push((label.clone(), id));
        }
        for (from, to) in &self.edges {
            let f = ids.iter().find(|(l, _)| l == from).map(|(_, id)| *id);
            let t = ids.iter().find(|(l, _)| l == to).map(|(_, id)| *id);
            if let (Some(f), Some(t)) = (f, t) {
                tfm.add_edge(f, t);
            }
        }
        ClassSpec {
            class_name: self.class_name,
            is_abstract: self.is_abstract,
            superclass: self.superclass,
            source_files: self.source_files,
            attributes: self.attributes,
            methods: self.methods,
            invariants: self.invariants,
            tfm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ClassSpecBuilder {
        ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .destructor("m2", "~C")
            .birth_node("b", ["m1"])
            .death_node("d", ["m2"])
            .edge("b", "d")
    }

    #[test]
    fn builds_valid_minimal_spec() {
        let spec = minimal().build().unwrap();
        assert_eq!(spec.tfm.node_count(), 2);
        assert_eq!(spec.tfm.edge_count(), 1);
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn abstract_and_superclass_recorded() {
        let spec = minimal()
            .abstract_class()
            .superclass("Base")
            .build()
            .unwrap();
        assert!(spec.is_abstract);
        assert_eq!(spec.superclass.as_deref(), Some("Base"));
    }

    #[test]
    fn params_attach_to_latest_method() {
        let spec = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .method("m2", "Set", MethodCategory::Update)
            .param("a", Domain::int_range(0, 1))
            .param("b", Domain::string(4))
            .returns("int")
            .destructor("m3", "~C")
            .birth_node("b", ["m1"])
            .task_node("t", ["m2"])
            .death_node("d", ["m3"])
            .edge("b", "t")
            .edge("t", "d")
            .build()
            .unwrap();
        let m2 = spec.method("m2").unwrap();
        assert_eq!(m2.arity(), 2);
        assert_eq!(m2.return_type.as_deref(), Some("int"));
    }

    #[test]
    #[should_panic(expected = "param() must follow a method()")]
    fn param_without_method_panics() {
        let _ = ClassSpecBuilder::new("C").param("x", Domain::int_range(0, 1));
    }

    #[test]
    fn bad_edge_label_is_an_error() {
        let err = minimal().edge("b", "nowhere").build().unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn invalid_spec_reports_errors() {
        // model references undeclared method id
        let err = ClassSpecBuilder::new("C")
            .constructor("m1", "C")
            .birth_node("b", ["m1"])
            .death_node("d", ["mX"])
            .edge("b", "d")
            .build()
            .unwrap_err();
        assert!(err.iter().any(
            |e| matches!(e, SpecError::UnknownMethodInModel { method, .. } if method == "mX")
        ));
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let spec = ClassSpecBuilder::new("C").build_unchecked();
        assert!(!spec.validate().is_empty());
        assert_eq!(spec.class_name, "C");
    }

    #[test]
    fn attributes_and_source_files_kept() {
        let spec = minimal()
            .attribute("qty", Domain::int_range(1, 9))
            .source_file("product.cpp")
            .build()
            .unwrap();
        assert_eq!(spec.attributes.len(), 1);
        assert_eq!(spec.source_files, vec!["product.cpp".to_owned()]);
    }
}
