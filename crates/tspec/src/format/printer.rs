//! Pretty-printer for the t-spec text format.
//!
//! [`print_tspec`] emits the Figure-3 style record text. The output is
//! reparseable: `parse_tspec(print_tspec(spec))` reproduces the spec (a
//! property covered by tests, including float round-tripping).

use crate::domain::Domain;
use crate::spec::ClassSpec;
use concat_runtime::Value;
use concat_tfm::NodeKind;
use std::fmt::Write as _;

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\'');
    out
}

fn float_literal(x: f64) -> String {
    if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{x:?}")
    }
}

fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => float_literal(*x),
        Value::Str(s) => quote(s),
        Value::List(_) | Value::Obj(_) => {
            // Set domains of these kinds are not expressible in the text
            // format; print something parse-rejecting rather than silently
            // lossy.
            "<unprintable>".to_owned()
        }
    }
}

fn invariant_term(t: &crate::spec::InvariantTerm) -> String {
    match t {
        crate::spec::InvariantTerm::Field(name) => name.clone(),
        crate::spec::InvariantTerm::Literal(v) => literal(v),
    }
}

fn domain_suffix(d: &Domain) -> String {
    match d {
        Domain::IntRange { lo, hi } => format!("range, {lo}, {hi}"),
        Domain::FloatRange { lo, hi } => {
            format!("range, {}, {}", float_literal(*lo), float_literal(*hi))
        }
        Domain::Set(values) => {
            let items: Vec<String> = values.iter().map(literal).collect();
            format!("set, [{}]", items.join(", "))
        }
        Domain::String { max_len } => format!("string, {max_len}"),
        Domain::Object { class_name } => format!("object, {}", quote(class_name)),
        Domain::Pointer { class_name } => format!("pointer, {}", quote(class_name)),
    }
}

/// Renders `spec` in the t-spec text format of the paper's Figure 3.
///
/// # Examples
///
/// ```
/// use concat_tspec::{parse_tspec, print_tspec};
/// let src = "
/// Class('C', No, <empty>, <empty>)
/// Method(m1, 'C', <empty>, constructor, 0)
/// Node(n1, birth, [m1])
/// Node(n2, death, [m1])
/// Edge(n1, n2)
/// ";
/// let spec = parse_tspec(src).unwrap();
/// let printed = print_tspec(&spec);
/// assert_eq!(parse_tspec(&printed).unwrap(), spec);
/// ```
pub fn print_tspec(spec: &ClassSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// t-spec for class {}", spec.class_name);
    let abstract_flag = if spec.is_abstract { "Yes" } else { "No" };
    let superclass = spec
        .superclass
        .as_deref()
        .map_or_else(|| "<empty>".to_owned(), quote);
    let files = if spec.source_files.is_empty() {
        "<empty>".to_owned()
    } else {
        let items: Vec<String> = spec.source_files.iter().map(|f| quote(f)).collect();
        format!("[{}]", items.join(", "))
    };
    let _ = writeln!(
        out,
        "Class({}, {abstract_flag}, {superclass}, {files})",
        quote(&spec.class_name)
    );
    for a in &spec.attributes {
        let _ = writeln!(
            out,
            "Attribute({}, {})",
            quote(&a.name),
            domain_suffix(&a.domain)
        );
    }
    for m in &spec.methods {
        let ret = m
            .return_type
            .as_deref()
            .map_or_else(|| "<empty>".to_owned(), quote);
        let _ = writeln!(
            out,
            "Method({}, {}, {ret}, {}, {})",
            m.id,
            quote(&m.name),
            m.category.keyword(),
            m.params.len()
        );
        for p in &m.params {
            let _ = writeln!(
                out,
                "Parameter({}, {}, {})",
                m.id,
                quote(&p.name),
                domain_suffix(&p.domain)
            );
        }
    }
    for inv in &spec.invariants {
        let _ = writeln!(
            out,
            "Invariant({}, {}, {}, {}, {})",
            inv.id,
            quote(&inv.description),
            invariant_term(&inv.left),
            inv.op.keyword(),
            invariant_term(&inv.right)
        );
    }
    for (_, node) in spec.tfm.nodes() {
        let kind = match node.kind {
            NodeKind::Birth => "birth",
            NodeKind::Task => "task",
            NodeKind::Death => "death",
        };
        let _ = writeln!(
            out,
            "Node({}, {kind}, [{}])",
            node.label,
            node.methods.join(", ")
        );
    }
    for e in spec.tfm.edges() {
        let from = &spec.tfm.node(e.from).label;
        let to = &spec.tfm.node(e.to).label;
        let _ = writeln!(out, "Edge({from}, {to})");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassSpecBuilder;
    use crate::format::parser::parse_tspec;
    use crate::spec::MethodCategory;

    fn rich_spec() -> ClassSpec {
        ClassSpecBuilder::new("Product")
            .superclass("Goods")
            .source_file("product.cpp")
            .attribute("qty", Domain::int_range(1, 99_999))
            .attribute("price", Domain::float_range(0.25, 10.5))
            .attribute("name", Domain::string(30))
            .attribute(
                "mode",
                Domain::Set(vec![Value::Str("p1".into()), Value::Int(2)]),
            )
            .attribute(
                "prov",
                Domain::Pointer {
                    class_name: "Provider".into(),
                },
            )
            .constructor("m1", "Product")
            .method("m2", "UpdateQty", MethodCategory::Update)
            .param("q", Domain::int_range(1, 99_999))
            .returns("void")
            .destructor("m3", "~Product")
            .invariant(
                "i1",
                "quantity stays positive",
                crate::spec::InvariantTerm::field("qty"),
                crate::spec::InvariantOp::Ge,
                crate::spec::InvariantTerm::int(1),
            )
            .invariant(
                "i2",
                "price is labelled",
                crate::spec::InvariantTerm::field("name"),
                crate::spec::InvariantOp::Ne,
                crate::spec::InvariantTerm::Literal(Value::Str(String::new())),
            )
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .edge("n1", "n3")
            .build()
            .unwrap()
    }

    #[test]
    fn round_trips_a_rich_spec() {
        let spec = rich_spec();
        let printed = print_tspec(&spec);
        let reparsed = parse_tspec(&printed).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn output_contains_expected_records() {
        let printed = print_tspec(&rich_spec());
        assert!(printed.contains("Class('Product', No, 'Goods', ['product.cpp'])"));
        assert!(printed.contains("Attribute('qty', range, 1, 99999)"));
        assert!(printed.contains("Attribute('name', string, 30)"));
        assert!(printed.contains("Attribute('prov', pointer, 'Provider')"));
        assert!(printed.contains("Method(m2, 'UpdateQty', 'void', update, 1)"));
        assert!(printed.contains("Parameter(m2, 'q', range, 1, 99999)"));
        assert!(printed.contains("Node(n1, birth, [m1])"));
        assert!(printed.contains("Edge(n2, n3)"));
        assert!(printed.contains("Invariant(i1, 'quantity stays positive', qty, ge, 1)"));
        assert!(printed.contains("Invariant(i2, 'price is labelled', name, ne, '')"));
    }

    #[test]
    fn quotes_are_escaped() {
        assert_eq!(quote("it's"), r"'it\'s'");
        assert_eq!(quote("a\\b"), r"'a\\b'");
    }

    #[test]
    fn float_literals_round_trip() {
        for x in [0.1, 1.0, -2.5, 1e-10, 12_345.678_9] {
            let s = float_literal(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn abstract_class_prints_yes() {
        let spec = ClassSpecBuilder::new("A")
            .abstract_class()
            .constructor("m1", "A")
            .birth_node("n1", ["m1"])
            .death_node("n2", ["m1"])
            .edge("n1", "n2")
            .build_unchecked();
        assert!(print_tspec(&spec).contains("Class('A', Yes, <empty>, <empty>)"));
    }
}
