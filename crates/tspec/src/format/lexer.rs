//! Tokenizer for the t-spec text format (Figure 3 of the paper).
//!
//! The format is record-oriented: `Record(arg, arg, ...)` with `'quoted'`
//! strings, bare identifiers, numbers, bracketed lists and the `<empty>`
//! placeholder. `//` starts a comment running to end of line. Records may
//! span lines.

use std::fmt;

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: usize,
}

/// The kinds of token the t-spec grammar uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier: record names, keywords, method/node ids.
    Ident(String),
    /// `'single quoted'` string (supports `\'` and `\\` escapes).
    Quoted(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.` or exponent).
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// The `<empty>` placeholder.
    Empty,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Quoted(s) => write!(f, "string '{s}'"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Empty => f.write_str("`<empty>`"),
        }
    }
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a complete t-spec source text.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings, malformed numbers or
/// unexpected characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(LexError {
                        line,
                        message: "stray `/` (expected `//`)".into(),
                    });
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                chars.next();
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                chars.next();
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    line,
                });
                chars.next();
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    line,
                });
                chars.next();
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                chars.next();
            }
            '<' => {
                chars.next();
                let word: String = std::iter::from_fn(|| {
                    chars.next_if(|c| c.is_ascii_alphanumeric() || *c == '_')
                })
                .collect();
                if word == "empty" && chars.next_if_eq(&'>').is_some() {
                    tokens.push(Token {
                        kind: TokenKind::Empty,
                        line,
                    });
                } else {
                    return Err(LexError {
                        line,
                        message: format!("expected `<empty>`, found `<{word}`"),
                    });
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('\'') => s.push('\''),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(LexError {
                                    line,
                                    message: format!("bad escape `\\{}`", other.unwrap_or(' ')),
                                })
                            }
                        },
                        '\'' => {
                            closed = true;
                            break;
                        }
                        '\n' => {
                            return Err(LexError {
                                line,
                                message: "newline inside string".into(),
                            })
                        }
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err(LexError {
                        line,
                        message: "unterminated string".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Quoted(s),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else if c == '.' || c == 'e' || c == 'E' {
                        is_float = true;
                        s.push(c);
                        chars.next();
                        if (c == 'e' || c == 'E') && matches!(chars.peek(), Some('+') | Some('-')) {
                            s.push(chars.next().expect("peeked"));
                        }
                    } else {
                        break;
                    }
                }
                let kind = if is_float {
                    TokenKind::Float(s.parse().map_err(|_| LexError {
                        line,
                        message: format!("malformed float `{s}`"),
                    })?)
                } else {
                    TokenKind::Int(s.parse().map_err(|_| LexError {
                        line,
                        message: format!("malformed integer `{s}`"),
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '~' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '~' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_class_record() {
        let ks = kinds("Class('Product', No, <empty>, <empty>)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("Class".into()),
                TokenKind::LParen,
                TokenKind::Quoted("Product".into()),
                TokenKind::Comma,
                TokenKind::Ident("No".into()),
                TokenKind::Comma,
                TokenKind::Empty,
                TokenKind::Comma,
                TokenKind::Empty,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            kinds("1 -2 3.5 -0.25 1e3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(-2),
                TokenKind::Float(3.5),
                TokenKind::Float(-0.25),
                TokenKind::Float(1000.0),
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let toks = tokenize("// header\nNode(n1, // trailing\n  birth)").unwrap();
        assert_eq!(toks[0].line, 2);
        let last = toks.last().unwrap();
        assert_eq!(last.line, 3);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r"'it\'s' '\\'"),
            vec![
                TokenKind::Quoted("it's".into()),
                TokenKind::Quoted("\\".into())
            ]
        );
    }

    #[test]
    fn tilde_identifiers_for_destructors() {
        assert_eq!(kinds("~Product"), vec![TokenKind::Ident("~Product".into())]);
    }

    #[test]
    fn brackets_and_commas() {
        assert_eq!(
            kinds("[m1, m2]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("m1".into()),
                TokenKind::Comma,
                TokenKind::Ident("m2".into()),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("'abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn newline_in_string_is_an_error() {
        assert!(tokenize("'a\nb'").is_err());
    }

    #[test]
    fn bad_empty_placeholder() {
        let err = tokenize("<full>").unwrap_err();
        assert!(err.message.contains("expected `<empty>`"));
    }

    #[test]
    fn stray_character_reports_line() {
        let err = tokenize("\n\n@").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn stray_slash_is_an_error() {
        assert!(tokenize("/x").is_err());
    }
}
