//! Parser for the t-spec text format.
//!
//! Grammar (records in any order, but `Class` must come first):
//!
//! ```text
//! spec      := class record*
//! class     := "Class" "(" quoted "," yesno "," (quoted|empty) "," (list|empty) ")"
//! record    := attribute | method | parameter | node | edge | invariant
//! attribute := "Attribute" "(" quoted "," domain ")"
//! method    := "Method" "(" ident "," quoted "," (quoted|empty) "," ident "," int ")"
//! parameter := "Parameter" "(" ident "," quoted "," domain ")"
//! node      := "Node" "(" ident "," ident "," "[" ident ("," ident)* "]" ")"
//! edge      := "Edge" "(" ident "," ident ")"
//! invariant := "Invariant" "(" ident "," quoted "," term "," op "," term ")"
//! term      := ident | int | float | quoted
//! op        := "eq" | "ne" | "lt" | "le" | "gt" | "ge"
//! domain    := "range" "," number "," number
//!            | "set" "," "[" literal ("," literal)* "]"
//!            | "string" "," int
//!            | "object" "," quoted
//!            | "pointer" "," quoted
//! ```
//!
//! Node kind idents are `birth`, `task`, `death`. Method category idents are
//! those of [`MethodCategory`]. The `Method` record's final integer is the
//! declared parameter count, cross-checked against `Parameter` records.

use super::lexer::{tokenize, LexError, Token, TokenKind};
use crate::domain::Domain;
use crate::spec::{
    AttributeSpec, ClassSpec, InvariantOp, InvariantSpec, InvariantTerm, MethodCategory,
    MethodSpec, ParamSpec,
};
use concat_runtime::Value;
use concat_tfm::{NodeId, NodeKind, Tfm};
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 when the input ended unexpectedly).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.peek()
            .map_or_else(|| self.tokens.last().map_or(0, |t| t.line), |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t.kind == *kind => Ok(()),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected {kind}, found {}", t.kind),
            }),
            None => Err(self.err(format!("expected {kind}, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected identifier, found {}", t.kind),
            }),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn quoted(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Quoted(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected quoted string, found {}", t.kind),
            }),
            None => Err(self.err("expected quoted string, found end of input")),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => Ok(i),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected integer, found {}", t.kind),
            }),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    /// One side of an invariant comparison: a bare ident is a reported
    /// state field; int, float and quoted literals are constants.
    fn invariant_term(&mut self) -> Result<InvariantTerm, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => Ok(InvariantTerm::Field(name)),
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => Ok(InvariantTerm::Literal(Value::Int(i))),
            Some(Token {
                kind: TokenKind::Float(x),
                ..
            }) => Ok(InvariantTerm::Literal(Value::Float(x))),
            Some(Token {
                kind: TokenKind::Quoted(s),
                ..
            }) => Ok(InvariantTerm::Literal(Value::Str(s))),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected invariant term, found {}", t.kind),
            }),
            None => Err(self.err("expected invariant term, found end of input")),
        }
    }

    fn comma(&mut self) -> Result<(), ParseError> {
        self.expect(&TokenKind::Comma)
    }

    /// `quoted | <empty>` → Option<String>
    fn quoted_or_empty(&mut self) -> Result<Option<String>, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Quoted(s),
                ..
            }) => Ok(Some(s)),
            Some(Token {
                kind: TokenKind::Empty,
                ..
            }) => Ok(None),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected string or <empty>, found {}", t.kind),
            }),
            None => Err(self.err("expected string or <empty>, found end of input")),
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => Ok(Value::Int(i)),
            Some(Token {
                kind: TokenKind::Float(x),
                ..
            }) => Ok(Value::Float(x)),
            Some(Token {
                kind: TokenKind::Quoted(s),
                ..
            }) => Ok(Value::Str(s)),
            Some(Token {
                kind: TokenKind::Ident(w),
                line,
            }) => match w.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                "NULL" => Ok(Value::Null),
                other => Err(ParseError {
                    line,
                    message: format!("expected literal, found identifier `{other}`"),
                }),
            },
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected literal, found {}", t.kind),
            }),
            None => Err(self.err("expected literal, found end of input")),
        }
    }

    fn literal_list(&mut self) -> Result<Vec<Value>, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let mut items = Vec::new();
        if self.peek().is_some_and(|t| t.kind == TokenKind::RBracket) {
            self.next();
            return Ok(items);
        }
        loop {
            items.push(self.literal()?);
            match self.next() {
                Some(Token {
                    kind: TokenKind::Comma,
                    ..
                }) => continue,
                Some(Token {
                    kind: TokenKind::RBracket,
                    ..
                }) => break,
                Some(t) => {
                    return Err(ParseError {
                        line: t.line,
                        message: format!("expected `,` or `]`, found {}", t.kind),
                    })
                }
                None => return Err(self.err("unterminated list")),
            }
        }
        Ok(items)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let mut items = Vec::new();
        if self.peek().is_some_and(|t| t.kind == TokenKind::RBracket) {
            self.next();
            return Ok(items);
        }
        loop {
            items.push(self.ident()?);
            match self.next() {
                Some(Token {
                    kind: TokenKind::Comma,
                    ..
                }) => continue,
                Some(Token {
                    kind: TokenKind::RBracket,
                    ..
                }) => break,
                Some(t) => {
                    return Err(ParseError {
                        line: t.line,
                        message: format!("expected `,` or `]`, found {}", t.kind),
                    })
                }
                None => return Err(self.err("unterminated list")),
            }
        }
        Ok(items)
    }

    fn number(&mut self) -> Result<(f64, bool), ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => Ok((i as f64, false)),
            Some(Token {
                kind: TokenKind::Float(x),
                ..
            }) => Ok((x, true)),
            Some(t) => Err(ParseError {
                line: t.line,
                message: format!("expected number, found {}", t.kind),
            }),
            None => Err(self.err("expected number, found end of input")),
        }
    }

    /// Parses a domain suffix: `range, lo, hi` / `set, [..]` /
    /// `string, maxlen` / `object, 'C'` / `pointer, 'C'`.
    fn domain(&mut self) -> Result<Domain, ParseError> {
        let kw = self.ident()?;
        match kw.as_str() {
            "range" => {
                self.comma()?;
                let (lo, lo_f) = self.number()?;
                self.comma()?;
                let (hi, hi_f) = self.number()?;
                if lo_f || hi_f {
                    Ok(Domain::FloatRange { lo, hi })
                } else {
                    Ok(Domain::IntRange {
                        lo: lo as i64,
                        hi: hi as i64,
                    })
                }
            }
            "set" => {
                self.comma()?;
                Ok(Domain::Set(self.literal_list()?))
            }
            "string" => {
                self.comma()?;
                let n = self.int()?;
                if n < 1 {
                    return Err(self.err("string length must be >= 1"));
                }
                Ok(Domain::String {
                    max_len: n as usize,
                })
            }
            "object" => {
                self.comma()?;
                Ok(Domain::Object {
                    class_name: self.quoted()?,
                })
            }
            "pointer" => {
                self.comma()?;
                Ok(Domain::Pointer {
                    class_name: self.quoted()?,
                })
            }
            other => Err(self.err(format!("unknown domain keyword `{other}`"))),
        }
    }
}

/// Parses a complete t-spec source text into a [`ClassSpec`].
///
/// The result is *structurally* well-formed; call [`ClassSpec::validate`]
/// for semantic checks (reachability, coverage, domain emptiness).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem, with its line.
///
/// # Examples
///
/// ```
/// let src = "
/// Class('Counter', No, <empty>, <empty>)
/// Method(m1, 'Counter', <empty>, constructor, 0)
/// Method(m2, '~Counter', <empty>, destructor, 0)
/// Node(n1, birth, [m1])
/// Node(n2, death, [m2])
/// Edge(n1, n2)
/// ";
/// let spec = concat_tspec::parse_tspec(src).unwrap();
/// assert_eq!(spec.class_name, "Counter");
/// assert!(spec.validate().is_empty());
/// ```
pub fn parse_tspec(src: &str) -> Result<ClassSpec, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };

    // Class record first.
    let head = p.ident()?;
    if head != "Class" {
        return Err(p.err(format!("t-spec must start with Class(...), found `{head}`")));
    }
    p.expect(&TokenKind::LParen)?;
    let class_name = p.quoted()?;
    p.comma()?;
    let yesno = p.ident()?;
    let is_abstract = match yesno.as_str() {
        "Yes" => true,
        "No" => false,
        other => return Err(p.err(format!("expected Yes or No, found `{other}`"))),
    };
    p.comma()?;
    let superclass = p.quoted_or_empty()?;
    p.comma()?;
    let source_files = match p.peek().map(|t| t.kind.clone()) {
        Some(TokenKind::Empty) => {
            p.next();
            Vec::new()
        }
        Some(TokenKind::LBracket) => p
            .literal_list()?
            .into_iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s),
                other => Err(ParseError {
                    line: 0,
                    message: format!("source file list must contain strings, found {other}"),
                }),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(p.err("expected source file list or <empty>")),
    };
    p.expect(&TokenKind::RParen)?;

    let mut attributes = Vec::new();
    let mut methods: Vec<MethodSpec> = Vec::new();
    let mut invariants: Vec<InvariantSpec> = Vec::new();
    let mut declared_arity: BTreeMap<String, usize> = BTreeMap::new();
    let mut tfm = Tfm::new(class_name.clone());
    let mut node_ids: BTreeMap<String, NodeId> = BTreeMap::new();
    let mut pending_edges: Vec<(String, String, usize)> = Vec::new();

    while p.peek().is_some() {
        let record = p.ident()?;
        p.expect(&TokenKind::LParen)?;
        match record.as_str() {
            "Attribute" => {
                let name = p.quoted()?;
                p.comma()?;
                let domain = p.domain()?;
                attributes.push(AttributeSpec::new(name, domain));
            }
            "Method" => {
                let id = p.ident()?;
                p.comma()?;
                let name = p.quoted()?;
                p.comma()?;
                let return_type = p.quoted_or_empty()?;
                p.comma()?;
                let category = MethodCategory::from_keyword(&p.ident()?);
                p.comma()?;
                let nparams = p.int()?;
                if nparams < 0 {
                    return Err(p.err("parameter count cannot be negative"));
                }
                declared_arity.insert(id.clone(), nparams as usize);
                methods.push(MethodSpec {
                    id,
                    name,
                    return_type,
                    category,
                    params: Vec::new(),
                });
            }
            "Parameter" => {
                let line = p.line();
                let mid = p.ident()?;
                p.comma()?;
                let pname = p.quoted()?;
                p.comma()?;
                let domain = p.domain()?;
                match methods.iter_mut().find(|m| m.id == mid) {
                    Some(m) => m.params.push(ParamSpec::new(pname, domain)),
                    None => {
                        return Err(ParseError {
                            line,
                            message: format!("Parameter references undeclared method `{mid}`"),
                        })
                    }
                }
            }
            "Node" => {
                let line = p.line();
                let label = p.ident()?;
                p.comma()?;
                let kind = match p.ident()?.as_str() {
                    "birth" => NodeKind::Birth,
                    "task" => NodeKind::Task,
                    "death" => NodeKind::Death,
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!(
                                "node kind must be birth, task or death; found `{other}`"
                            ),
                        })
                    }
                };
                p.comma()?;
                let node_methods = p.ident_list()?;
                if node_ids.contains_key(&label) {
                    return Err(ParseError {
                        line,
                        message: format!("duplicate node `{label}`"),
                    });
                }
                let id = tfm.add_node(label.clone(), kind, node_methods);
                node_ids.insert(label, id);
            }
            "Edge" => {
                let line = p.line();
                let from = p.ident()?;
                p.comma()?;
                let to = p.ident()?;
                pending_edges.push((from, to, line));
            }
            "Invariant" => {
                let id = p.ident()?;
                p.comma()?;
                let description = p.quoted()?;
                p.comma()?;
                let left = p.invariant_term()?;
                p.comma()?;
                let line = p.line();
                let op_kw = p.ident()?;
                let op = InvariantOp::from_keyword(&op_kw).ok_or_else(|| ParseError {
                    line,
                    message: format!(
                        "invariant operator must be eq, ne, lt, le, gt or ge; found `{op_kw}`"
                    ),
                })?;
                p.comma()?;
                let right = p.invariant_term()?;
                invariants.push(InvariantSpec::new(id, description, left, op, right));
            }
            other => return Err(p.err(format!("unknown record `{other}`"))),
        }
        p.expect(&TokenKind::RParen)?;
    }

    for (from, to, line) in pending_edges {
        let f = node_ids.get(&from).copied().ok_or_else(|| ParseError {
            line,
            message: format!("Edge references undeclared node `{from}`"),
        })?;
        let t = node_ids.get(&to).copied().ok_or_else(|| ParseError {
            line,
            message: format!("Edge references undeclared node `{to}`"),
        })?;
        tfm.add_edge(f, t);
    }

    for m in &methods {
        if let Some(&declared) = declared_arity.get(&m.id) {
            if declared != m.params.len() {
                return Err(ParseError {
                    line: 0,
                    message: format!(
                        "method {} declares {} parameter(s) but {} Parameter record(s) were given",
                        m.id,
                        declared,
                        m.params.len()
                    ),
                });
            }
        }
    }

    Ok(ClassSpec {
        class_name,
        is_abstract,
        superclass,
        source_files,
        attributes,
        methods,
        invariants,
        tfm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRODUCT: &str = "
// Test specification for the Product example (paper Figures 1-3).
Class('Product', No, <empty>, ['product.cpp'])
Attribute('qty', range, 1, 99999)
Attribute('price', range, 0.0, 10000.0)
Attribute('name', string, 30)
Attribute('prov', pointer, 'Provider')
Method(m1, 'Product', <empty>, constructor, 0)
Method(m2, 'Product', <empty>, constructor, 2)
Parameter(m2, 'q', range, 1, 99999)
Parameter(m2, 'n', string, 30)
Method(m3, 'UpdateQty', <empty>, update, 1)
Parameter(m3, 'q', range, 1, 99999)
Method(m4, 'ShowAttributes', <empty>, access, 0)
Method(m5, '~Product', <empty>, destructor, 0)
Node(n1, birth, [m1, m2])
Node(n2, task, [m3])
Node(n3, task, [m4])
Node(n4, death, [m5])
Edge(n1, n2)
Edge(n1, n3)
Edge(n2, n3)
Edge(n2, n4)
Edge(n3, n4)
";

    #[test]
    fn parses_the_product_example() {
        let spec = parse_tspec(PRODUCT).unwrap();
        assert_eq!(spec.class_name, "Product");
        assert!(!spec.is_abstract);
        assert_eq!(spec.source_files, vec!["product.cpp".to_owned()]);
        assert_eq!(spec.attributes.len(), 4);
        assert_eq!(spec.methods.len(), 5);
        assert_eq!(spec.tfm.node_count(), 4);
        assert_eq!(spec.tfm.edge_count(), 5);
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn method_arity_cross_checked() {
        let src = "
Class('C', No, <empty>, <empty>)
Method(m1, 'C', <empty>, constructor, 2)
Parameter(m1, 'a', range, 0, 1)
Node(n1, birth, [m1])
Node(n2, death, [m1])
Edge(n1, n2)
";
        let err = parse_tspec(src).unwrap_err();
        assert!(err.message.contains("declares 2 parameter(s) but 1"));
    }

    #[test]
    fn parameter_before_method_is_an_error() {
        let src = "
Class('C', No, <empty>, <empty>)
Parameter(m1, 'a', range, 0, 1)
";
        let err = parse_tspec(src).unwrap_err();
        assert!(err.message.contains("undeclared method"));
    }

    #[test]
    fn edge_to_unknown_node_is_an_error() {
        let src = "
Class('C', No, <empty>, <empty>)
Method(m1, 'C', <empty>, constructor, 0)
Node(n1, birth, [m1])
Edge(n1, n9)
";
        let err = parse_tspec(src).unwrap_err();
        assert!(err.message.contains("undeclared node `n9`"));
    }

    #[test]
    fn duplicate_node_is_an_error() {
        let src = "
Class('C', No, <empty>, <empty>)
Method(m1, 'C', <empty>, constructor, 0)
Node(n1, birth, [m1])
Node(n1, death, [m1])
";
        let err = parse_tspec(src).unwrap_err();
        assert!(err.message.contains("duplicate node"));
    }

    #[test]
    fn must_start_with_class() {
        let err = parse_tspec("Node(n1, birth, [m1])").unwrap_err();
        assert!(err.message.contains("must start with Class"));
    }

    #[test]
    fn float_range_detected_by_decimal_point() {
        let src = "
Class('C', No, <empty>, <empty>)
Attribute('x', range, 0.5, 2)
Method(m1, 'C', <empty>, constructor, 0)
Node(n1, birth, [m1])
Node(n2, death, [m1])
Edge(n1, n2)
";
        let spec = parse_tspec(src).unwrap();
        assert_eq!(
            spec.attributes[0].domain,
            Domain::FloatRange { lo: 0.5, hi: 2.0 }
        );
    }

    #[test]
    fn set_domain_with_mixed_literals() {
        let src = "
Class('C', No, <empty>, <empty>)
Attribute('m', set, ['p1', 'p2', 3, true, NULL])
Method(m1, 'C', <empty>, constructor, 0)
Node(n1, birth, [m1])
Node(n2, death, [m1])
Edge(n1, n2)
";
        let spec = parse_tspec(src).unwrap();
        match &spec.attributes[0].domain {
            Domain::Set(vs) => {
                assert_eq!(vs.len(), 5);
                assert_eq!(vs[3], Value::Bool(true));
                assert_eq!(vs[4], Value::Null);
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn superclass_recorded() {
        let src = "
Class('CSortableObList', No, 'CObList', <empty>)
Method(m1, 'CSortableObList', <empty>, constructor, 0)
Node(n1, birth, [m1])
Node(n2, death, [m1])
Edge(n1, n2)
";
        let spec = parse_tspec(src).unwrap();
        assert_eq!(spec.superclass.as_deref(), Some("CObList"));
    }

    #[test]
    fn unknown_record_and_domain_keywords_rejected() {
        assert!(parse_tspec("Class('C', No, <empty>, <empty>)\nBogus(n1)")
            .unwrap_err()
            .message
            .contains("unknown record"));
        assert!(
            parse_tspec("Class('C', No, <empty>, <empty>)\nAttribute('a', weird, 1)")
                .unwrap_err()
                .message
                .contains("unknown domain keyword")
        );
    }

    #[test]
    fn abstract_flag_parsed() {
        let src = "
Class('Shape', Yes, <empty>, <empty>)
Method(m1, 'Shape', <empty>, constructor, 0)
Node(n1, birth, [m1])
Node(n2, death, [m1])
Edge(n1, n2)
";
        assert!(parse_tspec(src).unwrap().is_abstract);
    }

    #[test]
    fn string_domain_zero_length_rejected() {
        let src = "
Class('C', No, <empty>, <empty>)
Attribute('s', string, 0)
";
        assert!(parse_tspec(src).is_err());
    }
}
