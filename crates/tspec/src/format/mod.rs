//! The t-spec interchange text format (paper Figure 3).
//!
//! * [`parse_tspec`] — text → [`crate::ClassSpec`];
//! * [`print_tspec`] — [`crate::ClassSpec`] → text (reparseable);
//! * [`lexer`] internals are exposed for diagnostics tooling.

pub mod lexer;
mod parser;
mod printer;

pub use parser::{parse_tspec, ParseError};
pub use printer::print_tspec;
