//! Specification quality lints.
//!
//! Paper §3.2, advantage (vii) of embedding the specification: "the
//! specification quality can be improved, since incompleteness, ambiguity
//! and inconsistency can be detected by the tester and then removed."
//! [`lint_spec`] mechanizes the common cases on top of the hard errors of
//! [`ClassSpec::validate`]: everything here is a *warning* — the spec is
//! usable, but the tester should look.

use crate::spec::{ClassSpec, InvariantOp, InvariantTerm, MethodCategory};
use concat_tfm::{enumerate_transactions_with, EnumerationConfig, NodeKind};
use std::fmt;

/// A specification quality warning.
#[derive(Debug, Clone, PartialEq)]
pub enum LintWarning {
    /// A constructor appears on a non-birth node (ambiguous life cycle).
    ConstructorOffBirthNode {
        /// The method id.
        method: String,
        /// The node label.
        node: String,
    },
    /// A destructor appears on a non-death node.
    DestructorOffDeathNode {
        /// The method id.
        method: String,
        /// The node label.
        node: String,
    },
    /// An update method declares no parameters — it cannot be driven with
    /// varied inputs (possible incompleteness of the interface
    /// description).
    ParameterlessUpdate {
        /// The method id.
        method: String,
    },
    /// A node groups alternatives of *different* categories (ambiguity:
    /// one node should represent one task).
    MixedCategoryNode {
        /// The node label.
        node: String,
    },
    /// The model's transaction count exceeds the threshold — test
    /// explosion; consider restructuring (inconsistency between model
    /// size and testing budget).
    TransactionExplosion {
        /// Transactions enumerated (possibly capped).
        transactions: usize,
        /// The lint's threshold.
        threshold: usize,
    },
    /// An attribute's domain admits a single value — either dead weight or
    /// a constant that should not be an attribute.
    DegenerateAttributeDomain {
        /// The attribute name.
        attribute: String,
    },
    /// Two methods share name and arity (overload ambiguity for name-based
    /// dispatch; constructors are exempt — factories dispatch on arity).
    AmbiguousOverload {
        /// The shared method name.
        name: String,
    },
    /// An invariant clause references a state field that is not a declared
    /// attribute — the reporter may never emit it, leaving the clause
    /// unevaluable during invariant fuzzing (possible incompleteness).
    InvariantFieldUndeclared {
        /// The invariant id.
        invariant: String,
        /// The unresolved field name.
        field: String,
    },
    /// An invariant clause can never distinguish states: both terms are
    /// literals, or a field is compared to itself with a reflexive
    /// operator (`eq`, `le`, `ge`) — dead weight in the fuzzing oracle.
    TrivialInvariant {
        /// The invariant id.
        invariant: String,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintWarning::ConstructorOffBirthNode { method, node } => {
                write!(f, "constructor {method} appears on non-birth node {node}")
            }
            LintWarning::DestructorOffDeathNode { method, node } => {
                write!(f, "destructor {method} appears on non-death node {node}")
            }
            LintWarning::ParameterlessUpdate { method } => {
                write!(f, "update method {method} has no parameters to vary")
            }
            LintWarning::MixedCategoryNode { node } => {
                write!(f, "node {node} mixes method categories")
            }
            LintWarning::TransactionExplosion {
                transactions,
                threshold,
            } => {
                write!(
                    f,
                    "model yields {transactions} transactions (threshold {threshold})"
                )
            }
            LintWarning::DegenerateAttributeDomain { attribute } => {
                write!(f, "attribute {attribute} has a single-value domain")
            }
            LintWarning::AmbiguousOverload { name } => {
                write!(f, "methods named {name} share the same arity")
            }
            LintWarning::InvariantFieldUndeclared { invariant, field } => {
                write!(
                    f,
                    "invariant {invariant} references undeclared field {field}"
                )
            }
            LintWarning::TrivialInvariant { invariant } => {
                write!(f, "invariant {invariant} holds in every state")
            }
        }
    }
}

/// Transaction-count threshold above which
/// [`LintWarning::TransactionExplosion`] fires.
pub const TRANSACTION_EXPLOSION_THRESHOLD: usize = 10_000;

/// Lints a (structurally valid) specification for quality problems.
///
/// Run [`ClassSpec::validate`] first — lints assume node→method references
/// resolve; unresolved ids are skipped silently here.
///
/// # Examples
///
/// ```
/// use concat_tspec::{lint_spec, ClassSpecBuilder, MethodCategory};
///
/// let spec = ClassSpecBuilder::new("C")
///     .constructor("m1", "C")
///     .method("m2", "Touch", MethodCategory::Update) // no params!
///     .destructor("m3", "~C")
///     .birth_node("n1", ["m1"])
///     .task_node("n2", ["m2"])
///     .death_node("n3", ["m3"])
///     .edge("n1", "n2")
///     .edge("n2", "n3")
///     .build()
///     .unwrap();
/// let warnings = lint_spec(&spec);
/// assert_eq!(warnings.len(), 1); // ParameterlessUpdate on m2
/// ```
pub fn lint_spec(spec: &ClassSpec) -> Vec<LintWarning> {
    let mut warnings = Vec::new();

    for (_, node) in spec.tfm.nodes() {
        let mut categories = Vec::new();
        for mid in &node.methods {
            let Some(m) = spec.method(mid) else { continue };
            categories.push(m.category.clone());
            match (&m.category, node.kind) {
                (MethodCategory::Constructor, k) if k != NodeKind::Birth => {
                    warnings.push(LintWarning::ConstructorOffBirthNode {
                        method: m.id.clone(),
                        node: node.label.clone(),
                    });
                }
                (MethodCategory::Destructor, k) if k != NodeKind::Death => {
                    warnings.push(LintWarning::DestructorOffDeathNode {
                        method: m.id.clone(),
                        node: node.label.clone(),
                    });
                }
                _ => {}
            }
        }
        categories.dedup();
        if categories.len() > 1 {
            warnings.push(LintWarning::MixedCategoryNode {
                node: node.label.clone(),
            });
        }
    }

    for m in &spec.methods {
        if m.category == MethodCategory::Update && m.params.is_empty() {
            warnings.push(LintWarning::ParameterlessUpdate {
                method: m.id.clone(),
            });
        }
    }

    for a in &spec.attributes {
        let single = match &a.domain {
            crate::domain::Domain::IntRange { lo, hi } => lo == hi,
            crate::domain::Domain::FloatRange { lo, hi } => lo == hi,
            crate::domain::Domain::Set(vs) => vs.len() == 1,
            _ => false,
        };
        if single {
            warnings.push(LintWarning::DegenerateAttributeDomain {
                attribute: a.name.clone(),
            });
        }
    }

    // Overload ambiguity (constructors exempt).
    let mut seen: Vec<(&str, usize)> = Vec::new();
    for m in &spec.methods {
        if m.category == MethodCategory::Constructor {
            continue;
        }
        let key = (m.name.as_str(), m.params.len());
        if seen.contains(&key) {
            if !warnings
                .iter()
                .any(|w| matches!(w, LintWarning::AmbiguousOverload { name } if name == &m.name))
            {
                warnings.push(LintWarning::AmbiguousOverload {
                    name: m.name.clone(),
                });
            }
        } else {
            seen.push(key);
        }
    }

    for inv in &spec.invariants {
        for term in [&inv.left, &inv.right] {
            if let InvariantTerm::Field(field) = term {
                if !spec.attributes.iter().any(|a| &a.name == field) {
                    warnings.push(LintWarning::InvariantFieldUndeclared {
                        invariant: inv.id.clone(),
                        field: field.clone(),
                    });
                }
            }
        }
        let trivial = match (&inv.left, &inv.right) {
            (InvariantTerm::Literal(_), InvariantTerm::Literal(_)) => true,
            (InvariantTerm::Field(l), InvariantTerm::Field(r)) => {
                l == r && matches!(inv.op, InvariantOp::Eq | InvariantOp::Le | InvariantOp::Ge)
            }
            _ => false,
        };
        if trivial {
            warnings.push(LintWarning::TrivialInvariant {
                invariant: inv.id.clone(),
            });
        }
    }

    let set = enumerate_transactions_with(
        &spec.tfm,
        EnumerationConfig {
            cycle_bound: 1,
            max_transactions: TRANSACTION_EXPLOSION_THRESHOLD + 1,
        },
    );
    if set.len() > TRANSACTION_EXPLOSION_THRESHOLD {
        warnings.push(LintWarning::TransactionExplosion {
            transactions: set.len(),
            threshold: TRANSACTION_EXPLOSION_THRESHOLD,
        });
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassSpecBuilder;
    use crate::domain::Domain;

    fn clean_spec() -> ClassSpec {
        ClassSpecBuilder::new("C")
            .attribute("a", Domain::int_range(0, 9))
            .constructor("m1", "C")
            .method("m2", "Set", MethodCategory::Update)
            .param("v", Domain::int_range(0, 9))
            .destructor("m3", "~C")
            .birth_node("n1", ["m1"])
            .task_node("n2", ["m2"])
            .death_node("n3", ["m3"])
            .edge("n1", "n2")
            .edge("n2", "n3")
            .build()
            .unwrap()
    }

    #[test]
    fn clean_spec_has_no_warnings() {
        assert!(lint_spec(&clean_spec()).is_empty());
    }

    #[test]
    fn constructor_off_birth_node_flagged() {
        let mut spec = clean_spec();
        let n2 = spec.tfm.node_by_label("n2").unwrap();
        // Sneak the constructor onto the task node.
        let mut tfm = concat_tfm::Tfm::new("C");
        for (_, node) in spec.tfm.nodes() {
            let methods: Vec<String> = if node.label == "n2" {
                vec!["m2".into(), "m1".into()]
            } else {
                node.methods.clone()
            };
            tfm.add_node(node.label.clone(), node.kind, methods);
        }
        for e in spec.tfm.edges() {
            tfm.add_edge(e.from, e.to);
        }
        spec.tfm = tfm;
        let warnings = lint_spec(&spec);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::ConstructorOffBirthNode { .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::MixedCategoryNode { node } if node == "n2")));
        let _ = n2;
    }

    #[test]
    fn parameterless_update_flagged() {
        let mut spec = clean_spec();
        spec.methods[1].params.clear();
        let warnings = lint_spec(&spec);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::ParameterlessUpdate { method } if method == "m2")));
    }

    #[test]
    fn degenerate_attribute_flagged() {
        let mut spec = clean_spec();
        spec.attributes[0].domain = Domain::int_range(5, 5);
        assert!(lint_spec(&spec)
            .iter()
            .any(|w| matches!(w, LintWarning::DegenerateAttributeDomain { attribute } if attribute == "a")));
        spec.attributes[0].domain = Domain::Set(vec![concat_runtime::Value::Int(1)]);
        assert_eq!(lint_spec(&spec).len(), 1);
    }

    #[test]
    fn ambiguous_overload_flagged_once() {
        let mut spec = clean_spec();
        spec.methods.push(crate::spec::MethodSpec {
            id: "m4".into(),
            name: "Set".into(),
            return_type: None,
            category: MethodCategory::Update,
            params: vec![crate::spec::ParamSpec::new("w", Domain::int_range(0, 1))],
        });
        spec.methods.push(crate::spec::MethodSpec {
            id: "m5".into(),
            name: "Set".into(),
            return_type: None,
            category: MethodCategory::Update,
            params: vec![crate::spec::ParamSpec::new("x", Domain::int_range(0, 1))],
        });
        let overloads: Vec<_> = lint_spec(&spec)
            .into_iter()
            .filter(|w| matches!(w, LintWarning::AmbiguousOverload { .. }))
            .collect();
        assert_eq!(overloads.len(), 1);
    }

    #[test]
    fn invariant_field_must_be_declared() {
        let mut spec = clean_spec();
        spec.invariants.push(crate::spec::InvariantSpec::new(
            "i1",
            "phantom field",
            crate::spec::InvariantTerm::field("nope"),
            InvariantOp::Ge,
            crate::spec::InvariantTerm::int(0),
        ));
        let warnings = lint_spec(&spec);
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::InvariantFieldUndeclared { invariant, field }
                if invariant == "i1" && field == "nope"
        )));
    }

    #[test]
    fn trivial_invariants_flagged() {
        let mut spec = clean_spec();
        spec.invariants.push(crate::spec::InvariantSpec::new(
            "i1",
            "literal vs literal",
            crate::spec::InvariantTerm::int(1),
            InvariantOp::Le,
            crate::spec::InvariantTerm::int(2),
        ));
        spec.invariants.push(crate::spec::InvariantSpec::new(
            "i2",
            "field vs itself",
            crate::spec::InvariantTerm::field("a"),
            InvariantOp::Eq,
            crate::spec::InvariantTerm::field("a"),
        ));
        // A field-vs-itself `ne` is unsatisfiable, not trivial — leave it
        // to the violation report rather than this lint.
        spec.invariants.push(crate::spec::InvariantSpec::new(
            "i3",
            "sound clause",
            crate::spec::InvariantTerm::field("a"),
            InvariantOp::Ge,
            crate::spec::InvariantTerm::int(0),
        ));
        let trivial: Vec<_> = lint_spec(&spec)
            .into_iter()
            .filter(|w| matches!(w, LintWarning::TrivialInvariant { .. }))
            .collect();
        assert_eq!(trivial.len(), 2);
    }

    #[test]
    fn display_nonempty() {
        let warnings = [
            LintWarning::ParameterlessUpdate { method: "m".into() },
            LintWarning::MixedCategoryNode { node: "n".into() },
            LintWarning::TransactionExplosion {
                transactions: 20_000,
                threshold: 10_000,
            },
        ];
        for w in warnings {
            assert!(!w.to_string().is_empty());
        }
    }
}
