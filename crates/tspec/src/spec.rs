//! The t-spec data model: interface description + test model.
//!
//! A t-spec (paper §3.2, Figure 3) describes a component's *interface*
//! (class header, attributes with domains, method signatures with parameter
//! domains) and its *behaviour* as a transaction flow model. The producer
//! embeds the t-spec in the component; the consumer's driver generator reads
//! it to create test cases.

use crate::domain::Domain;
use concat_tfm::{Tfm, TfmError};
use std::collections::BTreeMap;
use std::fmt;

/// Category of a method "relative to test reuse" (Figure 3).
///
/// Constructors and destructors are excluded from transaction-level test
/// reuse comparisons (§3.4.2); the other categories document intent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MethodCategory {
    /// Creates the object; realizes birth nodes.
    Constructor,
    /// Destroys the object; realizes death nodes.
    Destructor,
    /// Mutates object state (the paper's `Update*` methods).
    Update,
    /// Observes object state (the paper's `ShowAttributes`).
    Access,
    /// Talks to an external store (the paper's `InsertProduct`).
    Database,
    /// Anything else; the label is kept verbatim.
    Other(String),
}

impl MethodCategory {
    /// The keyword used in the t-spec text format.
    pub fn keyword(&self) -> &str {
        match self {
            MethodCategory::Constructor => "constructor",
            MethodCategory::Destructor => "destructor",
            MethodCategory::Update => "update",
            MethodCategory::Access => "access",
            MethodCategory::Database => "database",
            MethodCategory::Other(s) => s,
        }
    }

    /// Parses a t-spec keyword into a category.
    pub fn from_keyword(kw: &str) -> Self {
        match kw {
            "constructor" => MethodCategory::Constructor,
            "destructor" => MethodCategory::Destructor,
            "update" => MethodCategory::Update,
            "access" => MethodCategory::Access,
            "database" => MethodCategory::Database,
            other => MethodCategory::Other(other.to_owned()),
        }
    }
}

impl fmt::Display for MethodCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A formal parameter and its value domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as documented in the t-spec.
    pub name: String,
    /// Domain from which test inputs are drawn.
    pub domain: Domain,
}

impl ParamSpec {
    /// Creates a parameter specification.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        ParamSpec {
            name: name.into(),
            domain,
        }
    }
}

/// A public method of the component.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSpec {
    /// Short identifier used by TFM nodes (`m1`, `m2`, … in Figure 3).
    pub id: String,
    /// The method's name as dispatched at runtime.
    pub name: String,
    /// Return type name, if any (documentation only).
    pub return_type: Option<String>,
    /// Category relative to test reuse.
    pub category: MethodCategory,
    /// Formal parameters in order.
    pub params: Vec<ParamSpec>,
}

impl MethodSpec {
    /// Creates a method spec without parameters.
    pub fn new(id: impl Into<String>, name: impl Into<String>, category: MethodCategory) -> Self {
        MethodSpec {
            id: id.into(),
            name: name.into(),
            return_type: None,
            category,
            params: Vec::new(),
        }
    }

    /// Number of declared parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// True when every parameter domain can be auto-filled by the input
    /// generator (numeric and string domains).
    pub fn is_auto_generatable(&self) -> bool {
        self.params.iter().all(|p| p.domain.is_auto_generatable())
    }
}

/// Comparison operator of a declarative invariant clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl InvariantOp {
    /// The keyword used in the t-spec text format (`eq`, `ne`, `lt`, …).
    pub fn keyword(&self) -> &'static str {
        match self {
            InvariantOp::Eq => "eq",
            InvariantOp::Ne => "ne",
            InvariantOp::Lt => "lt",
            InvariantOp::Le => "le",
            InvariantOp::Gt => "gt",
            InvariantOp::Ge => "ge",
        }
    }

    /// Parses a t-spec keyword; `None` for anything unrecognized.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "eq" => InvariantOp::Eq,
            "ne" => InvariantOp::Ne,
            "lt" => InvariantOp::Lt,
            "le" => InvariantOp::Le,
            "gt" => InvariantOp::Gt,
            "ge" => InvariantOp::Ge,
            _ => return None,
        })
    }

    /// The operator as conventional notation (`==`, `<=`, …) for reports.
    pub fn symbol(&self) -> &'static str {
        match self {
            InvariantOp::Eq => "==",
            InvariantOp::Ne => "!=",
            InvariantOp::Lt => "<",
            InvariantOp::Le => "<=",
            InvariantOp::Gt => ">",
            InvariantOp::Ge => ">=",
        }
    }
}

impl fmt::Display for InvariantOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One side of an invariant comparison: a reported state field or a
/// literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantTerm {
    /// A key of the component's [`StateReport`](`crate`)-style observable
    /// state (usually an attribute name such as `m_nCount`).
    Field(String),
    /// A constant.
    Literal(concat_runtime::Value),
}

impl InvariantTerm {
    /// Shorthand for a field reference.
    pub fn field(name: impl Into<String>) -> Self {
        InvariantTerm::Field(name.into())
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Self {
        InvariantTerm::Literal(concat_runtime::Value::Int(v))
    }
}

impl fmt::Display for InvariantTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantTerm::Field(name) => f.write_str(name),
            InvariantTerm::Literal(v) => f.write_str(&v.to_literal()),
        }
    }
}

/// A declarative class-invariant clause (paper §3.2: the spec documents
/// the legal states; here a machine-checkable comparison over the
/// component's reported observables). The invariant-fuzzing walk engine
/// evaluates every clause against the component's `Reporter` state after
/// every call, alongside the imperative `InvariantTest` of the BIT
/// capability.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantSpec {
    /// Short identifier (`i1`, `i2`, … by convention).
    pub id: String,
    /// Human-readable statement of the property.
    pub description: String,
    /// Left-hand term.
    pub left: InvariantTerm,
    /// Comparison operator.
    pub op: InvariantOp,
    /// Right-hand term.
    pub right: InvariantTerm,
}

impl InvariantSpec {
    /// Creates an invariant clause.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        left: InvariantTerm,
        op: InvariantOp,
        right: InvariantTerm,
    ) -> Self {
        InvariantSpec {
            id: id.into(),
            description: description.into(),
            left,
            op,
            right,
        }
    }

    /// Evaluates the clause against a field lookup (typically a
    /// `StateReport`). Returns `None` when a referenced field is absent
    /// from the report — the clause is then *unevaluable*, which callers
    /// may treat as a skip or as a spec-quality problem, but never as a
    /// violation.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<concat_runtime::Value>) -> Option<bool> {
        let resolve = |term: &InvariantTerm| -> Option<concat_runtime::Value> {
            match term {
                InvariantTerm::Field(name) => lookup(name),
                InvariantTerm::Literal(v) => Some(v.clone()),
            }
        };
        let left = resolve(&self.left)?;
        let right = resolve(&self.right)?;
        let ord = left.total_cmp(&right);
        Some(match self.op {
            InvariantOp::Eq => ord == std::cmp::Ordering::Equal,
            InvariantOp::Ne => ord != std::cmp::Ordering::Equal,
            InvariantOp::Lt => ord == std::cmp::Ordering::Less,
            InvariantOp::Le => ord != std::cmp::Ordering::Greater,
            InvariantOp::Gt => ord == std::cmp::Ordering::Greater,
            InvariantOp::Ge => ord != std::cmp::Ordering::Less,
        })
    }

    /// Renders the clause as conventional notation: `m_nCount >= 0`.
    pub fn render(&self) -> String {
        format!("{} {} {}", self.left, self.op, self.right)
    }
}

impl fmt::Display for InvariantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.render())
    }
}

/// An attribute (data member) and its domain.
///
/// The paper assumes "attributes are not part of a class's public
/// interface, being accessible only through methods" (§3.4.2); the t-spec
/// still documents them because invariants and the reporter refer to them.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Attribute name.
    pub name: String,
    /// Domain of legal values — the class invariant in data form.
    pub domain: Domain,
}

impl AttributeSpec {
    /// Creates an attribute specification.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        AttributeSpec {
            name: name.into(),
            domain,
        }
    }
}

/// Problems detected by [`ClassSpec::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Two methods share an id.
    DuplicateMethodId {
        /// The duplicated id.
        id: String,
    },
    /// A TFM node references a method id missing from the interface
    /// description.
    UnknownMethodInModel {
        /// The unresolved method id or name.
        method: String,
        /// Label of the referencing node.
        node: String,
    },
    /// An attribute or parameter domain cannot produce any value.
    EmptyDomain {
        /// `"attribute qty"` or `"parameter n of m5"`.
        site: String,
    },
    /// The embedded TFM failed its own validation.
    Model(TfmError),
    /// A method is declared in the interface but appears on no TFM node, so
    /// no transaction can ever exercise it.
    UncoveredMethod {
        /// Id of the uncovered method.
        id: String,
    },
    /// Two invariant clauses share an id.
    DuplicateInvariantId {
        /// The duplicated id.
        id: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateMethodId { id } => write!(f, "duplicate method id {id}"),
            SpecError::UnknownMethodInModel { method, node } => {
                write!(f, "node {node} references unknown method {method}")
            }
            SpecError::EmptyDomain { site } => write!(f, "domain of {site} is empty"),
            SpecError::Model(e) => write!(f, "test model: {e}"),
            SpecError::UncoveredMethod { id } => {
                write!(f, "method {id} appears on no node of the test model")
            }
            SpecError::DuplicateInvariantId { id } => {
                write!(f, "duplicate invariant id {id}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TfmError> for SpecError {
    fn from(e: TfmError) -> Self {
        SpecError::Model(e)
    }
}

/// A complete test specification for one component.
///
/// Build one with [`crate::ClassSpecBuilder`], parse one from the Figure-3
/// text format with [`crate::parse_tspec`], or print one with
/// [`crate::print_tspec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class name.
    pub class_name: String,
    /// Whether the class is abstract (tests can be generated but only run
    /// against a concrete subclass).
    pub is_abstract: bool,
    /// Name of the superclass, if any.
    pub superclass: Option<String>,
    /// Source files needed to compile the class (documentation; kept for
    /// format fidelity with Figure 3).
    pub source_files: Vec<String>,
    /// Documented attributes.
    pub attributes: Vec<AttributeSpec>,
    /// Public methods, in declaration order.
    pub methods: Vec<MethodSpec>,
    /// Declarative class-invariant clauses, evaluated by the invariant
    /// fuzzing walk engine against the component's reported state.
    pub invariants: Vec<InvariantSpec>,
    /// The transaction flow model. Node method lists hold method *ids*.
    pub tfm: Tfm,
}

impl ClassSpec {
    /// Looks up a method by id (`m1`) or, failing that, by name.
    pub fn method(&self, id_or_name: &str) -> Option<&MethodSpec> {
        self.methods
            .iter()
            .find(|m| m.id == id_or_name)
            .or_else(|| self.methods.iter().find(|m| m.name == id_or_name))
    }

    /// Map from method id to method, for resolution-heavy callers.
    pub fn methods_by_id(&self) -> BTreeMap<&str, &MethodSpec> {
        self.methods.iter().map(|m| (m.id.as_str(), m)).collect()
    }

    /// All methods in a given category.
    pub fn methods_in_category(&self, category: &MethodCategory) -> Vec<&MethodSpec> {
        self.methods
            .iter()
            .filter(|m| m.category == *category)
            .collect()
    }

    /// Validates the whole specification: duplicate ids, model soundness,
    /// node→method resolution, empty domains, uncovered methods.
    ///
    /// Returns every problem found; an empty vector means the spec is
    /// usable by the driver generator.
    pub fn validate(&self) -> Vec<SpecError> {
        let mut errors = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for m in &self.methods {
            if !seen.insert(m.id.as_str()) {
                errors.push(SpecError::DuplicateMethodId { id: m.id.clone() });
            }
        }
        for a in &self.attributes {
            if a.domain.is_empty() {
                errors.push(SpecError::EmptyDomain {
                    site: format!("attribute {}", a.name),
                });
            }
        }
        for m in &self.methods {
            for p in &m.params {
                if p.domain.is_empty() {
                    errors.push(SpecError::EmptyDomain {
                        site: format!("parameter {} of {}", p.name, m.id),
                    });
                }
            }
        }
        for e in self.tfm.validate() {
            errors.push(SpecError::Model(e));
        }
        let ids = self.methods_by_id();
        let mut covered: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (_, node) in self.tfm.nodes() {
            for mref in &node.methods {
                match ids.get(mref.as_str()) {
                    Some(m) => {
                        covered.insert(m.id.as_str());
                    }
                    None => errors.push(SpecError::UnknownMethodInModel {
                        method: mref.clone(),
                        node: node.label.clone(),
                    }),
                }
            }
        }
        for m in &self.methods {
            if !covered.contains(m.id.as_str()) {
                errors.push(SpecError::UncoveredMethod { id: m.id.clone() });
            }
        }
        let mut inv_ids = std::collections::BTreeSet::new();
        for inv in &self.invariants {
            if !inv_ids.insert(inv.id.as_str()) {
                errors.push(SpecError::DuplicateInvariantId { id: inv.id.clone() });
            }
        }
        errors
    }

    /// Resolves a TFM node's method-id list into method specs.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not validate (unknown id in the model); call
    /// [`ClassSpec::validate`] first.
    pub fn resolve_node_methods(&self, node: concat_tfm::NodeId) -> Vec<&MethodSpec> {
        self.tfm
            .node(node)
            .methods
            .iter()
            .map(|id| {
                self.method(id)
                    .expect("validated spec resolves all node methods")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_tfm::NodeKind;

    fn spec() -> ClassSpec {
        let mut tfm = Tfm::new("Product");
        let n1 = tfm.add_node("n1", NodeKind::Birth, ["m1"]);
        let n2 = tfm.add_node("n2", NodeKind::Task, ["m2"]);
        let n3 = tfm.add_node("n3", NodeKind::Death, ["m3"]);
        tfm.add_edge(n1, n2);
        tfm.add_edge(n2, n3);
        ClassSpec {
            class_name: "Product".into(),
            is_abstract: false,
            superclass: None,
            source_files: vec![],
            attributes: vec![AttributeSpec::new("qty", Domain::int_range(1, 99_999))],
            methods: vec![
                MethodSpec::new("m1", "Product", MethodCategory::Constructor),
                MethodSpec {
                    id: "m2".into(),
                    name: "UpdateQty".into(),
                    return_type: None,
                    category: MethodCategory::Update,
                    params: vec![ParamSpec::new("q", Domain::int_range(1, 99_999))],
                },
                MethodSpec::new("m3", "~Product", MethodCategory::Destructor),
            ],
            invariants: vec![InvariantSpec::new(
                "i1",
                "qty stays positive",
                InvariantTerm::field("qty"),
                InvariantOp::Ge,
                InvariantTerm::int(1),
            )],
            tfm,
        }
    }

    #[test]
    fn valid_spec_has_no_errors() {
        assert!(spec().validate().is_empty());
    }

    #[test]
    fn method_lookup_by_id_and_name() {
        let s = spec();
        assert_eq!(s.method("m2").unwrap().name, "UpdateQty");
        assert_eq!(s.method("UpdateQty").unwrap().id, "m2");
        assert!(s.method("mX").is_none());
    }

    #[test]
    fn duplicate_method_id_detected() {
        let mut s = spec();
        s.methods
            .push(MethodSpec::new("m1", "Dup", MethodCategory::Access));
        let errs = s.validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::DuplicateMethodId { id } if id == "m1")));
    }

    #[test]
    fn unknown_method_in_model_detected() {
        let mut s = spec();
        let n2 = s.tfm.node_by_label("n2").unwrap();
        let n9 = s.tfm.add_node("n9", NodeKind::Task, ["m99"]);
        s.tfm.add_edge(n2, n9);
        let n3 = s.tfm.node_by_label("n3").unwrap();
        s.tfm.add_edge(n9, n3);
        let errs = s.validate();
        assert!(errs.iter().any(
            |e| matches!(e, SpecError::UnknownMethodInModel { method, .. } if method == "m99")
        ));
    }

    #[test]
    fn empty_domain_detected() {
        let mut s = spec();
        s.attributes
            .push(AttributeSpec::new("bad", Domain::int_range(2, 1)));
        s.methods[1]
            .params
            .push(ParamSpec::new("p", Domain::Set(vec![])));
        let errs = s.validate();
        let sites: Vec<String> = errs
            .iter()
            .filter_map(|e| match e {
                SpecError::EmptyDomain { site } => Some(site.clone()),
                _ => None,
            })
            .collect();
        assert!(sites.contains(&"attribute bad".to_owned()));
        assert!(sites.contains(&"parameter p of m2".to_owned()));
    }

    #[test]
    fn uncovered_method_detected() {
        let mut s = spec();
        s.methods
            .push(MethodSpec::new("m4", "Lonely", MethodCategory::Access));
        let errs = s.validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::UncoveredMethod { id } if id == "m4")));
    }

    #[test]
    fn model_errors_propagate() {
        let mut s = spec();
        s.tfm.add_node("island", NodeKind::Task, ["m2"]);
        let errs = s.validate();
        assert!(errs.iter().any(|e| matches!(e, SpecError::Model(_))));
    }

    #[test]
    fn resolve_node_methods_maps_ids() {
        let s = spec();
        let n2 = s.tfm.node_by_label("n2").unwrap();
        let resolved = s.resolve_node_methods(n2);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].name, "UpdateQty");
    }

    #[test]
    fn categories_round_trip_keywords() {
        for c in [
            MethodCategory::Constructor,
            MethodCategory::Destructor,
            MethodCategory::Update,
            MethodCategory::Access,
            MethodCategory::Database,
            MethodCategory::Other("special".into()),
        ] {
            assert_eq!(MethodCategory::from_keyword(c.keyword()), c);
        }
    }

    #[test]
    fn methods_in_category_filters() {
        let s = spec();
        assert_eq!(s.methods_in_category(&MethodCategory::Constructor).len(), 1);
        assert_eq!(s.methods_in_category(&MethodCategory::Update).len(), 1);
        assert!(s.methods_in_category(&MethodCategory::Database).is_empty());
    }

    #[test]
    fn arity_and_auto_generatable() {
        let s = spec();
        assert_eq!(s.method("m2").unwrap().arity(), 1);
        assert!(s.method("m2").unwrap().is_auto_generatable());
        let mut m = MethodSpec::new("m9", "TakesPtr", MethodCategory::Update);
        m.params.push(ParamSpec::new(
            "p",
            Domain::Pointer {
                class_name: "Provider".into(),
            },
        ));
        assert!(!m.is_auto_generatable());
    }
}
