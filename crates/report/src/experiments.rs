//! Paper-vs-measured experiment records.
//!
//! Every table/figure harness produces a [`Comparison`] so EXPERIMENTS.md
//! can show, for each reported quantity, what the paper measured on the
//! authors' C++ subjects and what this reproduction measures on its own
//! re-implementations — absolute numbers differ, the *shape* must hold.

use crate::table::AsciiTable;
use std::fmt;

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// What is being compared (e.g. `"total mutation score"`).
    pub metric: String,
    /// The paper's value, verbatim.
    pub paper: String,
    /// This reproduction's value.
    pub measured: String,
    /// Whether the shape criterion holds for this row.
    pub shape_holds: bool,
}

/// A paper-vs-measured record for one experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Experiment id, e.g. `"Table 2"`.
    pub experiment: String,
    /// The compared quantities.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// Starts a record for the named experiment.
    pub fn new(experiment: impl Into<String>) -> Self {
        Comparison {
            experiment: experiment.into(),
            rows: Vec::new(),
        }
    }

    /// Adds one compared quantity.
    pub fn row(
        mut self,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        shape_holds: bool,
    ) -> Self {
        self.rows.push(ComparisonRow {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            shape_holds,
        });
        self
    }

    /// True when the shape criterion holds on every row.
    pub fn shape_holds(&self) -> bool {
        self.rows.iter().all(|r| r.shape_holds)
    }

    /// Renders the record as an ASCII table.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "Metric".into(),
            "Paper".into(),
            "Measured".into(),
            "Shape".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.metric.clone(),
                r.paper.clone(),
                r.measured.clone(),
                if r.shape_holds {
                    "holds".into()
                } else {
                    "DIVERGES".into()
                },
            ]);
        }
        format!("{} — paper vs measured\n{}", self.experiment, t.render())
    }

    /// Renders the record as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.experiment);
        out.push_str("| Metric | Paper | Measured | Shape |\n|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                r.metric,
                r.paper,
                r.measured,
                if r.shape_holds {
                    "holds"
                } else {
                    "**diverges**"
                }
            ));
        }
        out
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Comparison {
        Comparison::new("Table 2")
            .row("total mutants", "700", "297", true)
            .row("total score", "95.7%", "98.4%", true)
            .row("kills by assertion", "59 of 652", "27 of 283", true)
    }

    #[test]
    fn render_contains_all_rows() {
        let s = sample().render();
        assert!(s.contains("Table 2"));
        assert!(s.contains("95.7%"));
        assert!(s.contains("27 of 283"));
        assert!(s.contains("holds"));
    }

    #[test]
    fn shape_aggregation() {
        assert!(sample().shape_holds());
        let bad = sample().row("x", "up", "down", false);
        assert!(!bad.shape_holds());
        assert!(bad.render().contains("DIVERGES"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().render_markdown();
        assert!(md.starts_with("### Table 2"));
        assert!(md.contains("| total mutants | 700 | 297 | holds |"));
    }

    #[test]
    fn display_matches_render() {
        assert_eq!(sample().to_string(), sample().render());
    }
}
