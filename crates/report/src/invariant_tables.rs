//! Tables over an invariant-fuzzing campaign.
//!
//! [`render_invariant_table`] gives the campaign-level figures (walks,
//! calls, checks, failures, corpus replays, shrink ratio), followed by
//! one row per breaker: where it came from, why it failed, and how far
//! the shrinker compressed the failing sequence.

use crate::table::AsciiTable;
use concat_driver::{FailureKind, InvariantBreaker, InvariantSummary};

fn failure_label(kind: &FailureKind) -> String {
    match kind {
        FailureKind::Invariant { message } => format!("invariant: {message}"),
        FailureKind::SpecClause { id } => format!("clause {id}"),
        FailureKind::Panic { message } => format!("panic: {message}"),
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_owned();
    }
    let head: String = s.chars().take(max.saturating_sub(1)).collect();
    format!("{head}\u{2026}")
}

/// Renders the invariant-campaign report: a summary table, then (when
/// any sequence failed) a per-breaker table.
///
/// # Examples
///
/// ```
/// use concat_driver::InvariantSummary;
/// use concat_report::render_invariant_table;
///
/// let summary = InvariantSummary {
///     class_name: "CSortableObList".into(),
///     seed: 42,
///     walks: 8,
///     calls: 2048,
///     checks: 4096,
///     ..InvariantSummary::default()
/// };
/// let out = render_invariant_table(&summary, &[]);
/// assert!(out.contains("CSortableObList"));
/// assert!(out.contains("no invariant breakers"));
/// ```
pub fn render_invariant_table(summary: &InvariantSummary, breakers: &[InvariantBreaker]) -> String {
    let mut out = format!(
        "Invariant campaign: {} (seed {})\n",
        summary.class_name, summary.seed
    );

    let mut totals = AsciiTable::new(vec!["Measure".into(), "Value".into()]);
    totals.numeric();
    totals.row(vec!["walks".into(), summary.walks.to_string()]);
    totals.row(vec!["calls executed".into(), summary.calls.to_string()]);
    totals.row(vec!["invariant checks".into(), summary.checks.to_string()]);
    totals.row(vec!["failures".into(), summary.failures.to_string()]);
    totals.row(vec!["corpus replays".into(), summary.replayed.to_string()]);
    totals.row(vec![
        "replays still failing".into(),
        summary.replayed_failing.to_string(),
    ]);
    if summary.original_calls > 0 {
        totals.row(vec![
            "shrink (calls)".into(),
            format!("{} -> {}", summary.original_calls, summary.shrunk_calls),
        ]);
    }
    totals.row(vec![
        "stopped early".into(),
        if summary.stopped {
            "yes".into()
        } else {
            "no".into()
        },
    ]);
    out.push_str(&totals.render());

    if breakers.is_empty() {
        out.push_str("no invariant breakers\n");
        return out;
    }

    let mut table = AsciiTable::new(vec![
        "Source".into(),
        "Failure".into(),
        "Calls".into(),
        "Shrunk".into(),
    ]);
    table.numeric();
    for b in breakers {
        let source = match (b.from_corpus, b.walk) {
            (true, _) => "corpus".to_owned(),
            (false, Some(i)) => format!("walk {i}"),
            (false, None) => "-".to_owned(),
        };
        table.row(vec![
            source,
            truncate(&failure_label(&b.failure), 48),
            b.original_calls.to_string(),
            b.shrunk.call_count().to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_driver::WalkSequence;

    fn summary() -> InvariantSummary {
        InvariantSummary {
            class_name: "Counter".into(),
            seed: 7,
            walks: 4,
            calls: 900,
            checks: 1800,
            failures: 1,
            replayed: 2,
            replayed_failing: 1,
            original_calls: 300,
            shrunk_calls: 3,
            stopped: false,
        }
    }

    fn breaker(from_corpus: bool) -> InvariantBreaker {
        InvariantBreaker {
            walk: if from_corpus { None } else { Some(2) },
            from_corpus,
            failure: FailureKind::Invariant {
                message: "n >= 0 violated".into(),
            },
            original_calls: 300,
            shrunk: WalkSequence {
                class_name: "Counter".into(),
                seed: 7,
                steps: Vec::new(),
            },
        }
    }

    #[test]
    fn summary_figures_appear() {
        let out = render_invariant_table(&summary(), &[]);
        assert!(out.contains("Counter"));
        assert!(out.contains("| walks"));
        assert!(out.contains("300 -> 3"));
        assert!(out.contains("no invariant breakers"));
    }

    #[test]
    fn breaker_rows_name_their_source() {
        let out = render_invariant_table(&summary(), &[breaker(true), breaker(false)]);
        assert!(out.contains("corpus"));
        assert!(out.contains("walk 2"));
        assert!(out.contains("invariant: n >= 0 violated"));
        assert!(!out.contains("no invariant breakers"));
    }

    #[test]
    fn long_failure_labels_truncate() {
        let mut b = breaker(false);
        b.failure = FailureKind::Panic {
            message: "x".repeat(200),
        };
        let out = render_invariant_table(&summary(), &[b]);
        assert!(out.contains('\u{2026}'));
        assert!(out.lines().all(|l| l.chars().count() < 120));
    }

    #[test]
    fn stopped_campaign_says_so() {
        let mut s = summary();
        s.stopped = true;
        assert!(render_invariant_table(&s, &[]).contains("yes"));
    }
}
