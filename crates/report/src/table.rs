//! Column-aligned ASCII tables for experiment output.

use std::fmt;

/// Horizontal alignment of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple ASCII table builder.
///
/// # Examples
///
/// ```
/// use concat_report::{Align, AsciiTable};
///
/// let mut t = AsciiTable::new(vec!["Operator".into(), "Score".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["IndVarBitNeg".into(), "85.7%".into()]);
/// let s = t.render();
/// assert!(s.contains("IndVarBitNeg"));
/// assert!(s.contains("Score"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    separators_before: Vec<usize>,
}

impl AsciiTable {
    /// Starts a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        AsciiTable {
            headers,
            rows: Vec::new(),
            aligns,
            separators_before: Vec::new(),
        }
    }

    /// Sets a column's alignment.
    ///
    /// # Panics
    ///
    /// Panics when `column` is out of range.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        self.aligns[column] = align;
        self
    }

    /// Right-aligns every column except the first (the common numeric
    /// layout).
    pub fn numeric(&mut self) -> &mut Self {
        for i in 1..self.aligns.len() {
            self.aligns[i] = Align::Right;
        }
        self
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Inserts a horizontal separator before the next appended row.
    pub fn separator(&mut self) -> &mut Self {
        self.separators_before.push(self.rows.len());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let hline = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        let render_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                let pad = widths[i] - cell.chars().count();
                out.push_str("| ");
                match aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
                out.push(' ');
            }
            out.push_str("|\n");
        };
        hline(&mut out);
        render_row(&mut out, &self.headers, &vec![Align::Left; cols]);
        hline(&mut out);
        for (i, row) in self.rows.iter().enumerate() {
            if self.separators_before.contains(&i) {
                hline(&mut out);
            }
            render_row(&mut out, row, &self.aligns);
        }
        hline(&mut out);
        out
    }
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AsciiTable {
        let mut t = AsciiTable::new(vec!["Method".into(), "Mutants".into()]);
        t.numeric();
        t.row(vec!["Sort1".into(), "280".into()]);
        t.row(vec!["FindMax".into(), "93".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let s = sample().render();
        assert!(s.contains("| Method  | Mutants |"));
        assert!(s.contains("| Sort1   |     280 |"));
        assert!(s.contains("| FindMax |      93 |"));
    }

    #[test]
    fn separators_partition_summary_rows() {
        let mut t = sample();
        t.separator();
        t.row(vec!["Total".into(), "373".into()]);
        let s = t.render();
        let hline_count = s.lines().filter(|l| l.starts_with('+')).count();
        assert_eq!(hline_count, 4); // top, after header, before total, bottom
    }

    #[test]
    fn short_rows_padded() {
        let mut t = AsciiTable::new(vec!["A".into(), "B".into(), "C".into()]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains("| x |   |   |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
    }
}
