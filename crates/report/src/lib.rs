//! # concat-report
//!
//! Tables and experiment records for the `concat-rs` reproduction of
//! *"Constructing Self-Testable Software Components"* (Martins, Toyota &
//! Yanagawa, DSN 2001).
//!
//! * [`AsciiTable`] — column-aligned text tables;
//! * [`render_operator_table`] — the paper's Table 1;
//! * [`render_score_table`] — the Table 2/3 layout over a
//!   [`concat_mutation::MutationMatrix`];
//! * [`Comparison`] — paper-vs-measured records feeding EXPERIMENTS.md;
//! * [`render_telemetry_summary`] — timing/counter tables over a
//!   `concat-obs` [`concat_obs::Summary`];
//! * [`render_harness_health`] — the fail-safe execution counters
//!   (retries, degraded sinks, quarantined mutants, budget stops);
//! * [`render_attribution`] — hot-path attribution over a recorded
//!   campaign span tree: wall-clock by phase (self vs. children),
//!   selection-fast-path savings, and the slowest mutants;
//! * [`render_fleet_table`] — per-campaign standing of an orchestrated
//!   fleet ([`FleetCampaignRow`]): phase, merge progress, priority and
//!   effective slot supervision deadlines;
//! * [`render_model_metrics_table`] — per-class TFM size figures;
//! * [`render_invariant_table`] — invariant-fuzzing campaign figures and
//!   per-breaker shrink results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod invariant_tables;
mod mutation_tables;
mod table;
mod telemetry;

pub use experiments::{Comparison, ComparisonRow};
pub use invariant_tables::render_invariant_table;
pub use mutation_tables::{
    render_amplification_table, render_mutant_catalog, render_operator_table, render_score_table,
    summarize_run,
};
pub use table::{Align, AsciiTable};
pub use telemetry::{
    render_attribution, render_fleet_table, render_harness_health, render_model_metrics_table,
    render_telemetry_summary, FleetCampaignRow,
};
