//! Renderers for the telemetry spine and model-size metrics.
//!
//! * [`render_telemetry_summary`] — timing/counter/gauge tables over a
//!   [`concat_obs::Summary`], the human-readable end of the pipeline
//!   instrumentation;
//! * [`render_model_metrics_table`] — per-subject-class TFM size figures
//!   (the paper reports its models as "16 nodes and 43 links").

use crate::table::AsciiTable;
use concat_obs::Summary;
use concat_tfm::ModelMetrics;

/// Formats a nanosecond duration with a human-scale unit (`ns`, `us`,
/// `ms`, `s`), three significant-ish digits.
fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", n / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", n / 1_000_000.0)
    } else {
        format!("{:.3}s", n / 1_000_000_000.0)
    }
}

/// Renders a telemetry [`Summary`] as up to three tables: span timings
/// (count/min/mean/p50/p95/max per kind), counter totals, and final
/// gauge values. Sections with no data are omitted; an empty summary
/// renders a single explanatory line.
pub fn render_telemetry_summary(title: &str, summary: &Summary) -> String {
    let mut out = format!("{title}\n");
    if summary.spans.is_empty() && summary.counters.is_empty() && summary.gauges.is_empty() {
        out.push_str("(no telemetry recorded)\n");
        return out;
    }
    if !summary.spans.is_empty() {
        let mut t = AsciiTable::new(vec![
            "Span".into(),
            "Count".into(),
            "Min".into(),
            "Mean".into(),
            "P50".into(),
            "P95".into(),
            "Max".into(),
        ]);
        t.numeric();
        for (kind, s) in &summary.spans {
            t.row(vec![
                (*kind).into(),
                s.count.to_string(),
                fmt_nanos(s.min_nanos),
                fmt_nanos(s.mean_nanos),
                fmt_nanos(s.p50_nanos),
                fmt_nanos(s.p95_nanos),
                fmt_nanos(s.max_nanos),
            ]);
        }
        out.push_str(&t.render());
    }
    if !summary.counters.is_empty() {
        let mut t = AsciiTable::new(vec!["Counter".into(), "Total".into()]);
        t.numeric();
        for (name, total) in &summary.counters {
            t.row(vec![(*name).into(), total.to_string()]);
        }
        out.push_str(&t.render());
    }
    if !summary.gauges.is_empty() {
        let mut t = AsciiTable::new(vec!["Gauge".into(), "Value".into()]);
        t.numeric();
        for (name, value) in &summary.gauges {
            t.row(vec![(*name).into(), value.to_string()]);
        }
        out.push_str(&t.render());
    }
    out
}

/// The hardening counters surfaced by [`render_harness_health`], with a
/// short description each. Listed explicitly (rather than filtering the
/// summary by prefix) so a healthy run still renders every row with an
/// explicit `0` — absence of evidence is made visible.
const HARNESS_COUNTERS: [(&str, &str); 10] = [
    ("harden.retry", "I/O retries after transient failures"),
    ("harden.degraded", "sinks degraded after retry exhaustion"),
    ("mutation.quarantined", "mutants excluded from the score"),
    (
        "case.deadline_exceeded",
        "test cases stopped by the watchdog",
    ),
    ("case.budget_exhausted", "test cases stopped by a budget"),
    (
        "mutation.worker_crash",
        "worker panics contained (#worker_crashes)",
    ),
    (
        "mutation.replayed",
        "journal verdicts replayed on resume (#replayed)",
    ),
    (
        "selection.skipped",
        "case executions skipped by coverage selection",
    ),
    ("amplify.rounds", "amplification rounds executed"),
    (
        "amplify.kills",
        "surviving mutants killed by amplified cases",
    ),
];

/// Renders the fail-safe execution health table: retry, degradation,
/// quarantine and budget counters from a telemetry [`Summary`]. Every
/// row is always present — a zero means the mechanism was armed and
/// never fired, which is the expected healthy reading. When the summary
/// carries a `mutation.workers` gauge (set by the parallel mutation
/// engine), a final row reports the worker-pool size of the run.
pub fn render_harness_health(title: &str, summary: &Summary) -> String {
    let mut t = AsciiTable::new(vec!["Counter".into(), "Total".into(), "Meaning".into()]);
    t.align(1, crate::table::Align::Right);
    for (name, meaning) in HARNESS_COUNTERS {
        let total = summary.counters.get(name).copied().unwrap_or(0);
        t.row(vec![name.into(), total.to_string(), meaning.into()]);
    }
    if let Some(workers) = summary.gauge("mutation.workers") {
        t.row(vec![
            "mutation.workers".into(),
            workers.to_string(),
            "mutation analysis worker pool size".into(),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// Renders one row per subject class with its TFM size and complexity
/// figures: nodes, links, births/deaths, transaction count, cyclomatic
/// complexity, and transaction path lengths.
pub fn render_model_metrics_table(rows: &[(&str, ModelMetrics)]) -> String {
    let mut t = AsciiTable::new(vec![
        "Class".into(),
        "Nodes".into(),
        "Links".into(),
        "Births".into(),
        "Deaths".into(),
        "Transactions".into(),
        "Cyclomatic".into(),
        "Paths".into(),
    ]);
    t.numeric();
    for (class, m) in rows {
        let transactions = if m.transactions_capped {
            format!(">={}", m.transactions)
        } else {
            m.transactions.to_string()
        };
        t.row(vec![
            (*class).into(),
            m.nodes.to_string(),
            m.edges.to_string(),
            m.births.to_string(),
            m.deaths.to_string(),
            transactions,
            m.cyclomatic.to_string(),
            format!("{}..{}", m.shortest_transaction, m.longest_transaction),
        ]);
    }
    format!("Model metrics per subject class\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_obs::Event;

    #[test]
    fn formats_durations_with_scaled_units() {
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_500), "1.5us");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.000s");
    }

    #[test]
    fn empty_summary_renders_placeholder() {
        let s = render_telemetry_summary("Telemetry", &Summary::default());
        assert!(s.starts_with("Telemetry\n"));
        assert!(s.contains("(no telemetry recorded)"));
    }

    #[test]
    fn summary_tables_show_spans_counters_gauges() {
        let events = vec![
            Event::SpanEnd {
                kind: "case",
                label: "TC0".into(),
                id: 1,
                nanos: 1_000,
            },
            Event::SpanEnd {
                kind: "case",
                label: "TC1".into(),
                id: 2,
                nanos: 3_000,
            },
            Event::Counter {
                name: "case.passed",
                delta: 2,
            },
            Event::Gauge {
                name: "gen.transactions",
                value: 7,
            },
        ];
        let summary = Summary::from_events(&events);
        let s = render_telemetry_summary("Telemetry summary", &summary);
        assert!(s.contains("| case"));
        assert!(s.contains("case.passed"));
        assert!(s.contains("gen.transactions"));
        assert!(s.contains("P95"));
        assert!(s.contains("1.0us"), "min duration rendered: {s}");
    }

    #[test]
    fn harness_health_lists_every_counter_with_explicit_zeros() {
        let s = render_harness_health("Harness health", &Summary::default());
        assert!(s.starts_with("Harness health\n"));
        for (name, _) in HARNESS_COUNTERS {
            assert!(s.contains(name), "{name} row missing: {s}");
        }
        assert!(s.contains(" 0 |"), "zeros rendered explicitly: {s}");
    }

    #[test]
    fn harness_health_shows_recorded_totals() {
        let events = vec![
            Event::Counter {
                name: "harden.retry",
                delta: 3,
            },
            Event::Counter {
                name: "mutation.quarantined",
                delta: 2,
            },
        ];
        let summary = Summary::from_events(&events);
        let s = render_harness_health("Harness health", &summary);
        assert!(s.contains(" 3 |"), "retry total: {s}");
        assert!(s.contains(" 2 |"), "quarantine total: {s}");
        assert!(s.contains("harden.degraded"), "zero rows kept: {s}");
        assert!(
            !s.contains("mutation.workers"),
            "no worker row without the gauge: {s}"
        );
    }

    #[test]
    fn harness_health_reports_worker_pool_size_when_gauged() {
        let events = vec![Event::Gauge {
            name: "mutation.workers",
            value: 4,
        }];
        let summary = Summary::from_events(&events);
        let s = render_harness_health("Harness health", &summary);
        assert!(s.contains("mutation.workers"), "{s}");
        assert!(s.contains(" 4 |"), "worker count rendered: {s}");
        assert!(s.contains("worker pool size"), "{s}");
    }

    #[test]
    fn model_metrics_table_lists_classes() {
        let m = ModelMetrics {
            nodes: 16,
            edges: 43,
            births: 1,
            deaths: 1,
            transactions: 25,
            transactions_capped: false,
            cyclomatic: 29,
            max_out_degree: 5,
            total_alternatives: 20,
            longest_transaction: 9,
            shortest_transaction: 3,
        };
        let capped = ModelMetrics {
            transactions_capped: true,
            ..m
        };
        let s = render_model_metrics_table(&[("CobList", m), ("Sortable", capped)]);
        assert!(s.contains("CobList"));
        assert!(s.contains(" 43 |"), "links column present: {s}");
        assert!(s.contains(">=25"), "capped counts flagged: {s}");
        assert!(s.contains("3..9"));
    }
}
