//! Renderers for the telemetry spine and model-size metrics.
//!
//! * [`render_telemetry_summary`] — timing/counter/gauge tables over a
//!   [`concat_obs::Summary`], the human-readable end of the pipeline
//!   instrumentation;
//! * [`render_harness_health`] — fail-safe counters, always rendered
//!   with explicit zeros;
//! * [`render_attribution`] — hot-path attribution over a recorded
//!   campaign event stream (phase breakdown, selection savings, hot
//!   mutants);
//! * [`render_model_metrics_table`] — per-subject-class TFM size figures
//!   (the paper reports its models as "16 nodes and 43 links").

use crate::table::AsciiTable;
use concat_obs::{Event, Histogram, Summary};
use concat_tfm::ModelMetrics;

/// Formats a nanosecond duration with a human-scale unit (`ns`, `us`,
/// `ms`, `s`), three significant-ish digits.
fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", n / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", n / 1_000_000.0)
    } else {
        format!("{:.3}s", n / 1_000_000_000.0)
    }
}

/// Renders a telemetry [`Summary`] as up to three tables: span timings
/// (count/min/mean/p50/p95/max per kind), counter totals, and final
/// gauge values. Sections with no data are omitted; an empty summary
/// renders a single explanatory line.
pub fn render_telemetry_summary(title: &str, summary: &Summary) -> String {
    let mut out = format!("{title}\n");
    if summary.spans.is_empty() && summary.counters.is_empty() && summary.gauges.is_empty() {
        out.push_str("(no telemetry recorded)\n");
        return out;
    }
    if !summary.spans.is_empty() {
        let mut t = AsciiTable::new(vec![
            "Span".into(),
            "Count".into(),
            "Min".into(),
            "Mean".into(),
            "P50".into(),
            "P95".into(),
            "Max".into(),
        ]);
        t.numeric();
        for (kind, s) in &summary.spans {
            t.row(vec![
                (*kind).into(),
                s.count.to_string(),
                fmt_nanos(s.min_nanos),
                fmt_nanos(s.mean_nanos),
                fmt_nanos(s.p50_nanos),
                fmt_nanos(s.p95_nanos),
                fmt_nanos(s.max_nanos),
            ]);
        }
        out.push_str(&t.render());
    }
    if !summary.counters.is_empty() {
        let mut t = AsciiTable::new(vec!["Counter".into(), "Total".into()]);
        t.numeric();
        for (name, total) in &summary.counters {
            t.row(vec![(*name).into(), total.to_string()]);
        }
        out.push_str(&t.render());
    }
    if !summary.gauges.is_empty() {
        let mut t = AsciiTable::new(vec!["Gauge".into(), "Value".into()]);
        t.numeric();
        for (name, value) in &summary.gauges {
            t.row(vec![(*name).into(), value.to_string()]);
        }
        out.push_str(&t.render());
    }
    out
}

/// The hardening counters surfaced by [`render_harness_health`], with a
/// short description each. Listed explicitly (rather than filtering the
/// summary by prefix) so a healthy run still renders every row with an
/// explicit `0` — absence of evidence is made visible.
const HARNESS_COUNTERS: [(&str, &str); 28] = [
    ("orchestrator.admitted", "campaigns admitted to the fleet"),
    (
        "orchestrator.rejected",
        "campaign submits refused by admission control",
    ),
    ("orchestrator.cancelled", "campaigns cancelled on request"),
    (
        "orchestrator.resumed",
        "campaigns that replayed journal verdicts on admission",
    ),
    ("orchestrator.completed", "campaigns completed by the fleet"),
    (
        "orchestrator.degraded",
        "campaigns degraded (budget/harness) without touching neighbors",
    ),
    ("orchestrator.leases", "mutant leases handed to fleet slots"),
    ("harden.retry", "I/O retries after transient failures"),
    ("harden.degraded", "sinks degraded after retry exhaustion"),
    (
        "coverage.write_failed",
        "coverage sidecar writes that failed (sidecar stale)",
    ),
    ("mutation.quarantined", "mutants excluded from the score"),
    (
        "case.deadline_exceeded",
        "test cases stopped by the watchdog",
    ),
    ("case.budget_exhausted", "test cases stopped by a budget"),
    (
        "mutation.worker_crash",
        "worker panics contained (#worker_crashes)",
    ),
    (
        "mutation.shard_kill",
        "process shards killed for missed heartbeats",
    ),
    (
        "mutation.shard_respawn",
        "process shards respawned after a death",
    ),
    (
        "mutation.restarts_exhausted",
        "campaigns that ran out of worker restarts",
    ),
    (
        "mutation.frames_dropped",
        "torn/corrupt verdict frames dropped",
    ),
    (
        "mutation.replayed",
        "journal verdicts replayed on resume (#replayed)",
    ),
    (
        "mutation.incremental_rebuild",
        "journals salvaged method-by-method after a change",
    ),
    (
        "selection.skipped",
        "case executions skipped by coverage selection",
    ),
    ("amplify.rounds", "amplification rounds executed"),
    (
        "amplify.kills",
        "surviving mutants killed by amplified cases",
    ),
    ("amplify.pruned", "stale round journals pruned"),
    (
        "corpus.seeded",
        "amplification candidates seeded from the corpus",
    ),
    ("corpus.deposited", "killer cases deposited into the corpus"),
    ("obs.dropped", "telemetry events dropped by degraded sinks"),
    (
        "obs.retries",
        "telemetry sink writes retried before success",
    ),
];

/// Renders the fail-safe execution health table: retry, degradation,
/// quarantine and budget counters from a telemetry [`Summary`]. Every
/// row is always present — a zero means the mechanism was armed and
/// never fired, which is the expected healthy reading. When the summary
/// carries a `mutation.workers` gauge (set by the parallel mutation
/// engine), a final row reports the worker-pool size of the run.
pub fn render_harness_health(title: &str, summary: &Summary) -> String {
    let mut t = AsciiTable::new(vec!["Counter".into(), "Total".into(), "Meaning".into()]);
    t.align(1, crate::table::Align::Right);
    for (name, meaning) in HARNESS_COUNTERS {
        let total = summary.counters.get(name).copied().unwrap_or(0);
        t.row(vec![name.into(), total.to_string(), meaning.into()]);
    }
    if let Some(workers) = summary.gauge("mutation.workers") {
        t.row(vec![
            "mutation.workers".into(),
            workers.to_string(),
            "mutation analysis worker pool size".into(),
        ]);
    }
    if let Some(slots) = summary.gauge("orchestrator.slots") {
        t.row(vec![
            "orchestrator.slots".into(),
            slots.to_string(),
            "campaign fleet slot-worker count".into(),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// One campaign's standing in the fleet table rendered by
/// [`render_fleet_table`]. A plain-data mirror of the orchestrator's
/// campaign status (this crate renders, it does not depend on the
/// mutation engine): identity, phase, merge progress, scheduling
/// priority, and the effective per-slot supervision deadlines the
/// campaign's process shards run under.
#[derive(Debug, Clone)]
pub struct FleetCampaignRow {
    /// Campaign id as displayed (e.g. `c3`).
    pub id: String,
    /// Campaign name (usually the subject class).
    pub name: String,
    /// Lifecycle phase (e.g. `running`, `degraded(budget-exhausted)`).
    pub phase: String,
    /// Mutants with a merged verdict.
    pub done: usize,
    /// Total mutants in the campaign.
    pub total: usize,
    /// Verdicts executed by fleet slots this service run.
    pub executed: u64,
    /// Verdicts replayed from the campaign journal on admission.
    pub replayed: u64,
    /// Scheduling priority (higher is served first).
    pub priority: u8,
    /// Startup grace before the first shard heartbeat is due (ms).
    pub startup_grace_ms: u64,
    /// Heartbeat silence tolerated before a shard is killed (ms).
    pub heartbeat_timeout_ms: u64,
    /// SIGTERM-to-SIGKILL escalation grace for shard teardown (ms).
    pub term_grace_ms: u64,
}

/// Renders the per-campaign fleet table: one row per campaign with its
/// phase, merge progress (`done/total` plus executed-vs-replayed
/// split), priority, and the effective slot supervision deadlines
/// (startup grace / heartbeat timeout / term grace) that campaign's
/// process shards run under. Rows render in the order given; an empty
/// fleet renders an explanatory line instead of a bare header.
pub fn render_fleet_table(title: &str, rows: &[FleetCampaignRow]) -> String {
    if rows.is_empty() {
        return format!("{title}\n(no campaigns)\n");
    }
    let mut t = AsciiTable::new(vec![
        "Id".into(),
        "Campaign".into(),
        "Phase".into(),
        "Done".into(),
        "Executed".into(),
        "Replayed".into(),
        "Prio".into(),
        "Startup".into(),
        "Heartbeat".into(),
        "TermGrace".into(),
    ]);
    t.align(3, crate::table::Align::Right);
    t.align(4, crate::table::Align::Right);
    t.align(5, crate::table::Align::Right);
    t.align(6, crate::table::Align::Right);
    t.align(7, crate::table::Align::Right);
    t.align(8, crate::table::Align::Right);
    t.align(9, crate::table::Align::Right);
    for row in rows {
        t.row(vec![
            row.id.clone(),
            row.name.clone(),
            row.phase.clone(),
            format!("{}/{}", row.done, row.total),
            row.executed.to_string(),
            row.replayed.to_string(),
            row.priority.to_string(),
            fmt_nanos(row.startup_grace_ms.saturating_mul(1_000_000)),
            fmt_nanos(row.heartbeat_timeout_ms.saturating_mul(1_000_000)),
            fmt_nanos(row.term_grace_ms.saturating_mul(1_000_000)),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// The campaign phases the attribution table breaks wall-clock into, in
/// display order, with a short description each. Only phases present in
/// the recorded stream are rendered.
const ATTRIBUTION_PHASES: [(&str, &str); 10] = [
    ("mutation", "whole campaign (wall)"),
    ("golden", "baseline run + coverage capture"),
    ("worker", "parallel worker lifetimes"),
    ("mutant", "mutant test execution"),
    ("probe", "oracle-validity probes"),
    ("suite", "suite dispatch"),
    ("case", "individual test cases"),
    ("merge", "verdict merge + telemetry absorb"),
    ("journal", "journal open/append I/O"),
    ("amplify.round", "amplification rounds"),
];

/// How many of the slowest mutants the attribution report lists.
const HOT_MUTANTS: usize = 5;

/// Per-label accumulation for the hot-mutant table.
#[derive(Default)]
struct HotSpot {
    runs: u64,
    total_nanos: u64,
    self_nanos: u64,
}

/// Walks the event stream once and accumulates, per `mutant` span label,
/// run count, total time and self time (total minus direct children).
/// Mirrors the open-span walk in [`Summary::from_events`], but keyed by
/// label rather than kind — the summary aggregates per kind, while the
/// hot-mutant table needs to say *which* mutant was slow.
fn hot_mutants(events: &[Event]) -> Vec<(String, HotSpot)> {
    struct Open {
        parent: Option<u64>,
        child_nanos: u64,
    }
    let mut open: std::collections::HashMap<u64, Vec<Open>> = std::collections::HashMap::new();
    let mut by_label: std::collections::HashMap<String, HotSpot> = std::collections::HashMap::new();
    for event in events {
        match event {
            Event::SpanStart { id, parent, .. } => {
                open.entry(*id).or_default().push(Open {
                    parent: *parent,
                    child_nanos: 0,
                });
            }
            Event::SpanEnd {
                kind,
                label,
                id,
                nanos,
                ..
            } => {
                let entry = open
                    .get_mut(id)
                    .and_then(|stack| stack.pop())
                    .unwrap_or(Open {
                        parent: None,
                        child_nanos: 0,
                    });
                if *kind == "mutant" {
                    let spot = by_label.entry(label.clone()).or_default();
                    spot.runs += 1;
                    spot.total_nanos = spot.total_nanos.saturating_add(*nanos);
                    spot.self_nanos = spot
                        .self_nanos
                        .saturating_add(nanos.saturating_sub(entry.child_nanos));
                }
                if let Some(parent_id) = entry.parent {
                    if let Some(parent) =
                        open.get_mut(&parent_id).and_then(|stack| stack.last_mut())
                    {
                        parent.child_nanos = parent.child_nanos.saturating_add(*nanos);
                    }
                }
            }
            _ => {}
        }
    }
    let mut spots: Vec<(String, HotSpot)> = by_label.into_iter().collect();
    // Slowest first; ties broken by label so the table is deterministic.
    spots.sort_by(|a, b| b.1.total_nanos.cmp(&a.1.total_nanos).then(a.0.cmp(&b.0)));
    spots
}

/// Formats `part` as a percentage of `whole`, one decimal place.
fn fmt_percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".into()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / whole as f64)
    }
}

/// Renders the hot-path attribution report over a recorded campaign
/// event stream: a phase table breaking campaign wall-clock down by span
/// kind (total time, *self* time excluding children, and the share of
/// wall), a selection-savings line estimating the time the coverage
/// fast path avoided (`selection.skipped` × mean case duration), and
/// the slowest mutants by total time with self-vs-child split.
///
/// Takes the raw event stream rather than a [`Summary`] because the
/// hot-mutant table needs span *labels*, which the per-kind summary
/// deliberately discards.
///
/// Phase totals sum across workers, so on a parallel campaign a phase
/// can legitimately exceed 100% of wall — the wall share then reads as
/// CPU-time concentration (e.g. 195% ≈ two workers saturated by that
/// phase), which is exactly what hot-path hunting wants.
pub fn render_attribution(title: &str, events: &[Event]) -> String {
    let summary = Summary::from_events(events);
    let mut out = format!("{title}\n");
    if summary.spans.is_empty() {
        out.push_str("(no campaign telemetry recorded)\n");
        return out;
    }
    let wall = summary
        .histogram("mutation")
        .map(Histogram::sum_nanos)
        .unwrap_or(0);

    let mut t = AsciiTable::new(vec![
        "Phase".into(),
        "Count".into(),
        "Total".into(),
        "Self".into(),
        "% wall".into(),
        "What".into(),
    ]);
    t.align(1, crate::table::Align::Right);
    t.align(2, crate::table::Align::Right);
    t.align(3, crate::table::Align::Right);
    t.align(4, crate::table::Align::Right);
    for (kind, what) in ATTRIBUTION_PHASES {
        let Some(h) = summary.histogram(kind) else {
            continue;
        };
        let self_total = summary
            .self_histogram(kind)
            .map(Histogram::sum_nanos)
            .unwrap_or(0);
        t.row(vec![
            kind.into(),
            h.count().to_string(),
            fmt_nanos(h.sum_nanos()),
            fmt_nanos(self_total),
            fmt_percent(h.sum_nanos(), wall),
            what.into(),
        ]);
    }
    out.push_str(&t.render());

    let skipped = summary.counter("selection.skipped");
    if skipped > 0 {
        let mean_case = summary.span("case").map(|s| s.mean_nanos).unwrap_or(0);
        out.push_str(&format!(
            "selection fast path: {} case executions skipped, ~{} saved ({} mean case)\n",
            skipped,
            fmt_nanos(skipped.saturating_mul(mean_case)),
            fmt_nanos(mean_case),
        ));
    }

    let spots = hot_mutants(events);
    if !spots.is_empty() {
        let mut t = AsciiTable::new(vec![
            "Hot mutant".into(),
            "Runs".into(),
            "Total".into(),
            "Self".into(),
            "% wall".into(),
        ]);
        t.align(1, crate::table::Align::Right);
        t.align(2, crate::table::Align::Right);
        t.align(3, crate::table::Align::Right);
        t.align(4, crate::table::Align::Right);
        for (label, spot) in spots.iter().take(HOT_MUTANTS) {
            t.row(vec![
                label.clone(),
                spot.runs.to_string(),
                fmt_nanos(spot.total_nanos),
                fmt_nanos(spot.self_nanos),
                fmt_percent(spot.total_nanos, wall),
            ]);
        }
        out.push_str(&t.render());
        if spots.len() > HOT_MUTANTS {
            out.push_str(&format!(
                "({} more mutants below the top {HOT_MUTANTS})\n",
                spots.len() - HOT_MUTANTS
            ));
        }
    }
    out
}

/// Renders one row per subject class with its TFM size and complexity
/// figures: nodes, links, births/deaths, transaction count, cyclomatic
/// complexity, and transaction path lengths.
pub fn render_model_metrics_table(rows: &[(&str, ModelMetrics)]) -> String {
    let mut t = AsciiTable::new(vec![
        "Class".into(),
        "Nodes".into(),
        "Links".into(),
        "Births".into(),
        "Deaths".into(),
        "Transactions".into(),
        "Cyclomatic".into(),
        "Paths".into(),
    ]);
    t.numeric();
    for (class, m) in rows {
        let transactions = if m.transactions_capped {
            format!(">={}", m.transactions)
        } else {
            m.transactions.to_string()
        };
        t.row(vec![
            (*class).into(),
            m.nodes.to_string(),
            m.edges.to_string(),
            m.births.to_string(),
            m.deaths.to_string(),
            transactions,
            m.cyclomatic.to_string(),
            format!("{}..{}", m.shortest_transaction, m.longest_transaction),
        ]);
    }
    format!("Model metrics per subject class\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_durations_with_scaled_units() {
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_500), "1.5us");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.000s");
    }

    #[test]
    fn empty_summary_renders_placeholder() {
        let s = render_telemetry_summary("Telemetry", &Summary::default());
        assert!(s.starts_with("Telemetry\n"));
        assert!(s.contains("(no telemetry recorded)"));
    }

    #[test]
    fn summary_tables_show_spans_counters_gauges() {
        let events = vec![
            Event::SpanEnd {
                kind: "case",
                label: "TC0".into(),
                id: 1,
                nanos: 1_000,
                ts_nanos: 1_000,
            },
            Event::SpanEnd {
                kind: "case",
                label: "TC1".into(),
                id: 2,
                nanos: 3_000,
                ts_nanos: 3_000,
            },
            Event::Counter {
                name: "case.passed",
                delta: 2,
            },
            Event::Gauge {
                name: "gen.transactions",
                value: 7,
            },
        ];
        let summary = Summary::from_events(&events);
        let s = render_telemetry_summary("Telemetry summary", &summary);
        assert!(s.contains("| case"));
        assert!(s.contains("case.passed"));
        assert!(s.contains("gen.transactions"));
        assert!(s.contains("P95"));
        assert!(s.contains("1.0us"), "min duration rendered: {s}");
    }

    #[test]
    fn harness_health_lists_every_counter_with_explicit_zeros() {
        let s = render_harness_health("Harness health", &Summary::default());
        assert!(s.starts_with("Harness health\n"));
        for (name, _) in HARNESS_COUNTERS {
            assert!(s.contains(name), "{name} row missing: {s}");
        }
        assert!(s.contains(" 0 |"), "zeros rendered explicitly: {s}");
    }

    #[test]
    fn harness_health_shows_recorded_totals() {
        let events = vec![
            Event::Counter {
                name: "harden.retry",
                delta: 3,
            },
            Event::Counter {
                name: "mutation.quarantined",
                delta: 2,
            },
        ];
        let summary = Summary::from_events(&events);
        let s = render_harness_health("Harness health", &summary);
        assert!(s.contains(" 3 |"), "retry total: {s}");
        assert!(s.contains(" 2 |"), "quarantine total: {s}");
        assert!(s.contains("harden.degraded"), "zero rows kept: {s}");
        assert!(
            !s.contains("mutation.workers"),
            "no worker row without the gauge: {s}"
        );
    }

    #[test]
    fn harness_health_reports_worker_pool_size_when_gauged() {
        let events = vec![Event::Gauge {
            name: "mutation.workers",
            value: 4,
        }];
        let summary = Summary::from_events(&events);
        let s = render_harness_health("Harness health", &summary);
        assert!(s.contains("mutation.workers"), "{s}");
        assert!(s.contains(" 4 |"), "worker count rendered: {s}");
        assert!(s.contains("worker pool size"), "{s}");
    }

    #[test]
    fn harness_health_reports_fleet_slot_count_when_gauged() {
        let events = vec![Event::Gauge {
            name: "orchestrator.slots",
            value: 3,
        }];
        let summary = Summary::from_events(&events);
        let s = render_harness_health("Fleet health", &summary);
        assert!(s.contains("orchestrator.slots"), "{s}");
        assert!(s.contains(" 3 |"), "slot count rendered: {s}");
        assert!(s.contains("slot-worker count"), "{s}");
    }

    #[test]
    fn fleet_table_renders_campaign_rows_with_slot_deadlines() {
        let rows = vec![
            FleetCampaignRow {
                id: "c1".into(),
                name: "Delay".into(),
                phase: "running".into(),
                done: 3,
                total: 12,
                executed: 2,
                replayed: 1,
                priority: 4,
                startup_grace_ms: 30_000,
                heartbeat_timeout_ms: 10_000,
                term_grace_ms: 500,
            },
            FleetCampaignRow {
                id: "c2".into(),
                name: "Acc".into(),
                phase: "degraded(budget-exhausted)".into(),
                done: 12,
                total: 12,
                executed: 12,
                replayed: 0,
                priority: 0,
                startup_grace_ms: 5_000,
                heartbeat_timeout_ms: 2_000,
                term_grace_ms: 250,
            },
        ];
        let s = render_fleet_table("Fleet campaigns", &rows);
        assert!(s.starts_with("Fleet campaigns\n"), "{s}");
        assert!(s.contains("| c1"), "{s}");
        assert!(s.contains("3/12"), "merge progress: {s}");
        assert!(s.contains("degraded(budget-exhausted)"), "{s}");
        assert!(s.contains("30.000s"), "startup grace rendered: {s}");
        assert!(s.contains("500.00ms"), "term grace rendered: {s}");
        let c1 = s.find("| c1").expect("c1 listed");
        let c2 = s.find("| c2").expect("c2 listed");
        assert!(c1 < c2, "rows keep given order: {s}");
    }

    #[test]
    fn empty_fleet_table_renders_placeholder() {
        let s = render_fleet_table("Fleet campaigns", &[]);
        assert!(s.contains("(no campaigns)"), "{s}");
    }

    fn start(kind: &'static str, label: &str, id: u64, parent: Option<u64>) -> Event {
        Event::SpanStart {
            kind,
            label: label.into(),
            id,
            parent,
            ts_nanos: 0,
        }
    }

    fn end(kind: &'static str, label: &str, id: u64, nanos: u64) -> Event {
        Event::SpanEnd {
            kind,
            label: label.into(),
            id,
            nanos,
            ts_nanos: nanos,
        }
    }

    /// A small campaign tree: mutation(100_000) > golden(20_000) +
    /// three mutants (m0=40_000 with a 15_000 suite child, m1=25_000,
    /// m2=5_000) + merge(1_000), plus selection-skip counters.
    fn campaign_events() -> Vec<Event> {
        vec![
            start("mutation", "Acc", 0, None),
            start("golden", "Acc", 1, Some(0)),
            end("golden", "Acc", 1, 20_000),
            start("mutant", "m0", 2, Some(0)),
            start("suite", "S", 3, Some(2)),
            end("suite", "S", 3, 15_000),
            end("mutant", "m0", 2, 40_000),
            start("mutant", "m1", 4, Some(0)),
            end("mutant", "m1", 4, 25_000),
            start("mutant", "m2", 5, Some(0)),
            end("mutant", "m2", 5, 5_000),
            start("merge", "Acc", 6, Some(0)),
            end("merge", "Acc", 6, 1_000),
            end("mutation", "Acc", 0, 100_000),
            Event::Counter {
                name: "selection.skipped",
                delta: 10,
            },
        ]
    }

    #[test]
    fn attribution_breaks_wall_clock_down_by_phase() {
        let s = render_attribution("Hot-path attribution", &campaign_events());
        assert!(s.starts_with("Hot-path attribution\n"));
        // Phase rows present for recorded kinds, absent otherwise.
        assert!(s.contains("| mutation"), "{s}");
        assert!(s.contains("| golden"), "{s}");
        assert!(s.contains("| merge"), "{s}");
        assert!(!s.contains("| probe"), "unrecorded phases omitted: {s}");
        assert!(!s.contains("| journal"), "unrecorded phases omitted: {s}");
        // Wall share: mutation is 100% of itself, golden 20%.
        assert!(s.contains("100.0%"), "{s}");
        assert!(s.contains("20.0%"), "{s}");
        // Mutant totals 70_000 = 70% of wall; self excludes the suite
        // child (70_000 - 15_000 = 55_000 self).
        assert!(s.contains("70.0%"), "{s}");
        assert!(s.contains("55.0us"), "mutant self time: {s}");
    }

    #[test]
    fn attribution_lists_hot_mutants_slowest_first() {
        let s = render_attribution("Attribution", &campaign_events());
        let m0 = s.find("| m0").expect("m0 listed");
        let m1 = s.find("| m1").expect("m1 listed");
        let m2 = s.find("| m2").expect("m2 listed");
        assert!(m0 < m1 && m1 < m2, "slowest first: {s}");
        // m0 self = 40_000 - 15_000 (suite child).
        assert!(s.contains("25.0us"), "m0 self split out: {s}");
        // 3 mutants <= top 5: no truncation notice.
        assert!(!s.contains("more mutants"), "{s}");
    }

    #[test]
    fn attribution_reports_selection_savings() {
        let s = render_attribution("Attribution", &campaign_events());
        // No case spans recorded: savings line still renders with a
        // zero mean rather than dividing by nothing.
        assert!(s.contains("10 case executions skipped"), "{s}");

        let mut events = campaign_events();
        events.push(start("case", "TC0", 7, None));
        events.push(end("case", "TC0", 7, 2_000));
        let s = render_attribution("Attribution", &events);
        assert!(s.contains("~20.0us saved (2.0us mean case)"), "{s}");
    }

    #[test]
    fn attribution_on_empty_stream_renders_placeholder() {
        let s = render_attribution("Attribution", &[]);
        assert!(s.contains("(no campaign telemetry recorded)"), "{s}");
    }

    #[test]
    fn model_metrics_table_lists_classes() {
        let m = ModelMetrics {
            nodes: 16,
            edges: 43,
            births: 1,
            deaths: 1,
            transactions: 25,
            transactions_capped: false,
            cyclomatic: 29,
            max_out_degree: 5,
            total_alternatives: 20,
            longest_transaction: 9,
            shortest_transaction: 3,
        };
        let capped = ModelMetrics {
            transactions_capped: true,
            ..m
        };
        let s = render_model_metrics_table(&[("CobList", m), ("Sortable", capped)]);
        assert!(s.contains("CobList"));
        assert!(s.contains(" 43 |"), "links column present: {s}");
        assert!(s.contains(">=25"), "capped counts flagged: {s}");
        assert!(s.contains("3..9"));
    }
}
