//! Renderers for the paper's tables.
//!
//! * [`render_operator_table`] — Table 1 (the operator catalogue);
//! * [`render_score_table`] — the Table 2 / Table 3 layout: one row per
//!   target method with per-operator mutant counts, then the `#mutants`,
//!   `#killed`, `#equivalent` and `Score` summary rows.

use crate::table::AsciiTable;
use concat_mutation::{Mutant, MutationMatrix, MutationOperator, MutationRun, RoundReport};

/// Renders Table 1: the interface mutation operators and the G/L/E/RC
/// legend.
pub fn render_operator_table() -> String {
    let mut t = AsciiTable::new(vec!["Operator".into(), "Description".into()]);
    for op in MutationOperator::ALL {
        t.row(vec![op.name().into(), op.description().into()]);
    }
    let mut out = String::from("Table 1. Interface mutation operators applied\n");
    out.push_str(&t.render());
    out.push_str(
        "Where\n\
         G(R2): set of global variables used in R2;\n\
         L(R2): set of local variables defined in R2;\n\
         E(R2): set of global variables not used in R2;\n\
         RC: set of required constants (NULL, MAXINT, MININT, 0, 1, -1);\n\
         Non-interface variables are in L(R2) U E(R2).\n",
    );
    out
}

/// Renders a Table 2/3-shaped score table for `matrix`, titled `title`.
///
/// Layout (as in the paper): one row per method with the number of
/// mutants per operator and a per-method total; then summary rows with
/// the per-operator totals, kills, equivalents and the mutation score,
/// plus a rightmost grand-total column.
pub fn render_score_table(title: &str, matrix: &MutationMatrix) -> String {
    let mut headers: Vec<String> = vec!["Method".into()];
    headers.extend(MutationOperator::ALL.iter().map(|op| op.name().to_owned()));
    headers.push("Total".into());
    let mut t = AsciiTable::new(headers);
    t.numeric();
    for method in matrix.methods() {
        let mut row = vec![method.clone()];
        for op in MutationOperator::ALL {
            row.push(matrix.cell(method, op).mutants.to_string());
        }
        row.push(matrix.row_total(method).to_string());
        t.row(row);
    }
    t.separator();
    let overall = matrix.overall();
    let summary = |label: &str, f: &dyn Fn(concat_mutation::CellStats) -> String| {
        let mut row = vec![label.to_owned()];
        for op in MutationOperator::ALL {
            row.push(f(matrix.column(op)));
        }
        row.push(f(overall));
        row
    };
    t.row(summary("#mutants", &|c| c.mutants.to_string()));
    t.row(summary("#killed", &|c| c.killed.to_string()));
    t.row(summary("#equivalent", &|c| c.equivalent.to_string()));
    t.row(summary("#quarantined", &|c| c.quarantined.to_string()));
    t.row(summary("Score", &|c| format!("{:.1}%", c.score_pct())));
    format!("{title}\n{}", t.render())
}

/// Renders a Proteum-style mutant catalogue: one row per enumerated
/// mutant with its operator, target method, use site and replacement.
/// The paper generated its mutants by hand from "clearly defined rules";
/// the catalogue makes our mechanical enumeration reviewable the same way.
pub fn render_mutant_catalog(mutants: &[Mutant]) -> String {
    let mut t = AsciiTable::new(vec![
        "Id".into(),
        "Operator".into(),
        "Method".into(),
        "Site".into(),
        "Replacement".into(),
    ]);
    t.align(0, crate::table::Align::Right);
    t.align(3, crate::table::Align::Right);
    for m in mutants {
        t.row(vec![
            m.id.to_string(),
            m.operator.name().into(),
            m.plan.method.clone(),
            m.plan.site.to_string(),
            m.plan.replacement.to_string(),
        ]);
    }
    format!(
        "Mutant catalogue ({} mutants)\n{}",
        mutants.len(),
        t.render()
    )
}

/// Renders the amplification-loop report: one row per round (candidates
/// synthesized, candidates kept, surviving mutants killed), a totals
/// row, and the before/after mutation scores. A loop that ran no rounds
/// (target already met) renders an explanatory line instead of an empty
/// table.
pub fn render_amplification_table(
    title: &str,
    rounds: &[RoundReport],
    baseline_score: f64,
    final_score: f64,
) -> String {
    let mut out = format!("{title}\n");
    if rounds.is_empty() {
        out.push_str(&format!(
            "(no amplification rounds: score target already met at {:.1}%)\n",
            baseline_score * 100.0
        ));
        return out;
    }
    let mut t = AsciiTable::new(vec![
        "Round".into(),
        "Candidates".into(),
        "Kept".into(),
        "Kills".into(),
    ]);
    t.numeric();
    for r in rounds {
        t.row(vec![
            r.round.to_string(),
            r.candidates.to_string(),
            r.kept.to_string(),
            r.kills.to_string(),
        ]);
    }
    t.separator();
    t.row(vec![
        "Total".into(),
        rounds
            .iter()
            .map(|r| r.candidates)
            .sum::<usize>()
            .to_string(),
        rounds.iter().map(|r| r.kept).sum::<usize>().to_string(),
        rounds.iter().map(|r| r.kills).sum::<usize>().to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "Mutation score: {:.1}% -> {:.1}%\n",
        baseline_score * 100.0,
        final_score * 100.0
    ));
    out
}

/// One-paragraph textual summary of a mutation run (totals, score, and
/// the share of kills owed to the assertion partial oracle — the paper's
/// "59 of the 652 mutants killed were due to assertion violation").
pub fn summarize_run(run: &MutationRun) -> String {
    let mut s = format!(
        "{} mutants: {} killed ({} by assertion violation), {} presumed equivalent, \
         {} survived",
        run.total(),
        run.killed(),
        run.killed_by_assertion(),
        run.equivalent(),
        run.survived(),
    );
    if run.quarantined() > 0 {
        s.push_str(&format!(
            ", {} quarantined (excluded from score)",
            run.quarantined()
        ));
    }
    s.push_str(&format!("; mutation score {:.1}%", run.score() * 100.0));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use concat_driver::SuiteResult;
    use concat_mutation::{
        FaultPlan, KillReason, Mutant, MutantResult, MutantStatus, QuarantineReason, Replacement,
    };

    fn run() -> MutationRun {
        let mk = |method: &str, op: MutationOperator, status: MutantStatus| MutantResult {
            mutant: Mutant {
                id: 0,
                operator: op,
                plan: FaultPlan {
                    method: method.into(),
                    site: 0,
                    replacement: Replacement::BitNeg,
                },
            },
            status,
        };
        let killed = |r| MutantStatus::Killed {
            reason: r,
            by_case: 0,
        };
        MutationRun {
            results: vec![
                mk(
                    "Sort1",
                    MutationOperator::IndVarBitNeg,
                    killed(KillReason::Crash),
                ),
                mk(
                    "Sort1",
                    MutationOperator::IndVarRepReq,
                    killed(KillReason::Assertion),
                ),
                mk(
                    "Sort1",
                    MutationOperator::IndVarRepReq,
                    MutantStatus::PresumedEquivalent,
                ),
                mk(
                    "FindMax",
                    MutationOperator::IndVarRepLoc,
                    MutantStatus::Survived,
                ),
                mk(
                    "FindMax",
                    MutationOperator::IndVarRepLoc,
                    MutantStatus::Quarantined {
                        reason: QuarantineReason::Timeout,
                    },
                ),
            ],
            golden: SuiteResult {
                class_name: "C".into(),
                cases: vec![],
                notes: vec![],
            },
        }
    }

    #[test]
    fn operator_table_lists_all_five() {
        let s = render_operator_table();
        for op in MutationOperator::ALL {
            assert!(s.contains(op.name()));
        }
        assert!(s.contains("G(R2)"));
        assert!(s.contains("Table 1"));
    }

    #[test]
    fn score_table_has_methods_and_summary_rows() {
        let run = run();
        let matrix = MutationMatrix::from_run(&run, &["Sort1", "FindMax"]);
        let s = render_score_table("Table 2. Results", &matrix);
        assert!(s.starts_with("Table 2. Results"));
        assert!(s.contains("Sort1"));
        assert!(s.contains("FindMax"));
        assert!(s.contains("#mutants"));
        assert!(s.contains("#killed"));
        assert!(s.contains("#equivalent"));
        assert!(s.contains("#quarantined"));
        assert!(s.contains("Score"));
        assert!(s.contains("IndVarRepReq"));
    }

    #[test]
    fn mutant_catalog_lists_every_mutant() {
        let mutants: Vec<Mutant> = run().results.into_iter().map(|r| r.mutant).collect();
        let s = render_mutant_catalog(&mutants);
        assert!(s.contains("Mutant catalogue (5 mutants)"));
        assert!(s.contains("IndVarBitNeg"));
        assert!(s.contains("Sort1"));
        assert!(s.contains("~(value)"));
    }

    #[test]
    fn amplification_table_lists_rounds_and_scores() {
        let rounds = vec![
            RoundReport {
                round: 1,
                candidates: 12,
                kept: 2,
                kills: 3,
            },
            RoundReport {
                round: 2,
                candidates: 9,
                kept: 1,
                kills: 1,
            },
        ];
        let s = render_amplification_table("Amplification", &rounds, 0.75, 0.9);
        assert!(s.starts_with("Amplification\n"));
        assert!(s.contains("Candidates"));
        assert!(s.contains(" 12 |"));
        assert!(s.contains("Total"));
        assert!(s.contains(" 21 |"), "candidate total: {s}");
        assert!(s.contains(" 4 |"), "kill total: {s}");
        assert!(s.contains("75.0% -> 90.0%"), "{s}");
    }

    #[test]
    fn amplification_table_explains_empty_loop() {
        let s = render_amplification_table("Amplification", &[], 1.0, 1.0);
        assert!(s.contains("no amplification rounds"), "{s}");
        assert!(s.contains("100.0%"), "{s}");
    }

    #[test]
    fn summary_mentions_assertion_kills() {
        let s = summarize_run(&run());
        assert!(s.contains("5 mutants"));
        assert!(s.contains("2 killed (1 by assertion violation)"));
        assert!(s.contains("1 presumed equivalent"));
        assert!(s.contains("1 survived"));
        assert!(s.contains("1 quarantined (excluded from score)"));
        assert!(s.contains("mutation score"));
    }

    #[test]
    fn summary_omits_quarantine_when_none() {
        let mut r = run();
        r.results.pop(); // drop the quarantined mutant
        let s = summarize_run(&r);
        assert!(!s.contains("quarantined"));
        assert!(s.contains("mutation score"));
    }
}
