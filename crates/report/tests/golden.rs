//! Golden-file test: the report surfaces consumed by CI (`cmp`-compared
//! across reruns and worker counts) must render byte-stably. The golden
//! lives at `tests/golden/report.txt`; regenerate it after an intentional
//! layout change with `BLESS=1 cargo test -p concat-report --test golden`.

use concat_driver::SuiteResult;
use concat_mutation::{
    FaultPlan, KillReason, Mutant, MutantResult, MutantStatus, MutationMatrix, MutationOperator,
    QuarantineReason, Replacement, RoundReport,
};
use concat_obs::{Event, Summary};
use concat_report::{
    render_amplification_table, render_attribution, render_harness_health, render_score_table,
    summarize_run,
};

fn fixture_run() -> concat_mutation::MutationRun {
    let mk = |id: usize, method: &str, op: MutationOperator, status: MutantStatus| MutantResult {
        mutant: Mutant {
            id,
            operator: op,
            plan: FaultPlan {
                method: method.into(),
                site: 0,
                replacement: Replacement::BitNeg,
            },
        },
        status,
    };
    concat_mutation::MutationRun {
        results: vec![
            mk(
                0,
                "Sort1",
                MutationOperator::IndVarBitNeg,
                MutantStatus::Killed {
                    reason: KillReason::Crash,
                    by_case: 3,
                },
            ),
            mk(
                1,
                "Sort1",
                MutationOperator::IndVarRepReq,
                MutantStatus::Killed {
                    reason: KillReason::Assertion,
                    by_case: 5,
                },
            ),
            mk(
                2,
                "Sort1",
                MutationOperator::IndVarRepReq,
                MutantStatus::PresumedEquivalent,
            ),
            mk(
                3,
                "FindMax",
                MutationOperator::IndVarRepLoc,
                MutantStatus::Survived,
            ),
            mk(
                4,
                "FindMax",
                MutationOperator::IndVarRepLoc,
                MutantStatus::Quarantined {
                    reason: QuarantineReason::Timeout,
                },
            ),
        ],
        golden: SuiteResult {
            class_name: "CSortableObList".into(),
            cases: vec![],
            notes: vec![],
        },
    }
}

fn fixture_summary() -> Summary {
    Summary::from_events(&[
        Event::Counter {
            name: "harden.retry",
            delta: 2,
        },
        Event::Counter {
            name: "mutation.quarantined",
            delta: 1,
        },
        Event::Counter {
            name: "selection.skipped",
            delta: 37,
        },
        Event::Counter {
            name: "amplify.rounds",
            delta: 2,
        },
        Event::Counter {
            name: "amplify.kills",
            delta: 4,
        },
        Event::Gauge {
            name: "mutation.workers",
            value: 4,
        },
    ])
}

/// A fixed campaign span tree exercising the attribution renderer:
/// campaign > golden + two mutants (one with a suite child) + merge.
fn fixture_campaign_events() -> Vec<Event> {
    let start = |kind: &'static str, label: &str, id: u64, parent: Option<u64>| Event::SpanStart {
        kind,
        label: label.into(),
        id,
        parent,
        ts_nanos: 0,
    };
    let end = |kind: &'static str, label: &str, id: u64, nanos: u64| Event::SpanEnd {
        kind,
        label: label.into(),
        id,
        nanos,
        ts_nanos: nanos,
    };
    vec![
        start("mutation", "CSortableObList", 0, None),
        start("golden", "CSortableObList", 1, Some(0)),
        end("golden", "CSortableObList", 1, 200_000),
        start("mutant", "Sort1#0", 2, Some(0)),
        start("suite", "CSortableObList", 3, Some(2)),
        end("suite", "CSortableObList", 3, 150_000),
        end("mutant", "Sort1#0", 2, 400_000),
        start("mutant", "FindMax#3", 4, Some(0)),
        end("mutant", "FindMax#3", 4, 250_000),
        start("merge", "CSortableObList", 5, Some(0)),
        end("merge", "CSortableObList", 5, 10_000),
        end("mutation", "CSortableObList", 0, 1_000_000),
        Event::Counter {
            name: "selection.skipped",
            delta: 37,
        },
        start("case", "TC0", 6, None),
        end("case", "TC0", 6, 4_000),
    ]
}

fn render_report() -> String {
    let run = fixture_run();
    let matrix = MutationMatrix::from_run(&run, &["Sort1", "FindMax"]);
    let rounds = [
        RoundReport {
            round: 1,
            candidates: 12,
            kept: 2,
            kills: 3,
        },
        RoundReport {
            round: 2,
            candidates: 9,
            kept: 1,
            kills: 1,
        },
    ];
    let mut out = render_score_table("Table 3. CSortableObList results", &matrix);
    out.push('\n');
    out.push_str(&summarize_run(&run));
    out.push('\n');
    out.push('\n');
    out.push_str(&render_amplification_table(
        "Amplification (CSortableObList)",
        &rounds,
        0.5,
        0.75,
    ));
    out.push('\n');
    out.push_str(&render_harness_health("Harness health", &fixture_summary()));
    out.push('\n');
    out.push_str(&render_attribution(
        "Hot-path attribution",
        &fixture_campaign_events(),
    ));
    out
}

#[test]
fn report_rendering_matches_golden() {
    let rendered = render_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing; run with BLESS=1 to create it");
    assert_eq!(
        rendered, golden,
        "report rendering drifted from tests/golden/report.txt; \
         rerun with BLESS=1 if the change is intentional"
    );
}

#[test]
fn report_rendering_is_deterministic() {
    assert_eq!(render_report(), render_report());
}
