//! Orchestrator integration tests: the fault-tolerant campaign service
//! under a seeded chaos schedule. Several concurrent campaigns share one
//! slot fleet while the tests kill process shards, cancel a campaign
//! mid-run, and exhaust another's mutant budget — and every surviving
//! campaign's verdicts must stay byte-identical to a solo
//! [`run_mutation_analysis_parallel`] run of the same campaign, while a
//! cancelled campaign resumes (same service, same journal) to the same
//! final run.
//!
//! Process leases re-exec *this test binary* with a libtest filter that
//! lands in [`shard_worker_entry`]; `CONCAT_TEST_ORCH_SUBJECT` (threaded
//! through [`ProcessIsolation::env`]) names the campaign to rebuild.

use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_driver::{MethodCall, SuiteStats, TestCase, TestSuite};
use concat_mutation::{
    enumerate_mutants, run_mutation_analysis_parallel, run_shard_worker, CampaignEnd,
    CampaignPhase, CampaignRequest, ClassInventory, ClonableFactory, DegradeReason, IsolationMode,
    MethodInventory, Mutant, MutantStatus, MutationConfig, MutationRun, MutationSwitch,
    Orchestrator, OrchestratorConfig, ProcessIsolation, QuarantineReason, SubmitError, VarEnv,
};
use concat_obs::{MemorySink, Telemetry};
use concat_runtime::{
    args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Env var naming the campaign a re-executed shard worker rebuilds.
const SUBJECT_ENV: &str = "CONCAT_TEST_ORCH_SUBJECT";

/// Serializes the tests that spawn shard processes, so one test's
/// external kill can never hit another test's child.
static PROCESS_TESTS: Mutex<()> = Mutex::new(());

fn process_lock() -> MutexGuard<'static, ()> {
    PROCESS_TESTS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------
// Chaos: the instrumented subject every campaign runs on
// ---------------------------------------------------------------------

/// `Chaos::Step(q)` adds `q` through two instrumented sites; site 1
/// feeds a table index, so MAXINT/MININT replacements crash (kill by
/// crash) and the invariant bounds the total (kill by assertion). The
/// per-call sleep stretches a campaign enough for cancellations and
/// shard kills to land mid-run.
struct Chaos {
    total: i64,
    limit: i64,
    millis: u64,
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Component for Chaos {
    fn class_name(&self) -> &'static str {
        "Chaos"
    }
    fn method_names(&self) -> Vec<&'static str> {
        vec!["Step", "Total", "~Chaos"]
    }
    fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
        match m {
            "Step" => {
                let q = args::int(m, a, 0)?;
                std::thread::sleep(Duration::from_millis(self.millis));
                let env = VarEnv::new()
                    .bind("delta", q)
                    .bind("total", self.total)
                    .bind("limit", self.limit);
                let s1 = self.switch.read_int("Step", 0, "delta", q, &env);
                self.total += s1;
                let idx = self.switch.read_int("Step", 1, "delta", q, &env);
                let table = [0i64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
                let bonus = table[usize::try_from(idx).expect("index")];
                self.total += q + bonus - bonus;
                Ok(Value::Int(self.total))
            }
            "Total" => Ok(Value::Int(self.total)),
            "~Chaos" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), m)),
        }
    }
}

impl BuiltInTest for Chaos {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }
    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            "Chaos",
            "",
            "total <= limit",
            self.total <= self.limit,
        )
    }
    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("total", Value::Int(self.total));
        r
    }
}

struct ChaosFactory {
    millis: u64,
    switch: MutationSwitch,
}

impl ComponentFactory for ChaosFactory {
    fn class_name(&self) -> &str {
        "Chaos"
    }
    fn construct(
        &self,
        constructor: &str,
        _args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Chaos" => Ok(Box::new(Chaos {
                total: 0,
                limit: 1_000,
                millis: self.millis,
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method("Chaos", other)),
        }
    }
}

/// The sharding seam; `millis` tunes campaign duration without touching
/// the verdicts (sleep length is behaviour-neutral).
struct ChaosShards {
    millis: u64,
}

impl ClonableFactory for ChaosShards {
    fn class_name(&self) -> &str {
        "Chaos"
    }
    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(ChaosFactory {
            millis: self.millis,
            switch: switch.clone(),
        })
    }
}

fn chaos_inventory() -> ClassInventory {
    ClassInventory::new("Chaos")
        .globals(["total", "limit"])
        .method(
            MethodInventory::new("Step")
                .locals(["delta"])
                .globals_used(["total", "limit"])
                .site(0, "delta", "first add")
                .site(1, "delta", "table index"),
        )
}

/// One campaign's suite; `variant` shifts the argument pattern so
/// distinct campaigns produce distinct (solo-verifiable) verdict sets.
fn chaos_suite(variant: i64) -> TestSuite {
    let cases = (0..10)
        .map(|id| TestCase {
            id,
            transaction_index: 0,
            node_path: vec![],
            constructor: MethodCall::generated("m1", "Chaos", vec![]),
            calls: vec![
                MethodCall::generated(
                    "m2",
                    "Step",
                    vec![Value::Int((id as i64 + variant) % 5 + 1)],
                ),
                MethodCall::generated("m3", "Total", vec![]),
                MethodCall::generated("m4", "~Chaos", vec![]),
            ],
        })
        .collect();
    TestSuite {
        class_name: "Chaos".into(),
        seed: 0,
        cases,
        stats: SuiteStats::default(),
    }
}

fn chaos_mutants() -> Vec<Mutant> {
    enumerate_mutants(&chaos_inventory(), &["Step"])
}

/// The fingerprint-relevant half of a chaos campaign config — identical
/// in the service and every shard worker; journal path and isolation
/// mode are layered on by the submitter only (both fingerprint-excluded).
fn chaos_config() -> MutationConfig {
    MutationConfig {
        silence_panics: true,
        ..MutationConfig::default()
    }
}

fn chaos_isolation() -> ProcessIsolation {
    ProcessIsolation::new(["shard_worker_entry", "--exact", "--nocapture"])
        .env(SUBJECT_ENV, "chaos")
}

/// The solo golden the orchestrated campaign must reproduce
/// byte-for-byte.
fn solo_run(variant: i64, millis: u64) -> MutationRun {
    run_mutation_analysis_parallel(
        &ChaosShards { millis },
        &chaos_suite(variant),
        &chaos_mutants(),
        &MutationConfig {
            workers: 2,
            ..chaos_config()
        },
    )
}

/// A campaign request for suite `variant` over a `millis`-paced subject.
fn chaos_request(name: &str, variant: i64, millis: u64) -> CampaignRequest {
    CampaignRequest {
        name: name.to_owned(),
        shards: Arc::new(ChaosShards { millis }),
        suite: chaos_suite(variant),
        mutants: chaos_mutants(),
        config: chaos_config(),
        priority: 0,
        mutant_budget: None,
        slot: None,
    }
}

/// Unwraps a completed outcome into its final run.
fn completed(end: CampaignEnd) -> MutationRun {
    match end {
        CampaignEnd::Completed(run) => *run,
        other => panic!("campaign did not complete: {other:?}"),
    }
}

// ---------------------------------------------------------------------
// The re-exec entry point
// ---------------------------------------------------------------------

/// The hidden worker half: a no-op under a normal `cargo test` run, but
/// when the service re-execs this binary with `CONCAT_SHARD_*` and
/// `CONCAT_TEST_ORCH_SUBJECT` set, it rebuilds the named campaign,
/// classifies its assigned mutants, streams verdict frames to stdout and
/// exits without returning to libtest.
#[test]
fn shard_worker_entry() {
    let Ok(subject) = std::env::var(SUBJECT_ENV) else {
        return;
    };
    let code = match subject.as_str() {
        "chaos" => run_shard_worker(
            &ChaosShards { millis: 1 },
            &chaos_suite(0),
            &chaos_mutants(),
            &chaos_config(),
        ),
        _ => 2,
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn concurrent_campaigns_complete_byte_identical_to_solo_runs() {
    let sink = Arc::new(MemorySink::new());
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: 4,
        lease_size: 2,
        telemetry: Telemetry::new(sink.clone()),
        ..OrchestratorConfig::default()
    });
    // Three campaigns with distinct suites and priorities, multiplexed
    // over one fleet; each must end exactly as its solo run does.
    let ids: Vec<_> = (0..3)
        .map(|variant| {
            let mut request = chaos_request(&format!("c{variant}"), variant, 1);
            request.priority = (2 - variant) as u8;
            orch.submit(request).expect("admitted")
        })
        .collect();
    for (variant, id) in ids.iter().enumerate() {
        let outcome = orch.wait(*id).expect("campaign tracked");
        let run = completed(outcome.end);
        let golden = solo_run(variant as i64, 1);
        assert_eq!(
            run.results, golden.results,
            "campaign {variant}: orchestrated verdicts must match the solo run"
        );
        assert_eq!(run.score(), golden.score());
        let status = orch.status(*id).expect("status retained");
        assert_eq!(status.phase, CampaignPhase::Completed);
        assert_eq!(status.done, status.total);
    }
    drop(orch);
    let summary = sink.summary();
    assert_eq!(summary.counters.get("orchestrator.admitted"), Some(&3));
    assert_eq!(summary.counters.get("orchestrator.completed"), Some(&3));
    assert_eq!(summary.counters.get("orchestrator.degraded"), None);
    assert_eq!(summary.gauge("orchestrator.slots"), Some(4));
}

#[test]
fn admission_control_rejects_submits_past_capacity() {
    let sink = Arc::new(MemorySink::new());
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: 1,
        capacity: 2,
        telemetry: Telemetry::new(sink.clone()),
        ..OrchestratorConfig::default()
    });
    let a = orch
        .submit(chaos_request("a", 0, 1))
        .expect("first admitted");
    let b = orch
        .submit(chaos_request("b", 1, 1))
        .expect("second admitted");
    assert_eq!(
        orch.submit(chaos_request("c", 2, 1)),
        Err(SubmitError::QueueFull { capacity: 2 }),
        "the third live campaign must be refused, not queued unboundedly"
    );
    // Rejection is typed and non-destructive: the admitted campaigns
    // still complete normally.
    for id in [a, b] {
        let outcome = orch.wait(id).expect("campaign tracked");
        assert!(matches!(outcome.end, CampaignEnd::Completed(_)));
    }
    // With a slot free again, the retry is admitted.
    let c = orch
        .submit(chaos_request("c", 2, 1))
        .expect("retry admitted");
    let run = completed(orch.wait(c).expect("campaign tracked").end);
    assert_eq!(run.results, solo_run(2, 1).results);
    drop(orch);
    let summary = sink.summary();
    assert_eq!(summary.counters.get("orchestrator.rejected"), Some(&1));
    assert_eq!(summary.counters.get("orchestrator.admitted"), Some(&3));
}

#[test]
fn cancelled_campaign_resumes_in_service_to_the_solo_run() {
    let dir = std::env::temp_dir().join("concat-orchestrator-cancel");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("cancel.journal");
    let sink = Arc::new(MemorySink::new());
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: 2,
        lease_size: 1,
        telemetry: Telemetry::new(sink.clone()),
        ..OrchestratorConfig::default()
    });
    // A slow-paced campaign (3 ms per instrumented call) so the cancel
    // lands mid-run with verdicts already journaled; a fast neighbor
    // that must not notice any of it.
    let mut slow = chaos_request("slow", 0, 3);
    slow.config.journal_path = Some(journal.clone());
    let slow_id = orch.submit(slow).expect("admitted");
    let neighbor_id = orch
        .submit(chaos_request("neighbor", 1, 1))
        .expect("admitted");

    // Wait for real progress, then cancel mid-flight.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = orch.status(slow_id).expect("status");
        if status.done >= 2 || status.phase.is_terminal() {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never progressed");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(orch.cancel(slow_id), "cancel lands on a live campaign");
    let outcome = orch.wait(slow_id).expect("campaign tracked");
    assert!(
        matches!(outcome.end, CampaignEnd::Cancelled),
        "the campaign reports cancellation, not a partial result"
    );
    let cancelled_status = orch.status(slow_id).expect("status retained");
    assert_eq!(cancelled_status.phase, CampaignPhase::Cancelled);
    assert!(
        cancelled_status.done < cancelled_status.total,
        "cancel landed mid-run ({}/{} merged)",
        cancelled_status.done,
        cancelled_status.total
    );

    // Resubmit the same campaign (same journal) to the same service: it
    // replays the verified prefix and finishes to the solo run.
    let mut resumed = chaos_request("slow", 0, 3);
    resumed.config.journal_path = Some(journal);
    let resumed_id = orch.submit(resumed).expect("resubmit admitted");
    let run = completed(orch.wait(resumed_id).expect("campaign tracked").end);
    assert_eq!(
        run.results,
        solo_run(0, 3).results,
        "the resumed campaign ends byte-identical to an undisturbed solo run"
    );
    let resumed_status = orch.status(resumed_id).expect("status retained");
    assert!(
        resumed_status.replayed >= cancelled_status.done as u64,
        "the resume replays at least the cancelled run's merged prefix \
         ({} replayed, {} were merged)",
        resumed_status.replayed,
        cancelled_status.done
    );

    // The neighbor never noticed.
    let neighbor = completed(orch.wait(neighbor_id).expect("campaign tracked").end);
    assert_eq!(neighbor.results, solo_run(1, 1).results);
    drop(orch);
    let summary = sink.summary();
    assert_eq!(summary.counters.get("orchestrator.cancelled"), Some(&1));
    assert_eq!(summary.counters.get("orchestrator.resumed"), Some(&1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exhaustion_degrades_only_its_own_campaign() {
    let sink = Arc::new(MemorySink::new());
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: 2,
        lease_size: 2,
        telemetry: Telemetry::new(sink.clone()),
        ..OrchestratorConfig::default()
    });
    let mut capped = chaos_request("capped", 0, 1);
    capped.mutant_budget = Some(3);
    let capped_id = orch.submit(capped).expect("admitted");
    let neighbor_id = orch
        .submit(chaos_request("neighbor", 2, 1))
        .expect("admitted");

    let outcome = orch.wait(capped_id).expect("campaign tracked");
    let CampaignEnd::Degraded { reason, partial } = outcome.end else {
        panic!("the capped campaign must degrade, got {:?}", outcome.end);
    };
    assert_eq!(reason, DegradeReason::BudgetExhausted);
    let golden = solo_run(0, 1);
    assert_eq!(
        partial.total(),
        golden.total(),
        "the partial run still covers every mutant slot"
    );
    // Exactly the budgeted number of verdicts were executed and merged;
    // each merged verdict matches the solo run at the same index, and
    // every unfinished mutant carries the fail-safe quarantine.
    let mut merged = 0usize;
    for (index, result) in partial.results.iter().enumerate() {
        if result.status
            == (MutantStatus::Quarantined {
                reason: QuarantineReason::WorkerCrash,
            })
        {
            continue;
        }
        merged += 1;
        assert_eq!(
            result, &golden.results[index],
            "merged verdict {index} must match the solo run"
        );
    }
    assert_eq!(merged, 3, "the budget bounds executed+merged verdicts");
    let status = orch.status(capped_id).expect("status retained");
    assert_eq!(
        status.phase,
        CampaignPhase::Degraded(DegradeReason::BudgetExhausted)
    );

    // The neighbor completes untouched.
    let neighbor = completed(orch.wait(neighbor_id).expect("campaign tracked").end);
    assert_eq!(neighbor.results, solo_run(2, 1).results);
    drop(orch);
    let summary = sink.summary();
    assert_eq!(summary.counters.get("orchestrator.degraded"), Some(&1));
    assert_eq!(summary.counters.get("orchestrator.completed"), Some(&1));
}

#[test]
fn service_shutdown_cancels_live_campaigns_cleanly() {
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: 1,
        lease_size: 1,
        ..OrchestratorConfig::default()
    });
    let id = orch
        .submit(chaos_request("doomed", 0, 3))
        .expect("admitted");
    // Shut the service down while the campaign is live; the returned
    // statuses report it cancelled, never lost.
    let statuses = orch.shutdown();
    let doomed = statuses
        .iter()
        .find(|s| s.id == id)
        .expect("shutdown reports every campaign");
    assert_eq!(doomed.phase, CampaignPhase::Cancelled);
}

/// Child pids of this process, from a Linux `/proc` scan — the live
/// shards of whatever campaign is running. Field 4 of
/// `/proc/<pid>/stat` (the second field after the parenthesized comm) is
/// the ppid.
fn child_pids() -> Vec<u32> {
    let own = std::process::id();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return Vec::new();
    };
    let mut pids = Vec::new();
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|name| name.parse::<u32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        let ppid = stat
            .rsplit_once(')')
            .map(|(_, rest)| rest)
            .and_then(|rest| rest.split_whitespace().nth(1))
            .and_then(|p| p.parse::<u32>().ok());
        if ppid == Some(own) {
            pids.push(pid);
        }
    }
    pids
}

#[test]
fn killed_process_shard_changes_no_verdict_in_any_campaign() {
    let _guard = process_lock();
    let orch = Orchestrator::start(OrchestratorConfig {
        slots: 2,
        lease_size: 4,
        ..OrchestratorConfig::default()
    });
    // One campaign on process leases (the kill target) and one thread
    // neighbor sharing the fleet.
    let mut process = chaos_request("process", 0, 1);
    process.config.isolation = IsolationMode::Process(chaos_isolation());
    let process_id = orch.submit(process).expect("admitted");
    let neighbor_id = orch
        .submit(chaos_request("neighbor", 1, 1))
        .expect("admitted");

    // SIGKILL one live shard once it exists. On a fast machine the
    // campaign may already be done — then the kill is a no-op and the
    // parity assertion still holds.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let shards = child_pids();
        if let Some(pid) = shards.first() {
            let _ = std::process::Command::new("kill")
                .args(["-9", &pid.to_string()])
                .status();
            break;
        }
        if Instant::now() >= deadline
            || orch
                .status(process_id)
                .is_some_and(|s| s.phase.is_terminal())
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let run = completed(orch.wait(process_id).expect("campaign tracked").end);
    assert_eq!(
        run.results,
        solo_run(0, 1).results,
        "an externally killed shard must not change a single verdict"
    );
    let neighbor = completed(orch.wait(neighbor_id).expect("campaign tracked").end);
    assert_eq!(neighbor.results, solo_run(1, 1).results);
}
