//! Process-isolation integration tests: verdict parity with thread
//! shards, containment of mutants no thread can contain (abort,
//! spin-without-checkpoints), survival of external shard kills, and
//! journaled resume under [`IsolationMode::Process`].
//!
//! The shard workers are *this test binary*, re-executed with a libtest
//! filter that lands in [`shard_worker_entry`]; the
//! `CONCAT_TEST_SHARD_SUBJECT` environment variable (threaded through
//! [`ProcessIsolation::env`]) tells the entry which campaign to rebuild.

use concat_bit::{BitControl, BuiltInTest, ComponentFactory, StateReport, TestableComponent};
use concat_driver::{MethodCall, SuiteStats, TestCase, TestSuite};
use concat_mutation::{
    decode_verdict, encode_verdict, enumerate_mutants, run_mutation_analysis_parallel,
    run_shard_worker, ClassInventory, ClonableFactory, IsolationMode, KillReason, MethodInventory,
    Mutant, MutantStatus, MutationConfig, MutationRun, MutationSwitch, ProcessIsolation,
    QuarantineReason, VarEnv,
};
use concat_obs::{MemorySink, Summary, Telemetry};
use concat_runtime::{
    args, encode_frame, unknown_method, AssertionViolation, Component, FrameDecoder, InvokeResult,
    Rng, TestException, Value,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Env var naming the campaign a re-executed shard worker rebuilds.
const SUBJECT_ENV: &str = "CONCAT_TEST_SHARD_SUBJECT";

/// Serializes the tests that spawn shard processes, so one test's
/// external kill can never hit another test's child.
static PROCESS_TESTS: Mutex<()> = Mutex::new(());

fn process_lock() -> MutexGuard<'static, ()> {
    PROCESS_TESTS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------
// Calc: a benign instrumented subject (parity, external-kill, journal)
// ---------------------------------------------------------------------

/// `Calc::AddTwice(q)` adds `q` twice through instrumented sites; site 1
/// feeds a table index so MAXINT/MININT replacements crash (kill by
/// crash) and the invariant bounds the total (kill by assertion). A
/// short sleep per call stretches the campaign enough for an external
/// kill to land mid-run.
struct Calc {
    total: i64,
    limit: i64,
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Component for Calc {
    fn class_name(&self) -> &'static str {
        "Calc"
    }
    fn method_names(&self) -> Vec<&'static str> {
        vec!["AddTwice", "Total", "~Calc"]
    }
    fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
        match m {
            "AddTwice" => {
                let q = args::int(m, a, 0)?;
                std::thread::sleep(Duration::from_millis(1));
                let env = VarEnv::new()
                    .bind("step", q)
                    .bind("total", self.total)
                    .bind("limit", self.limit);
                let s1 = self.switch.read_int("AddTwice", 0, "step", q, &env);
                self.total += s1;
                let idx = self.switch.read_int("AddTwice", 1, "step", q, &env);
                let table = [0i64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
                let bonus = table[usize::try_from(idx).expect("index")];
                self.total += q + bonus - bonus;
                Ok(Value::Int(self.total))
            }
            "Total" => Ok(Value::Int(self.total)),
            "~Calc" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), m)),
        }
    }
}

impl BuiltInTest for Calc {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }
    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        concat_bit::check(
            &self.ctl,
            concat_runtime::AssertionKind::Invariant,
            "Calc",
            "",
            "total <= limit",
            self.total <= self.limit,
        )
    }
    fn reporter(&self) -> StateReport {
        let mut r = StateReport::new();
        r.set("total", Value::Int(self.total));
        r
    }
}

struct CalcFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for CalcFactory {
    fn class_name(&self) -> &str {
        "Calc"
    }
    fn construct(
        &self,
        constructor: &str,
        _args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Calc" => Ok(Box::new(Calc {
                total: 0,
                limit: 1_000,
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method("Calc", other)),
        }
    }
}

struct CalcShards;

impl ClonableFactory for CalcShards {
    fn class_name(&self) -> &str {
        "Calc"
    }
    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(CalcFactory {
            switch: switch.clone(),
        })
    }
}

fn calc_inventory() -> ClassInventory {
    ClassInventory::new("Calc")
        .globals(["total", "limit"])
        .method(
            MethodInventory::new("AddTwice")
                .locals(["step"])
                .globals_used(["total", "limit"])
                .site(0, "step", "first add")
                .site(1, "step", "table index"),
        )
}

fn calc_suite() -> TestSuite {
    let cases = (0..10)
        .map(|id| TestCase {
            id,
            transaction_index: 0,
            node_path: vec![],
            constructor: MethodCall::generated("m1", "Calc", vec![]),
            calls: vec![
                MethodCall::generated("m2", "AddTwice", vec![Value::Int((id as i64 % 5) + 1)]),
                MethodCall::generated("m3", "Total", vec![]),
                MethodCall::generated("m4", "~Calc", vec![]),
            ],
        })
        .collect();
    TestSuite {
        class_name: "Calc".into(),
        seed: 0,
        cases,
        stats: SuiteStats::default(),
    }
}

fn calc_mutants() -> Vec<Mutant> {
    enumerate_mutants(&calc_inventory(), &["AddTwice"])
}

/// The fingerprint-relevant half of the Calc campaign config — identical
/// in the supervisor and every shard worker. Workers, journal path and
/// isolation mode are layered on by the supervisor only (all three are
/// excluded from the campaign fingerprint).
fn calc_config() -> MutationConfig {
    MutationConfig {
        silence_panics: true,
        ..MutationConfig::default()
    }
}

fn calc_isolation() -> ProcessIsolation {
    ProcessIsolation::new(["shard_worker_entry", "--exact", "--nocapture"]).env(SUBJECT_ENV, "calc")
}

fn run_calc(config: MutationConfig) -> MutationRun {
    run_mutation_analysis_parallel(&CalcShards, &calc_suite(), &calc_mutants(), &config)
}

// ---------------------------------------------------------------------
// Volatile: mutants that no thread can contain
// ---------------------------------------------------------------------

/// `Volatile::Op` reads one instrumented site (golden value 1). The
/// MAXINT replacement calls [`std::process::abort`] — no unwinding, no
/// checkpoint, the whole process dies. The MININT replacement spins in a
/// loop with *no* instrumented reads, so the watchdog's cancel token is
/// never observed. Thread isolation survives neither; process shards
/// quarantine exactly these two and finish the campaign.
struct Volatile {
    ctl: BitControl,
    switch: MutationSwitch,
}

impl Component for Volatile {
    fn class_name(&self) -> &'static str {
        "Volatile"
    }
    fn method_names(&self) -> Vec<&'static str> {
        vec!["Op", "~Volatile"]
    }
    fn invoke(&mut self, m: &str, _a: &[Value]) -> InvokeResult {
        match m {
            "Op" => {
                let env = VarEnv::new().bind("mode", 1);
                let mode = self.switch.read_int("Op", 0, "mode", 1, &env);
                if mode == i64::MAX {
                    std::process::abort();
                }
                if mode == i64::MIN {
                    // A hang with no cooperative checkpoint: sleeps, but
                    // never reads through the switch again.
                    loop {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                Ok(Value::Int(mode))
            }
            "~Volatile" => Ok(Value::Null),
            _ => Err(unknown_method(self.class_name(), m)),
        }
    }
}

impl BuiltInTest for Volatile {
    fn bit_control(&self) -> &BitControl {
        &self.ctl
    }
    fn invariant_test(&self) -> Result<(), AssertionViolation> {
        Ok(())
    }
    fn reporter(&self) -> StateReport {
        StateReport::new()
    }
}

struct VolatileFactory {
    switch: MutationSwitch,
}

impl ComponentFactory for VolatileFactory {
    fn class_name(&self) -> &str {
        "Volatile"
    }
    fn construct(
        &self,
        constructor: &str,
        _args: &[Value],
        ctl: BitControl,
    ) -> Result<Box<dyn TestableComponent>, TestException> {
        match constructor {
            "Volatile" => Ok(Box::new(Volatile {
                ctl,
                switch: self.switch.clone(),
            })),
            other => Err(unknown_method("Volatile", other)),
        }
    }
}

struct VolatileShards;

impl ClonableFactory for VolatileShards {
    fn class_name(&self) -> &str {
        "Volatile"
    }
    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
        Box::new(VolatileFactory {
            switch: switch.clone(),
        })
    }
}

fn volatile_inventory() -> ClassInventory {
    ClassInventory::new("Volatile").method(MethodInventory::new("Op").locals(["mode"]).site(
        0,
        "mode",
        "behaviour selector",
    ))
}

fn volatile_suite() -> TestSuite {
    TestSuite {
        class_name: "Volatile".into(),
        seed: 0,
        cases: vec![TestCase {
            id: 0,
            transaction_index: 0,
            node_path: vec![],
            constructor: MethodCall::generated("m1", "Volatile", vec![]),
            calls: vec![
                MethodCall::generated("m2", "Op", vec![]),
                MethodCall::generated("m3", "~Volatile", vec![]),
            ],
        }],
        stats: SuiteStats::default(),
    }
}

fn volatile_mutants() -> Vec<Mutant> {
    enumerate_mutants(&volatile_inventory(), &["Op"])
}

fn volatile_config() -> MutationConfig {
    MutationConfig {
        silence_panics: true,
        ..MutationConfig::default()
    }
}

/// Short heartbeat so the spinning mutant is detected quickly; a restart
/// budget comfortably above the four deaths the two nasty mutants cost
/// (each dies once, is retried, and dies again).
fn volatile_isolation() -> ProcessIsolation {
    let mut spec = ProcessIsolation::new(["shard_worker_entry", "--exact", "--nocapture"])
        .env(SUBJECT_ENV, "volatile");
    spec.heartbeat_timeout = Duration::from_millis(1200);
    spec
}

// ---------------------------------------------------------------------
// The re-exec entry point
// ---------------------------------------------------------------------

/// The hidden worker half: a no-op under a normal `cargo test` run, but
/// when the supervisor re-execs this binary with `CONCAT_SHARD_*` and
/// `CONCAT_TEST_SHARD_SUBJECT` set, it rebuilds the named campaign,
/// classifies its assigned mutants, streams verdict frames to stdout and
/// exits without returning to libtest.
#[test]
fn shard_worker_entry() {
    let Ok(subject) = std::env::var(SUBJECT_ENV) else {
        return;
    };
    let code = match subject.as_str() {
        "calc" => run_shard_worker(&CalcShards, &calc_suite(), &calc_mutants(), &calc_config()),
        "volatile" => run_shard_worker(
            &VolatileShards,
            &volatile_suite(),
            &volatile_mutants(),
            &volatile_config(),
        ),
        _ => 2,
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

/// Verdict counters (`mutant.*`) from a recorded summary; exactly the
/// totals that must agree across isolation modes and shard counts.
/// (`mutation.frames_dropped` is deliberately *not* in this set: libtest
/// banner lines in child stdout are dropped as foreign frames and their
/// count varies with the shard count.)
fn verdict_counters(summary: &Summary) -> Vec<(&'static str, u64)> {
    summary
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("mutant."))
        .map(|(name, total)| (*name, *total))
        .collect()
}

#[test]
fn process_shards_match_in_thread_verdicts_for_every_shard_count() {
    let _guard = process_lock();
    let golden = run_calc(MutationConfig {
        workers: 2,
        ..calc_config()
    });
    assert!(golden.killed() > 0, "the calc campaign kills mutants");
    let mut counter_baseline: Option<Vec<(&'static str, u64)>> = None;
    for shards in [1usize, 4] {
        let sink = Arc::new(MemorySink::new());
        let run = run_calc(MutationConfig {
            workers: shards,
            telemetry: Telemetry::new(sink.clone()),
            isolation: IsolationMode::Process(calc_isolation()),
            ..calc_config()
        });
        assert_eq!(
            run.results, golden.results,
            "shards = {shards}: process verdicts must match in-thread verdicts"
        );
        assert_eq!(run.score(), golden.score());
        let counters = verdict_counters(&sink.summary());
        match &counter_baseline {
            None => counter_baseline = Some(counters),
            Some(baseline) => assert_eq!(
                &counters, baseline,
                "shards = {shards}: verdict counter totals must match shard count 1"
            ),
        }
    }
}

#[test]
fn process_shards_contain_abort_and_unresponsive_mutants() {
    let _guard = process_lock();
    let mut baseline: Option<MutationRun> = None;
    for shards in [1usize, 4] {
        let run = run_mutation_analysis_parallel(
            &VolatileShards,
            &volatile_suite(),
            &volatile_mutants(),
            &MutationConfig {
                workers: shards,
                worker_restarts: 16,
                isolation: IsolationMode::Process(volatile_isolation()),
                ..volatile_config()
            },
        );
        assert_eq!(
            run.total(),
            volatile_mutants().len(),
            "shards = {shards}: the campaign completed despite the killers"
        );
        let status_of = |needle: &str| {
            run.results
                .iter()
                .find(|r| r.mutant.to_string().contains(needle))
                .map(|r| r.status.clone())
                .unwrap_or_else(|| panic!("no {needle} mutant enumerated"))
        };
        assert_eq!(
            status_of("MAXINT"),
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardAbort
            },
            "shards = {shards}: the aborting mutant is quarantined as a shard abort"
        );
        assert_eq!(
            status_of("MININT"),
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardUnresponsive
            },
            "shards = {shards}: the spinning mutant is quarantined as unresponsive"
        );
        let shard_quarantines = run
            .results
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    MutantStatus::Quarantined {
                        reason: QuarantineReason::ShardAbort
                            | QuarantineReason::ShardSignal
                            | QuarantineReason::ShardUnresponsive
                    }
                )
            })
            .count();
        assert_eq!(
            shard_quarantines, 2,
            "shards = {shards}: exactly the two killers are shard-quarantined"
        );
        match &baseline {
            None => baseline = Some(run),
            Some(first) => assert_eq!(
                run.results, first.results,
                "shards = {shards}: containment verdicts are shard-count-invariant"
            ),
        }
    }
}

/// Child pids of this process, from a Linux `/proc` scan — the live
/// shards of whatever campaign this test is running. Field 4 of
/// `/proc/<pid>/stat` (the second field after the parenthesized comm) is
/// the ppid.
fn child_pids() -> Vec<u32> {
    let own = std::process::id();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return Vec::new();
    };
    let mut pids = Vec::new();
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|name| name.parse::<u32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        let ppid = stat
            .rsplit_once(')')
            .map(|(_, rest)| rest)
            .and_then(|rest| rest.split_whitespace().nth(1))
            .and_then(|p| p.parse::<u32>().ok());
        if ppid == Some(own) {
            pids.push(pid);
        }
    }
    pids
}

#[test]
fn external_shard_kill_does_not_change_the_verdicts() {
    let _guard = process_lock();
    let golden = run_calc(MutationConfig {
        workers: 2,
        ..calc_config()
    });
    let killer = std::thread::spawn(|| {
        // Give the supervisor time to spawn shards, then SIGKILL one.
        // The campaign may already be done on a fast machine — then the
        // kill is a no-op and the assertion still holds.
        std::thread::sleep(Duration::from_millis(250));
        for pid in child_pids().into_iter().take(1) {
            let _ = std::process::Command::new("kill")
                .args(["-9", &pid.to_string()])
                .status();
        }
    });
    let run = run_calc(MutationConfig {
        workers: 2,
        worker_restarts: 16,
        isolation: IsolationMode::Process(calc_isolation()),
        ..calc_config()
    });
    killer.join().expect("killer thread");
    assert_eq!(
        run.results, golden.results,
        "an externally killed shard must not change a single verdict"
    );
}

#[test]
fn journaled_process_campaign_replays_on_rerun() {
    let _guard = process_lock();
    let dir = std::env::temp_dir().join("concat-mutation-isolation-journal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("verdicts.journal");
    let config = |telemetry: Telemetry| MutationConfig {
        workers: 2,
        telemetry,
        journal_path: Some(path.clone()),
        isolation: IsolationMode::Process(calc_isolation()),
        ..calc_config()
    };
    let first = run_calc(config(Telemetry::disabled()));
    let sink = Arc::new(MemorySink::new());
    let again = run_calc(config(Telemetry::new(sink.clone())));
    assert_eq!(again.results, first.results);
    let summary = sink.summary();
    assert_eq!(
        summary.counters.get("mutation.replayed").copied(),
        Some(first.total() as u64),
        "the rerun replays every verdict from the journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_campaign_replays_across_isolation_modes() {
    let _guard = process_lock();
    let dir = std::env::temp_dir().join("concat-mutation-isolation-incremental");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("verdicts.journal");
    let config = |telemetry: Telemetry, isolation: IsolationMode| MutationConfig {
        workers: 2,
        telemetry,
        journal_path: Some(path.clone()),
        incremental: true,
        isolation,
        ..calc_config()
    };
    // Cold under thread shards writes the feature-stamped journal. The
    // campaign fingerprint deliberately excludes the isolation mode (and
    // worker count): the verdicts are a property of the campaign, not of
    // how it was scheduled.
    let cold = run_calc(config(Telemetry::disabled(), IsolationMode::InThread));
    // Warm under process shards: pure replay — byte-identical verdicts,
    // no shard processes ever spawned.
    let sink = Arc::new(MemorySink::new());
    let warm = run_calc(config(
        Telemetry::new(sink.clone()),
        IsolationMode::Process(calc_isolation()),
    ));
    assert_eq!(warm.results, cold.results);
    let summary = sink.summary();
    assert_eq!(
        summary.counters.get("mutation.replayed").copied(),
        Some(cold.total() as u64),
        "the process-mode rerun replays every thread-mode verdict"
    );
    assert_eq!(
        sink.span_count("mutant"),
        0,
        "a pure replay executes no mutants and spawns no shard processes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verdicts_round_trip_through_the_frame_protocol() {
    let statuses = [
        MutantStatus::Killed {
            reason: KillReason::Crash,
            by_case: 7,
        },
        MutantStatus::Survived,
        MutantStatus::PresumedEquivalent,
        MutantStatus::Quarantined {
            reason: QuarantineReason::ShardAbort,
        },
        MutantStatus::Quarantined {
            reason: QuarantineReason::ShardUnresponsive,
        },
        MutantStatus::Quarantined {
            reason: QuarantineReason::ShardSignal,
        },
    ];
    let stream: String = statuses
        .iter()
        .enumerate()
        .map(|(id, status)| encode_frame(&encode_verdict(id, status)).expect("encodes"))
        .collect();
    // Push the stream through the decoder in arbitrary chunkings; every
    // chunking yields the same verdicts in order, with nothing dropped
    // and nothing left buffered.
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for _ in 0..50 {
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let bytes = stream.as_bytes();
        let mut at = 0;
        while at < bytes.len() {
            let step = 1 + (rng.next_u64() as usize) % 7;
            let end = (at + step).min(bytes.len());
            for payload in decoder.push(&bytes[at..end]) {
                decoded.push(decode_verdict(&payload).expect("well-formed verdict"));
            }
            at = end;
        }
        assert_eq!(decoded.len(), statuses.len());
        for (expected_id, (id, status)) in decoded.iter().enumerate() {
            assert_eq!(*id, expected_id);
            assert_eq!(status, &statuses[expected_id]);
        }
        assert_eq!(decoder.dropped(), 0);
        assert_eq!(decoder.pending_bytes(), 0);
    }
}
