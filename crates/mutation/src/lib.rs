//! # concat-mutation
//!
//! Interface mutation analysis for self-testable components.
//!
//! Part of the `concat-rs` reproduction of *"Constructing Self-Testable
//! Software Components"* (Martins, Toyota & Yanagawa, DSN 2001). The
//! paper's empirical evaluation (§4) measures the fault-revealing power of
//! generated test suites with the essential *interface mutation* operators
//! of Table 1. This crate provides the whole pipeline:
//!
//! * [`MutationOperator`] / [`ReqConst`] — the Table-1 operator catalogue;
//! * [`ClassInventory`] / [`MethodInventory`] / [`UseSite`] — where faults
//!   can be injected (the mechanical form of the paper's manual insertion
//!   rules; see DESIGN.md §2 for the substitution argument);
//! * [`enumerate_mutants`] — deterministic mutant enumeration per operator;
//! * [`MutationSwitch`] / [`FaultPlan`] — runtime activation of exactly one
//!   mutant (components read instrumented variables through the switch);
//! * [`run_mutation_analysis`] — golden run, per-mutant execution, kill
//!   classification (crash / assertion violation / output difference),
//!   equivalence probing, and the [`MutationRun`] scores;
//! * [`run_mutation_analysis_parallel`] / [`ClonableFactory`] — the same
//!   analysis sharded across a supervised worker pool, each worker owning
//!   its own factory/switch/runner/watchdog, with crash containment
//!   (a panicking worker quarantines only its in-flight mutant and is
//!   respawned under a restart budget) and a deterministic merge so every
//!   worker count yields byte-identical verdicts;
//! * [`IsolationMode`] / [`ProcessIsolation`] / [`run_shard_worker`] —
//!   optional process isolation for the sharded analysis: shards become
//!   child processes streaming verdicts over a checksummed frame
//!   protocol, so a mutant that aborts or spins without a checkpoint
//!   loses only itself (quarantined with a shard-level
//!   [`QuarantineReason`]), never the campaign;
//! * [`CampaignJournal`] / [`campaign_fingerprint`] — the durable
//!   write-ahead verdict journal behind resumable campaigns (the paper's
//!   §3.4 test-history mandate): set `MutationConfig::journal_path` and a
//!   killed campaign resumes with only unfinished mutants re-executed;
//! * [`MutationMatrix`] — the method × operator aggregation behind the
//!   paper's Tables 2 and 3.
//!
//! # Examples
//!
//! ```
//! use concat_mutation::{enumerate_mutants, ClassInventory, MethodInventory};
//!
//! let inv = ClassInventory::new("C")
//!     .globals(["count"])
//!     .method(
//!         MethodInventory::new("M")
//!             .locals(["i"])
//!             .globals_used(["count"])
//!             .site(0, "i", "index"),
//!     );
//! let mutants = enumerate_mutants(&inv, &["M"]);
//! assert!(!mutants.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod amplify;
mod analysis;
mod enumerate;
mod fault;
mod inventory;
mod journal;
mod matrix;
mod operators;
mod orchestrator;
mod shard;

pub use amplify::{
    amplify_suite, amplify_suite_parallel, AmplifyConfig, AmplifyOutcome, RoundReport,
};
pub use analysis::{
    load_campaign_coverage, run_mutation_analysis, run_mutation_analysis_parallel, IsolationMode,
    KillReason, MutantResult, MutantStatus, MutationConfig, MutationRun, ProcessIsolation,
    QuarantineReason,
};
pub use enumerate::{enumerate_mutants, expected_count, Mutant};
pub use fault::{coerce_int, ClonableFactory, FaultPlan, MutationSwitch, Replacement, VarEnv};
pub use inventory::{ClassInventory, MethodInventory, UseSite};
pub use journal::{
    campaign_fingerprint, decode_feature, decode_verdict, encode_feature, encode_verdict,
    method_fingerprints, CampaignJournal, FeatureFingerprint, IncrementalResume,
};
pub use matrix::{CellStats, MutationMatrix};
pub use operators::{MutationOperator, ReqConst};
pub use orchestrator::{
    CampaignEnd, CampaignId, CampaignOutcome, CampaignPhase, CampaignRequest, CampaignStatus,
    DegradeReason, Orchestrator, OrchestratorConfig, SlotConfig, SubmitError,
};
pub use shard::{
    run_shard_worker, shard_worker_requested, SHARD_FINGERPRINT_ENV, SHARD_INDICES_ENV,
};
