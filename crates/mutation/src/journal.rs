//! The durable verdict journal behind resumable mutation campaigns.
//!
//! The paper's test infrastructure mandates "test history creation and
//! maintenance" and "test retrieval" (§3.4): a consumer can stop testing
//! a component and pick it back up later. For mutation analysis the unit
//! of history is the per-mutant verdict, so the engine appends one
//! checksummed record to a [`concat_runtime::Journal`] as each mutant
//! finishes (write-ahead: the record is fsynced before the verdict is
//! merged). On restart the journal's verified prefix is replayed and only
//! unfinished mutants re-execute — with a deterministic engine the
//! resumed run is byte-identical to an uninterrupted one.
//!
//! Journal layout (each line checksum-framed by the runtime journal; see
//! `concat_runtime::scan_journal` for the `crc32 payload` framing):
//!
//! ```text
//! campaign <fingerprint, 8 hex digits>
//! verdict <mutant id> killed crash <case id>
//! verdict <mutant id> survived
//! verdict <mutant id> quarantined worker-crash
//! ...
//! ```
//!
//! The header fingerprint binds the journal to one campaign — subject
//! class, suite, probe suites, budget, mutant list. A journal whose
//! header does not match the resuming campaign is discarded wholesale
//! rather than replayed into the wrong run.

use crate::analysis::{KillReason, MutantStatus, MutationConfig, QuarantineReason};
use crate::enumerate::Mutant;
use concat_driver::{CoverageMatrix, TestSuite};
use concat_runtime::{crc32, recover_journal, Journal};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Computes the campaign fingerprint recorded in the journal header:
/// a CRC-32 over everything that determines the verdict vector — the
/// subject class, the killing suite, the probe suites, the BIT/budget/
/// threshold configuration, and the enumerated mutant list. The worker
/// count and the isolation mode are deliberately excluded (verdicts are
/// byte-identical for every worker count and for thread vs. process
/// shards, so a journal written by a 4-worker run resumes cleanly under
/// 1 worker — or under process isolation — and vice versa).
pub fn campaign_fingerprint(
    class_name: &str,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
) -> u32 {
    let mut text = String::new();
    let _ = writeln!(text, "class {class_name}");
    let _ = writeln!(text, "suite {} {}", suite.seed, suite.cases.len());
    for case in &suite.cases {
        let _ = writeln!(text, "case {case:?}");
    }
    for probe in &config.probe_suites {
        let _ = writeln!(text, "probe {} {}", probe.seed, probe.cases.len());
        for case in &probe.cases {
            let _ = writeln!(text, "probe-case {case:?}");
        }
    }
    let _ = writeln!(text, "bit {}", config.bit_enabled);
    let _ = writeln!(
        text,
        "crash_threshold {:?}",
        config.crash_quarantine_threshold
    );
    let _ = writeln!(text, "budget {:?}", config.budget);
    for mutant in mutants {
        let _ = writeln!(text, "mutant {mutant}");
    }
    if let Some(lineage) = config.lineage {
        let _ = writeln!(text, "lineage {lineage:08x}");
    }
    crc32(text.as_bytes())
}

fn header(fingerprint: u32) -> String {
    format!("campaign {fingerprint:08x}")
}

/// One feature's share of the campaign: the mutated method, the
/// sub-fingerprint of everything that determines *its* mutants' verdicts,
/// and the campaign-global ids of those mutants (in enumeration order).
///
/// Incremental resume compares sub-fingerprints method by method: a
/// method whose sub-fingerprint is unchanged keeps its verdicts (remapped
/// positionally onto the new ids, which shift when an earlier method's
/// mutant inventory grows or shrinks); a changed method re-executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureFingerprint {
    /// The mutated interface method.
    pub method: String,
    /// CRC-32 over the method's mutants (id-free), its covering cases
    /// from the killing and probe suites, and the verdict-relevant
    /// configuration.
    pub fingerprint: u32,
    /// Campaign-global mutant ids belonging to this method, in order.
    pub mutant_ids: Vec<usize>,
}

/// Computes the per-method sub-fingerprints of a campaign (see
/// [`FeatureFingerprint`]). A method's sub-fingerprint covers exactly
/// what can change its mutants' verdicts: the method's own mutant list
/// (rendered without campaign-global ids, which are an artifact of
/// enumeration order), the cases that statically cover the method in the
/// killing suite and in each probe suite (the coverage contract says no
/// other case can arm its mutants), and the verdict-relevant
/// configuration. Suite seeds and campaign-global structure are
/// deliberately excluded so an unrelated method's change never
/// invalidates this one.
pub fn method_fingerprints(
    class_name: &str,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
) -> Vec<FeatureFingerprint> {
    let coverage = CoverageMatrix::from_suite(suite);
    let probe_coverage: Vec<CoverageMatrix> = config
        .probe_suites
        .iter()
        .map(CoverageMatrix::from_suite)
        .collect();
    // Group mutants by method, keeping first-appearance order; each
    // entry is `(global id, id-free rendering)` — ids are an artifact of
    // enumeration order and must not influence the sub-fingerprint.
    let mut order: Vec<&str> = Vec::new();
    let mut by_method: BTreeMap<&str, Vec<(usize, String)>> = BTreeMap::new();
    for mutant in mutants {
        let method = mutant.method();
        if !by_method.contains_key(method) {
            order.push(method);
        }
        by_method
            .entry(method)
            .or_default()
            .push((mutant.id, format!("[{}] {}", mutant.operator, mutant.plan)));
    }
    order
        .into_iter()
        .map(|method| {
            let mut text = String::new();
            let _ = writeln!(text, "class {class_name}");
            let _ = writeln!(text, "method {method}");
            let covering: BTreeSet<usize> = coverage.cases_covering(method).into_iter().collect();
            for case in suite.cases.iter().filter(|c| covering.contains(&c.id)) {
                let _ = writeln!(text, "case {case:?}");
            }
            for (index, probe) in config.probe_suites.iter().enumerate() {
                let _ = writeln!(text, "probe {index}");
                let covering: BTreeSet<usize> = probe_coverage[index]
                    .cases_covering(method)
                    .into_iter()
                    .collect();
                for case in probe.cases.iter().filter(|c| covering.contains(&c.id)) {
                    let _ = writeln!(text, "probe-case {case:?}");
                }
            }
            let _ = writeln!(text, "bit {}", config.bit_enabled);
            let _ = writeln!(
                text,
                "crash_threshold {:?}",
                config.crash_quarantine_threshold
            );
            let _ = writeln!(text, "budget {:?}", config.budget);
            if let Some(lineage) = config.lineage {
                let _ = writeln!(text, "lineage {lineage:08x}");
            }
            let entries = by_method.get(method).cloned().unwrap_or_default();
            for (_, rendered) in &entries {
                let _ = writeln!(text, "mutant {rendered}");
            }
            let mutant_ids = entries.into_iter().map(|(id, _)| id).collect();
            FeatureFingerprint {
                method: method.to_owned(),
                fingerprint: crc32(text.as_bytes()),
                mutant_ids,
            }
        })
        .collect()
}

/// Encodes one feature record for the journal:
/// `feature <method> <sub-fingerprint> <mutant id…>`.
pub fn encode_feature(feature: &FeatureFingerprint) -> String {
    let mut record = format!("feature {} {:08x}", feature.method, feature.fingerprint);
    for id in &feature.mutant_ids {
        let _ = write!(record, " {id}");
    }
    record
}

/// Decodes a feature record; `None` for anything that is not one
/// (verdict records, the header, foreign payloads).
pub fn decode_feature(record: &str) -> Option<FeatureFingerprint> {
    let mut parts = record.split(' ');
    if parts.next()? != "feature" {
        return None;
    }
    let method = parts.next()?;
    if method.is_empty() {
        return None;
    }
    let fingerprint = u32::from_str_radix(parts.next()?, 16).ok()?;
    let mutant_ids = parts
        .map(|p| p.parse().ok())
        .collect::<Option<Vec<usize>>>()?;
    Some(FeatureFingerprint {
        method: method.to_owned(),
        fingerprint,
        mutant_ids,
    })
}

/// Encodes one mutant verdict as a journal record payload.
pub fn encode_verdict(id: usize, status: &MutantStatus) -> String {
    let code = match status {
        MutantStatus::Killed { reason, by_case } => {
            let reason = match reason {
                KillReason::Crash => "crash",
                KillReason::Assertion => "assertion",
                KillReason::OutputDiff => "output",
            };
            format!("killed {reason} {by_case}")
        }
        MutantStatus::Survived => "survived".to_owned(),
        MutantStatus::PresumedEquivalent => "equivalent".to_owned(),
        MutantStatus::Quarantined { reason } => {
            let reason = match reason {
                QuarantineReason::Timeout => "timeout",
                QuarantineReason::Budget => "budget",
                QuarantineReason::RepeatedCrash => "repeated-crash",
                QuarantineReason::WorkerCrash => "worker-crash",
                QuarantineReason::ShardAbort => "shard-abort",
                QuarantineReason::ShardSignal => "shard-signal",
                QuarantineReason::ShardUnresponsive => "shard-unresponsive",
            };
            format!("quarantined {reason}")
        }
    };
    format!("verdict {id} {code}")
}

/// Decodes a journal record payload back into `(mutant id, status)`;
/// `None` for anything that is not a well-formed verdict record (the
/// checksum already passed, so this only rejects foreign payloads).
pub fn decode_verdict(record: &str) -> Option<(usize, MutantStatus)> {
    let mut parts = record.split(' ');
    if parts.next()? != "verdict" {
        return None;
    }
    let id: usize = parts.next()?.parse().ok()?;
    let status = match parts.next()? {
        "killed" => {
            let reason = match parts.next()? {
                "crash" => KillReason::Crash,
                "assertion" => KillReason::Assertion,
                "output" => KillReason::OutputDiff,
                _ => return None,
            };
            let by_case: usize = parts.next()?.parse().ok()?;
            MutantStatus::Killed { reason, by_case }
        }
        "survived" => MutantStatus::Survived,
        "equivalent" => MutantStatus::PresumedEquivalent,
        "quarantined" => {
            let reason = match parts.next()? {
                "timeout" => QuarantineReason::Timeout,
                "budget" => QuarantineReason::Budget,
                "repeated-crash" => QuarantineReason::RepeatedCrash,
                "worker-crash" => QuarantineReason::WorkerCrash,
                "shard-abort" => QuarantineReason::ShardAbort,
                "shard-signal" => QuarantineReason::ShardSignal,
                "shard-unresponsive" => QuarantineReason::ShardUnresponsive,
                _ => return None,
            };
            MutantStatus::Quarantined { reason }
        }
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some((id, status))
}

/// A per-campaign verdict journal: opened (with recovery and replay) by
/// [`CampaignJournal::resume`], appended to as each mutant finishes.
#[derive(Debug)]
pub struct CampaignJournal {
    journal: Journal,
}

/// What [`CampaignJournal::resume_incremental`] recovered.
#[derive(Debug)]
pub struct IncrementalResume {
    /// The (re)opened journal, positioned for appends.
    pub journal: CampaignJournal,
    /// Verdicts recovered from the journal, in mutant-id order.
    pub replayed: Vec<(usize, MutantStatus)>,
    /// Whether a foreign journal was rebuilt by method-level salvage
    /// (as opposed to a clean header match or a fresh start).
    pub rebuilt: bool,
}

impl CampaignJournal {
    /// Opens the journal at `path`, repairing any torn/corrupt tail, and
    /// returns it together with the verdicts to replay.
    ///
    /// * Missing file, or a header from a *different* campaign: the
    ///   journal is reset to a fresh header and nothing is replayed.
    /// * Matching header: every verified verdict record for a known
    ///   mutant id is returned for replay.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from recovery, reset or the header append.
    pub fn resume(
        path: &Path,
        fingerprint: u32,
        mutant_count: usize,
    ) -> io::Result<(CampaignJournal, Vec<(usize, MutantStatus)>)> {
        let (mut journal, scan) = recover_journal(path)?;
        let expected = header(fingerprint);
        if scan.records.first() == Some(&expected) {
            let replayed = scan.records[1..]
                .iter()
                .filter_map(|record| decode_verdict(record))
                .filter(|(id, _)| *id < mutant_count)
                .collect();
            return Ok((CampaignJournal { journal }, replayed));
        }
        // Not ours (or empty): start a fresh journal for this campaign.
        journal.clear()?;
        journal.append(&expected)?;
        Ok((CampaignJournal { journal }, Vec::new()))
    }

    /// Opens the journal at `path` in *incremental* mode: like
    /// [`CampaignJournal::resume`], but a journal from a *different*
    /// campaign is salvaged method by method instead of discarded
    /// wholesale.
    ///
    /// * Matching header: every verdict replays. If the stored feature
    ///   records don't match the expected ones (e.g. the journal was
    ///   written by a non-incremental run), the journal is rewritten in
    ///   place with the features added so a future change can salvage.
    /// * Mismatched header: the old journal's `feature` records are
    ///   compared against `features`. A method whose sub-fingerprint and
    ///   mutant count are unchanged keeps its verdicts, remapped
    ///   positionally onto the new ids; everything else is dropped. The
    ///   journal is rewritten as header + features + salvaged verdicts.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from recovery or the rewrite.
    pub fn resume_incremental(
        path: &Path,
        fingerprint: u32,
        features: &[FeatureFingerprint],
        mutant_count: usize,
    ) -> io::Result<IncrementalResume> {
        let (mut journal, scan) = recover_journal(path)?;
        let expected = header(fingerprint);
        let feature_records: Vec<String> = features.iter().map(encode_feature).collect();
        if scan.records.first() == Some(&expected) {
            let stored: Vec<&String> = scan.records[1..]
                .iter()
                .filter(|r| r.starts_with("feature "))
                .collect();
            let replayed: Vec<(usize, MutantStatus)> = scan.records[1..]
                .iter()
                .filter_map(|record| decode_verdict(record))
                .filter(|(id, _)| *id < mutant_count)
                .collect();
            if stored.len() != feature_records.len()
                || stored.iter().zip(&feature_records).any(|(a, b)| *a != b)
            {
                journal.clear()?;
                let mut batch = vec![expected];
                batch.extend(feature_records);
                batch.extend(
                    replayed
                        .iter()
                        .map(|(id, status)| encode_verdict(*id, status)),
                );
                journal.append_all(&batch)?;
            }
            return Ok(IncrementalResume {
                journal: CampaignJournal { journal },
                replayed,
                rebuilt: false,
            });
        }
        // Foreign (or missing) journal: salvage unchanged features.
        let mut old_features: BTreeMap<String, (u32, Vec<usize>)> = BTreeMap::new();
        let mut old_verdicts: BTreeMap<usize, MutantStatus> = BTreeMap::new();
        let had_campaign = matches!(scan.records.first(), Some(r) if r.starts_with("campaign "));
        if had_campaign {
            for record in &scan.records[1..] {
                if let Some(feature) = decode_feature(record) {
                    old_features
                        .entry(feature.method)
                        .or_insert((feature.fingerprint, feature.mutant_ids));
                } else if let Some((id, status)) = decode_verdict(record) {
                    old_verdicts.entry(id).or_insert(status);
                }
            }
        }
        let mut salvaged: Vec<(usize, MutantStatus)> = Vec::new();
        for feature in features {
            let Some((old_fp, old_ids)) = old_features.get(&feature.method) else {
                continue;
            };
            if *old_fp != feature.fingerprint || old_ids.len() != feature.mutant_ids.len() {
                continue;
            }
            for (&new_id, old_id) in feature.mutant_ids.iter().zip(old_ids) {
                if new_id < mutant_count {
                    if let Some(status) = old_verdicts.get(old_id) {
                        salvaged.push((new_id, status.clone()));
                    }
                }
            }
        }
        salvaged.sort_by_key(|(id, _)| *id);
        journal.clear()?;
        let mut batch = vec![expected];
        batch.extend(feature_records);
        batch.extend(
            salvaged
                .iter()
                .map(|(id, status)| encode_verdict(*id, status)),
        );
        journal.append_all(&batch)?;
        let rebuilt = had_campaign && !salvaged.is_empty();
        Ok(IncrementalResume {
            journal: CampaignJournal { journal },
            replayed: salvaged,
            rebuilt,
        })
    }

    /// Durably appends one verdict; when this returns `Ok` the verdict
    /// survives a process kill.
    ///
    /// # Errors
    ///
    /// Propagates the append/fsync error.
    pub fn record(&mut self, id: usize, status: &MutantStatus) -> io::Result<()> {
        self.journal.append(&encode_verdict(id, status))
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concat-mutation-journal-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn all_statuses() -> Vec<MutantStatus> {
        vec![
            MutantStatus::Killed {
                reason: KillReason::Crash,
                by_case: 3,
            },
            MutantStatus::Killed {
                reason: KillReason::Assertion,
                by_case: 0,
            },
            MutantStatus::Killed {
                reason: KillReason::OutputDiff,
                by_case: 17,
            },
            MutantStatus::Survived,
            MutantStatus::PresumedEquivalent,
            MutantStatus::Quarantined {
                reason: QuarantineReason::Timeout,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::Budget,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::RepeatedCrash,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::WorkerCrash,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardAbort,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardSignal,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardUnresponsive,
            },
        ]
    }

    #[test]
    fn every_status_round_trips() {
        for (id, status) in all_statuses().into_iter().enumerate() {
            let record = encode_verdict(id, &status);
            assert_eq!(
                decode_verdict(&record),
                Some((id, status)),
                "record {record:?}"
            );
        }
    }

    #[test]
    fn malformed_records_are_rejected() {
        for bad in [
            "",
            "verdict",
            "verdict x survived",
            "verdict 1",
            "verdict 1 killed",
            "verdict 1 killed crash",
            "verdict 1 killed crash x",
            "verdict 1 killed slowly 2",
            "verdict 1 quarantined",
            "verdict 1 quarantined vibes",
            "verdict 1 survived extra",
            "campaign deadbeef",
        ] {
            assert_eq!(decode_verdict(bad), None, "{bad:?} must not decode");
        }
    }

    #[test]
    fn resume_replays_matching_campaign_and_resets_foreign_one() {
        let dir = scratch("resume");
        let path = dir.join("campaign.journal");
        let (mut journal, replayed) = CampaignJournal::resume(&path, 0xABCD, 10).unwrap();
        assert!(replayed.is_empty());
        journal.record(2, &MutantStatus::Survived).unwrap();
        journal
            .record(
                5,
                &MutantStatus::Quarantined {
                    reason: QuarantineReason::WorkerCrash,
                },
            )
            .unwrap();
        // Out-of-range record is ignored on replay, not an error.
        journal.record(99, &MutantStatus::Survived).unwrap();
        drop(journal);

        let (_journal, replayed) = CampaignJournal::resume(&path, 0xABCD, 10).unwrap();
        assert_eq!(
            replayed,
            vec![
                (2, MutantStatus::Survived),
                (
                    5,
                    MutantStatus::Quarantined {
                        reason: QuarantineReason::WorkerCrash
                    }
                ),
            ]
        );

        // A different fingerprint discards the stored verdicts.
        let (_journal, replayed) = CampaignJournal::resume(&path, 0x1234, 10).unwrap();
        assert!(replayed.is_empty());
        let (_journal, replayed) = CampaignJournal::resume(&path, 0x1234, 10).unwrap();
        assert!(replayed.is_empty(), "old campaign's verdicts are gone");
        fs::remove_dir_all(&dir).unwrap();
    }

    use crate::fault::{FaultPlan, Replacement};
    use crate::operators::MutationOperator;
    use concat_driver::{MethodCall, TestCase, TestSuite};

    fn mutant(id: usize, method: &str, site: u32) -> Mutant {
        Mutant {
            id,
            operator: MutationOperator::IndVarBitNeg,
            plan: FaultPlan {
                method: method.into(),
                site,
                replacement: Replacement::BitNeg,
            },
        }
    }

    fn case(id: usize, methods: &[&str]) -> TestCase {
        TestCase {
            id,
            transaction_index: id,
            node_path: Vec::new(),
            constructor: MethodCall::generated("m0", "New", Vec::new()),
            calls: methods
                .iter()
                .map(|m| MethodCall::generated("m1", *m, Vec::new()))
                .collect(),
        }
    }

    fn suite(cases: Vec<TestCase>) -> TestSuite {
        let mut suite = TestSuite {
            class_name: "Acc".into(),
            seed: 7,
            cases,
            stats: Default::default(),
        };
        suite.stats.cases = suite.cases.len();
        suite
    }

    #[test]
    fn feature_records_round_trip_and_reject_malformed() {
        let feature = FeatureFingerprint {
            method: "Scale".into(),
            fingerprint: 0xDEAD_BEEF,
            mutant_ids: vec![0, 1, 5],
        };
        let record = encode_feature(&feature);
        assert_eq!(record, "feature Scale deadbeef 0 1 5");
        assert_eq!(decode_feature(&record), Some(feature));
        for bad in [
            "",
            "feature",
            "feature Scale",
            "feature Scale nothex 1",
            "feature Scale 00ff00ff one",
            "verdict 1 survived",
        ] {
            assert_eq!(decode_feature(bad), None, "{bad:?} must not decode");
        }
    }

    #[test]
    fn method_fingerprints_ignore_id_shifts_but_track_covering_cases() {
        let config = MutationConfig::default();
        let base = suite(vec![case(0, &["Scale"]), case(1, &["Bump"])]);
        let mutants = vec![mutant(0, "Scale", 0), mutant(1, "Bump", 0)];
        let features = method_fingerprints("Acc", &base, &mutants, &config);
        assert_eq!(features.len(), 2);
        assert_eq!(features[0].method, "Scale");
        assert_eq!(features[0].mutant_ids, vec![0]);
        assert_eq!(features[1].method, "Bump");
        assert_eq!(features[1].mutant_ids, vec![1]);

        // An extra Scale mutant shifts Bump's global id, but Bump's
        // sub-fingerprint must not move.
        let grown = vec![
            mutant(0, "Scale", 0),
            mutant(1, "Scale", 1),
            mutant(2, "Bump", 0),
        ];
        let regrown = method_fingerprints("Acc", &base, &grown, &config);
        assert_eq!(regrown[1].method, "Bump");
        assert_eq!(regrown[1].mutant_ids, vec![2]);
        assert_eq!(regrown[1].fingerprint, features[1].fingerprint);
        assert_ne!(regrown[0].fingerprint, features[0].fingerprint);

        // Changing a case that covers only Bump leaves Scale alone.
        let retouched = suite(vec![case(0, &["Scale"]), case(1, &["Bump", "Bump"])]);
        let touched = method_fingerprints("Acc", &retouched, &mutants, &config);
        assert_eq!(touched[0].fingerprint, features[0].fingerprint);
        assert_ne!(touched[1].fingerprint, features[1].fingerprint);
    }

    #[test]
    fn resume_incremental_salvages_unchanged_methods_across_id_shifts() {
        let dir = scratch("incremental-salvage");
        let path = dir.join("campaign.journal");
        let config = MutationConfig::default();
        let base = suite(vec![case(0, &["Scale"]), case(1, &["Bump"])]);
        let old_mutants = vec![mutant(0, "Scale", 0), mutant(1, "Bump", 0)];
        let old_fp = campaign_fingerprint("Acc", &base, &old_mutants, &config);
        let old_features = method_fingerprints("Acc", &base, &old_mutants, &config);

        let IncrementalResume {
            mut journal,
            replayed,
            rebuilt,
        } = CampaignJournal::resume_incremental(&path, old_fp, &old_features, 2).unwrap();
        assert!(replayed.is_empty());
        assert!(!rebuilt);
        journal
            .record(
                0,
                &MutantStatus::Killed {
                    reason: KillReason::Crash,
                    by_case: 0,
                },
            )
            .unwrap();
        journal.record(1, &MutantStatus::Survived).unwrap();
        drop(journal);

        // Warm re-run of the identical campaign: pure replay, no rewrite.
        let IncrementalResume {
            replayed, rebuilt, ..
        } = CampaignJournal::resume_incremental(&path, old_fp, &old_features, 2).unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(!rebuilt);

        // Scale grows a mutant: Bump's ids shift 1 -> 2 but its verdict
        // must be salvaged; Scale's verdict is dropped.
        let new_mutants = vec![
            mutant(0, "Scale", 0),
            mutant(1, "Scale", 1),
            mutant(2, "Bump", 0),
        ];
        let new_fp = campaign_fingerprint("Acc", &base, &new_mutants, &config);
        assert_ne!(new_fp, old_fp);
        let new_features = method_fingerprints("Acc", &base, &new_mutants, &config);
        let IncrementalResume {
            replayed, rebuilt, ..
        } = CampaignJournal::resume_incremental(&path, new_fp, &new_features, 3).unwrap();
        assert_eq!(replayed, vec![(2, MutantStatus::Survived)]);
        assert!(rebuilt);

        // The rewritten journal replays cleanly as the new campaign.
        let IncrementalResume {
            replayed, rebuilt, ..
        } = CampaignJournal::resume_incremental(&path, new_fp, &new_features, 3).unwrap();
        assert_eq!(replayed, vec![(2, MutantStatus::Survived)]);
        assert!(!rebuilt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_incremental_upgrades_a_plain_journal_in_place() {
        let dir = scratch("incremental-upgrade");
        let path = dir.join("campaign.journal");
        let config = MutationConfig::default();
        let base = suite(vec![case(0, &["Scale"])]);
        let mutants = vec![mutant(0, "Scale", 0)];
        let fp = campaign_fingerprint("Acc", &base, &mutants, &config);
        let features = method_fingerprints("Acc", &base, &mutants, &config);

        // A non-incremental run writes header + verdicts, no features.
        let (mut journal, _) = CampaignJournal::resume(&path, fp, 1).unwrap();
        journal.record(0, &MutantStatus::Survived).unwrap();
        drop(journal);

        let IncrementalResume {
            replayed, rebuilt, ..
        } = CampaignJournal::resume_incremental(&path, fp, &features, 1).unwrap();
        assert_eq!(replayed, vec![(0, MutantStatus::Survived)]);
        assert!(!rebuilt);

        // The upgrade persisted: the plain resume path still replays (it
        // skips feature records), and the feature records are now stored.
        let (_journal, replayed) = CampaignJournal::resume(&path, fp, 1).unwrap();
        assert_eq!(replayed, vec![(0, MutantStatus::Survived)]);
        let (_, scan) = recover_journal(&path).unwrap();
        assert!(scan.records.iter().any(|r| r.starts_with("feature Scale ")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_incremental_discards_changed_methods() {
        let dir = scratch("incremental-discard");
        let path = dir.join("campaign.journal");
        let config = MutationConfig::default();
        let base = suite(vec![case(0, &["Scale"]), case(1, &["Bump"])]);
        let mutants = vec![mutant(0, "Scale", 0), mutant(1, "Bump", 0)];
        let fp = campaign_fingerprint("Acc", &base, &mutants, &config);
        let features = method_fingerprints("Acc", &base, &mutants, &config);
        let IncrementalResume { mut journal, .. } =
            CampaignJournal::resume_incremental(&path, fp, &features, 2).unwrap();
        journal.record(0, &MutantStatus::Survived).unwrap();
        journal.record(1, &MutantStatus::Survived).unwrap();
        drop(journal);

        // A new covering case for Bump changes its sub-fingerprint: only
        // Scale's verdict survives the resume.
        let touched = suite(vec![case(0, &["Scale"]), case(1, &["Bump", "Bump"])]);
        let new_fp = campaign_fingerprint("Acc", &touched, &mutants, &config);
        let new_features = method_fingerprints("Acc", &touched, &mutants, &config);
        let IncrementalResume {
            replayed, rebuilt, ..
        } = CampaignJournal::resume_incremental(&path, new_fp, &new_features, 2).unwrap();
        assert_eq!(replayed, vec![(0, MutantStatus::Survived)]);
        assert!(rebuilt);
        fs::remove_dir_all(&dir).unwrap();
    }
}
