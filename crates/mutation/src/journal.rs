//! The durable verdict journal behind resumable mutation campaigns.
//!
//! The paper's test infrastructure mandates "test history creation and
//! maintenance" and "test retrieval" (§3.4): a consumer can stop testing
//! a component and pick it back up later. For mutation analysis the unit
//! of history is the per-mutant verdict, so the engine appends one
//! checksummed record to a [`concat_runtime::Journal`] as each mutant
//! finishes (write-ahead: the record is fsynced before the verdict is
//! merged). On restart the journal's verified prefix is replayed and only
//! unfinished mutants re-execute — with a deterministic engine the
//! resumed run is byte-identical to an uninterrupted one.
//!
//! Journal layout (each line checksum-framed by the runtime journal; see
//! `concat_runtime::scan_journal` for the `crc32 payload` framing):
//!
//! ```text
//! campaign <fingerprint, 8 hex digits>
//! verdict <mutant id> killed crash <case id>
//! verdict <mutant id> survived
//! verdict <mutant id> quarantined worker-crash
//! ...
//! ```
//!
//! The header fingerprint binds the journal to one campaign — subject
//! class, suite, probe suites, budget, mutant list. A journal whose
//! header does not match the resuming campaign is discarded wholesale
//! rather than replayed into the wrong run.

use crate::analysis::{KillReason, MutantStatus, MutationConfig, QuarantineReason};
use crate::enumerate::Mutant;
use concat_driver::TestSuite;
use concat_runtime::{crc32, recover_journal, Journal};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Computes the campaign fingerprint recorded in the journal header:
/// a CRC-32 over everything that determines the verdict vector — the
/// subject class, the killing suite, the probe suites, the BIT/budget/
/// threshold configuration, and the enumerated mutant list. The worker
/// count and the isolation mode are deliberately excluded (verdicts are
/// byte-identical for every worker count and for thread vs. process
/// shards, so a journal written by a 4-worker run resumes cleanly under
/// 1 worker — or under process isolation — and vice versa).
pub fn campaign_fingerprint(
    class_name: &str,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
) -> u32 {
    let mut text = String::new();
    let _ = writeln!(text, "class {class_name}");
    let _ = writeln!(text, "suite {} {}", suite.seed, suite.cases.len());
    for case in &suite.cases {
        let _ = writeln!(text, "case {case:?}");
    }
    for probe in &config.probe_suites {
        let _ = writeln!(text, "probe {} {}", probe.seed, probe.cases.len());
        for case in &probe.cases {
            let _ = writeln!(text, "probe-case {case:?}");
        }
    }
    let _ = writeln!(text, "bit {}", config.bit_enabled);
    let _ = writeln!(
        text,
        "crash_threshold {:?}",
        config.crash_quarantine_threshold
    );
    let _ = writeln!(text, "budget {:?}", config.budget);
    for mutant in mutants {
        let _ = writeln!(text, "mutant {mutant}");
    }
    crc32(text.as_bytes())
}

fn header(fingerprint: u32) -> String {
    format!("campaign {fingerprint:08x}")
}

/// Encodes one mutant verdict as a journal record payload.
pub fn encode_verdict(id: usize, status: &MutantStatus) -> String {
    let code = match status {
        MutantStatus::Killed { reason, by_case } => {
            let reason = match reason {
                KillReason::Crash => "crash",
                KillReason::Assertion => "assertion",
                KillReason::OutputDiff => "output",
            };
            format!("killed {reason} {by_case}")
        }
        MutantStatus::Survived => "survived".to_owned(),
        MutantStatus::PresumedEquivalent => "equivalent".to_owned(),
        MutantStatus::Quarantined { reason } => {
            let reason = match reason {
                QuarantineReason::Timeout => "timeout",
                QuarantineReason::Budget => "budget",
                QuarantineReason::RepeatedCrash => "repeated-crash",
                QuarantineReason::WorkerCrash => "worker-crash",
                QuarantineReason::ShardAbort => "shard-abort",
                QuarantineReason::ShardSignal => "shard-signal",
                QuarantineReason::ShardUnresponsive => "shard-unresponsive",
            };
            format!("quarantined {reason}")
        }
    };
    format!("verdict {id} {code}")
}

/// Decodes a journal record payload back into `(mutant id, status)`;
/// `None` for anything that is not a well-formed verdict record (the
/// checksum already passed, so this only rejects foreign payloads).
pub fn decode_verdict(record: &str) -> Option<(usize, MutantStatus)> {
    let mut parts = record.split(' ');
    if parts.next()? != "verdict" {
        return None;
    }
    let id: usize = parts.next()?.parse().ok()?;
    let status = match parts.next()? {
        "killed" => {
            let reason = match parts.next()? {
                "crash" => KillReason::Crash,
                "assertion" => KillReason::Assertion,
                "output" => KillReason::OutputDiff,
                _ => return None,
            };
            let by_case: usize = parts.next()?.parse().ok()?;
            MutantStatus::Killed { reason, by_case }
        }
        "survived" => MutantStatus::Survived,
        "equivalent" => MutantStatus::PresumedEquivalent,
        "quarantined" => {
            let reason = match parts.next()? {
                "timeout" => QuarantineReason::Timeout,
                "budget" => QuarantineReason::Budget,
                "repeated-crash" => QuarantineReason::RepeatedCrash,
                "worker-crash" => QuarantineReason::WorkerCrash,
                "shard-abort" => QuarantineReason::ShardAbort,
                "shard-signal" => QuarantineReason::ShardSignal,
                "shard-unresponsive" => QuarantineReason::ShardUnresponsive,
                _ => return None,
            };
            MutantStatus::Quarantined { reason }
        }
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some((id, status))
}

/// A per-campaign verdict journal: opened (with recovery and replay) by
/// [`CampaignJournal::resume`], appended to as each mutant finishes.
#[derive(Debug)]
pub struct CampaignJournal {
    journal: Journal,
}

impl CampaignJournal {
    /// Opens the journal at `path`, repairing any torn/corrupt tail, and
    /// returns it together with the verdicts to replay.
    ///
    /// * Missing file, or a header from a *different* campaign: the
    ///   journal is reset to a fresh header and nothing is replayed.
    /// * Matching header: every verified verdict record for a known
    ///   mutant id is returned for replay.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from recovery, reset or the header append.
    pub fn resume(
        path: &Path,
        fingerprint: u32,
        mutant_count: usize,
    ) -> io::Result<(CampaignJournal, Vec<(usize, MutantStatus)>)> {
        let (mut journal, scan) = recover_journal(path)?;
        let expected = header(fingerprint);
        if scan.records.first() == Some(&expected) {
            let replayed = scan.records[1..]
                .iter()
                .filter_map(|record| decode_verdict(record))
                .filter(|(id, _)| *id < mutant_count)
                .collect();
            return Ok((CampaignJournal { journal }, replayed));
        }
        // Not ours (or empty): start a fresh journal for this campaign.
        journal.clear()?;
        journal.append(&expected)?;
        Ok((CampaignJournal { journal }, Vec::new()))
    }

    /// Durably appends one verdict; when this returns `Ok` the verdict
    /// survives a process kill.
    ///
    /// # Errors
    ///
    /// Propagates the append/fsync error.
    pub fn record(&mut self, id: usize, status: &MutantStatus) -> io::Result<()> {
        self.journal.append(&encode_verdict(id, status))
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("concat-mutation-journal-{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn all_statuses() -> Vec<MutantStatus> {
        vec![
            MutantStatus::Killed {
                reason: KillReason::Crash,
                by_case: 3,
            },
            MutantStatus::Killed {
                reason: KillReason::Assertion,
                by_case: 0,
            },
            MutantStatus::Killed {
                reason: KillReason::OutputDiff,
                by_case: 17,
            },
            MutantStatus::Survived,
            MutantStatus::PresumedEquivalent,
            MutantStatus::Quarantined {
                reason: QuarantineReason::Timeout,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::Budget,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::RepeatedCrash,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::WorkerCrash,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardAbort,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardSignal,
            },
            MutantStatus::Quarantined {
                reason: QuarantineReason::ShardUnresponsive,
            },
        ]
    }

    #[test]
    fn every_status_round_trips() {
        for (id, status) in all_statuses().into_iter().enumerate() {
            let record = encode_verdict(id, &status);
            assert_eq!(
                decode_verdict(&record),
                Some((id, status)),
                "record {record:?}"
            );
        }
    }

    #[test]
    fn malformed_records_are_rejected() {
        for bad in [
            "",
            "verdict",
            "verdict x survived",
            "verdict 1",
            "verdict 1 killed",
            "verdict 1 killed crash",
            "verdict 1 killed crash x",
            "verdict 1 killed slowly 2",
            "verdict 1 quarantined",
            "verdict 1 quarantined vibes",
            "verdict 1 survived extra",
            "campaign deadbeef",
        ] {
            assert_eq!(decode_verdict(bad), None, "{bad:?} must not decode");
        }
    }

    #[test]
    fn resume_replays_matching_campaign_and_resets_foreign_one() {
        let dir = scratch("resume");
        let path = dir.join("campaign.journal");
        let (mut journal, replayed) = CampaignJournal::resume(&path, 0xABCD, 10).unwrap();
        assert!(replayed.is_empty());
        journal.record(2, &MutantStatus::Survived).unwrap();
        journal
            .record(
                5,
                &MutantStatus::Quarantined {
                    reason: QuarantineReason::WorkerCrash,
                },
            )
            .unwrap();
        // Out-of-range record is ignored on replay, not an error.
        journal.record(99, &MutantStatus::Survived).unwrap();
        drop(journal);

        let (_journal, replayed) = CampaignJournal::resume(&path, 0xABCD, 10).unwrap();
        assert_eq!(
            replayed,
            vec![
                (2, MutantStatus::Survived),
                (
                    5,
                    MutantStatus::Quarantined {
                        reason: QuarantineReason::WorkerCrash
                    }
                ),
            ]
        );

        // A different fingerprint discards the stored verdicts.
        let (_journal, replayed) = CampaignJournal::resume(&path, 0x1234, 10).unwrap();
        assert!(replayed.is_empty());
        let (_journal, replayed) = CampaignJournal::resume(&path, 0x1234, 10).unwrap();
        assert!(replayed.is_empty(), "old campaign's verdicts are gone");
        fs::remove_dir_all(&dir).unwrap();
    }
}
