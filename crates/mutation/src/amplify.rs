//! Mutation-driven test amplification: the budgeted feedback loop.
//!
//! The paper's Concat prototype generates one random case per transaction
//! and stops; its own §4 evaluation shows such suites leave interface
//! mutants alive. This module closes the loop: run the analysis, collect
//! the surviving mutants, ask the caller to synthesize candidate cases
//! aimed at the surviving *features* (mutated methods), and keep exactly
//! the candidates that kill — repeating until a score target, a round
//! budget, or a wall-clock deadline is reached.
//!
//! Each round runs a **mini-analysis**: only the fresh candidates against
//! only the still-alive mutants, with its own journal
//! (`<journal>.r<round>`) so amplification rounds resume exactly like
//! plain campaigns. A mutant the mini-run kills adopts its kill verdict
//! (the killer case joins the amplified suite — candidate ids continue
//! after the base suite, so `by_case` stays meaningful); a mutant the
//! mini-run cannot distinguish — or stops for harness reasons — keeps its
//! previous classification, because the candidates that stopped it are
//! discarded with the rest of the round's misses.

use crate::analysis::{
    run_mutation_analysis, run_mutation_analysis_parallel, MutantStatus, MutationConfig,
    MutationRun,
};
use crate::enumerate::Mutant;
use crate::fault::{ClonableFactory, MutationSwitch};
use crate::journal::campaign_fingerprint;
use concat_bit::ComponentFactory;
use concat_driver::{GenerateError, TestSuite};
use concat_obs::Telemetry;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Budget and targets of one amplification loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplifyConfig {
    /// Maximum amplification rounds after the baseline analysis.
    pub max_rounds: usize,
    /// Stop once the mutation score reaches this value. The target is
    /// measured *strictly*: presumed-equivalent mutants count as
    /// surviving (unlike [`MutationRun::score`], which excludes them),
    /// because re-attacking them is exactly what amplification is for.
    pub score_target: f64,
    /// Cap on candidate cases synthesized per round.
    pub max_candidates_per_round: usize,
    /// Wall-clock budget for the whole loop; checked between rounds, so
    /// the loop never starts a round past the deadline. `None` leaves
    /// only `max_rounds` and `score_target` as stop conditions.
    pub deadline: Option<Duration>,
}

impl Default for AmplifyConfig {
    fn default() -> Self {
        AmplifyConfig {
            max_rounds: 4,
            score_target: 1.0,
            max_candidates_per_round: 96,
            deadline: None,
        }
    }
}

/// What one amplification round did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// Candidate cases synthesized and executed this round.
    pub candidates: usize,
    /// Candidates kept (each killed at least one surviving mutant).
    pub kept: usize,
    /// Previously surviving mutants this round killed.
    pub kills: usize,
}

/// The outcome of an amplification loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplifyOutcome {
    /// Final classification of every mutant over the amplified suite.
    pub run: MutationRun,
    /// The amplified suite: the base suite plus every kept candidate.
    pub suite: TestSuite,
    /// Per-round reports, in order.
    pub rounds: Vec<RoundReport>,
    /// Mutation score of the base suite before amplification.
    pub baseline_score: f64,
}

impl AmplifyOutcome {
    /// Previously surviving mutants killed across all rounds.
    pub fn total_kills(&self) -> usize {
        self.rounds.iter().map(|r| r.kills).sum()
    }

    /// Candidate cases added to the suite across all rounds.
    pub fn total_kept(&self) -> usize {
        self.rounds.iter().map(|r| r.kept).sum()
    }

    /// Mutation score after amplification.
    pub fn final_score(&self) -> f64 {
        self.run.score()
    }
}

/// Candidate source: `(existing_suite, features, round, max_candidates)`
/// → a suite of candidate cases whose ids continue after the existing
/// suite's. Typically wraps `concat_driver::synthesize_candidates`.
pub type CandidateSource<'a> =
    &'a mut dyn FnMut(&TestSuite, &[String], usize, usize) -> Result<TestSuite, GenerateError>;

/// How rounds execute their analyses: through the sequential entry point
/// (borrowing the caller's factory/switch harness) or the sharded one.
enum Exec<'a> {
    Sequential {
        factory: &'a dyn ComponentFactory,
        switch: &'a MutationSwitch,
    },
    Parallel {
        shards: &'a dyn ClonableFactory,
    },
}

impl Exec<'_> {
    fn class_name(&self) -> &str {
        match self {
            Exec::Sequential { factory, .. } => factory.class_name(),
            Exec::Parallel { shards } => shards.class_name(),
        }
    }

    fn run(&self, suite: &TestSuite, mutants: &[Mutant], config: &MutationConfig) -> MutationRun {
        match self {
            Exec::Sequential { factory, switch } => {
                run_mutation_analysis(*factory, switch, suite, mutants, config)
            }
            Exec::Parallel { shards } => {
                run_mutation_analysis_parallel(*shards, suite, mutants, config)
            }
        }
    }
}

/// Runs the amplification loop sequentially (the `workers = 1` harness;
/// `switch` must be the one `factory`'s components read through).
///
/// # Errors
///
/// Propagates [`GenerateError`] from the candidate source; analysis
/// itself is infallible (fail-safe by construction).
pub fn amplify_suite(
    factory: &dyn ComponentFactory,
    switch: &MutationSwitch,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
    amplify: &AmplifyConfig,
    synth: CandidateSource<'_>,
) -> Result<AmplifyOutcome, GenerateError> {
    amplify_with(
        Exec::Sequential { factory, switch },
        suite,
        mutants,
        config,
        amplify,
        synth,
    )
}

/// Runs the amplification loop with every round's analysis sharded
/// across `config.workers` workers. Verdicts — and therefore kept
/// candidates, rounds, and the final amplified suite — are byte-identical
/// for every worker count.
///
/// # Errors
///
/// Propagates [`GenerateError`] from the candidate source.
pub fn amplify_suite_parallel(
    shards: &dyn ClonableFactory,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
    amplify: &AmplifyConfig,
    synth: CandidateSource<'_>,
) -> Result<AmplifyOutcome, GenerateError> {
    amplify_with(
        Exec::Parallel { shards },
        suite,
        mutants,
        config,
        amplify,
        synth,
    )
}

/// The per-round analysis configuration: no probes (survival vs. kill on
/// the candidates is the only question) and a round-suffixed journal so
/// resumed campaigns replay each round independently.
/// The mini-campaign's config for one amplification round. `telemetry`
/// is the round-scoped handle, so the mini-run's `mutation` span nests
/// under the `amplify.round` span in the flight recorder. `lineage` is
/// the parent campaign's fingerprint: folded into the round journal's
/// own fingerprint, it binds `<journal>.r<round>` to this campaign, so a
/// stale round journal left at the same path by a *different* campaign
/// is discarded instead of replayed.
fn round_config(
    config: &MutationConfig,
    round: usize,
    lineage: Option<u32>,
    telemetry: &Telemetry,
) -> MutationConfig {
    MutationConfig {
        probe_suites: Vec::new(),
        silence_panics: config.silence_panics,
        bit_enabled: config.bit_enabled,
        telemetry: telemetry.clone(),
        budget: config.budget,
        crash_quarantine_threshold: config.crash_quarantine_threshold,
        workers: config.workers,
        journal_path: config
            .journal_path
            .as_ref()
            .map(|p| PathBuf::from(format!("{}.r{round}", p.display()))),
        worker_restarts: config.worker_restarts,
        coverage_selection: config.coverage_selection,
        isolation: config.isolation.clone(),
        incremental: false,
        lineage,
    }
}

/// Removes round journals (`<journal>.r<n>`, and their `.coverage`
/// sidecars) numbered beyond the rounds this run executed, so leftovers
/// from an earlier, longer amplification at the same path can't sit next
/// to — and be mistaken for — the current rounds. Best-effort: each
/// removal counts `amplify.pruned`, and I/O failures are ignored (a
/// stale journal that survives pruning is still refused at resume time
/// by its lineage-bound fingerprint).
fn prune_stale_round_journals(journal: &Path, rounds_run: usize, telemetry: &Telemetry) {
    let Some(base) = journal.file_name().and_then(|name| name.to_str()) else {
        return;
    };
    let dir = match journal.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("{base}.r");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let digits = rest.strip_suffix(".coverage").unwrap_or(rest);
        let Ok(round) = digits.parse::<usize>() else {
            continue;
        };
        if round > rounds_run && std::fs::remove_file(entry.path()).is_ok() {
            telemetry.incr("amplify.pruned");
        }
    }
}

/// Kill ratio with presumed-equivalent mutants counted as surviving;
/// only quarantined mutants leave the denominator. This is the loop's
/// stop metric — `MutationRun::score` would report 1.0 the moment every
/// survivor is merely *presumed* equivalent, which is the very state
/// amplification is meant to attack.
fn strict_score(run: &MutationRun) -> f64 {
    let mut killed = 0usize;
    let mut denom = 0usize;
    for result in &run.results {
        match result.status {
            MutantStatus::Killed { .. } => {
                killed += 1;
                denom += 1;
            }
            MutantStatus::Survived | MutantStatus::PresumedEquivalent => denom += 1,
            MutantStatus::Quarantined { .. } => {}
        }
    }
    if denom == 0 {
        1.0
    } else {
        killed as f64 / denom as f64
    }
}

fn amplify_with(
    exec: Exec<'_>,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
    amplify: &AmplifyConfig,
    synth: CandidateSource<'_>,
) -> Result<AmplifyOutcome, GenerateError> {
    let telemetry = config.telemetry.clone();
    let started = Instant::now();
    // The parent campaign's fingerprint, folded into each round journal's
    // fingerprint as lineage. Only needed when rounds are journaled.
    let lineage = config
        .journal_path
        .is_some()
        .then(|| campaign_fingerprint(exec.class_name(), suite, mutants, config));
    // Round 0: the plain campaign over the base suite (main journal).
    let mut run = exec.run(suite, mutants, config);
    let baseline_score = run.score();
    let mut amplified = suite.clone();
    let mut rounds = Vec::new();

    for round in 1..=amplify.max_rounds {
        if strict_score(&run) >= amplify.score_target {
            break;
        }
        if let Some(deadline) = amplify.deadline {
            if started.elapsed() >= deadline {
                break;
            }
        }
        // The loop's targets: mutants no case distinguished so far.
        let alive: Vec<usize> = run
            .results
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(
                    r.status,
                    MutantStatus::Survived | MutantStatus::PresumedEquivalent
                )
            })
            .map(|(index, _)| index)
            .collect();
        if alive.is_empty() {
            break;
        }
        let features: Vec<String> = alive
            .iter()
            .map(|&index| run.results[index].mutant.method().to_owned())
            .collect::<BTreeSet<String>>()
            .into_iter()
            .collect();
        // The round span covers synthesis and the mini-campaign; it drops
        // at the end of the iteration (or any break out of it).
        let round_span = telemetry.span_with("amplify.round", || format!("r{round}"));
        let candidates = synth(
            &amplified,
            &features,
            round,
            amplify.max_candidates_per_round,
        )?;
        telemetry.incr("amplify.rounds");
        if candidates.cases.is_empty() {
            rounds.push(RoundReport {
                round,
                candidates: 0,
                kept: 0,
                kills: 0,
            });
            break;
        }
        // Mini-analysis: fresh candidates × still-alive mutants only.
        let alive_mutants: Vec<Mutant> = alive
            .iter()
            .map(|&index| run.results[index].mutant.clone())
            .collect();
        let mini = exec.run(
            &candidates,
            &alive_mutants,
            &round_config(config, round, lineage, &telemetry.at(round_span.id())),
        );

        let mut killer_ids: BTreeSet<usize> = BTreeSet::new();
        let mut kills = 0usize;
        for (&slot, result) in alive.iter().zip(mini.results.iter()) {
            if let MutantStatus::Killed { by_case, .. } = result.status {
                killer_ids.insert(by_case);
                kills += 1;
                run.results[slot].status = result.status.clone();
            }
        }
        let kept_ids: Vec<usize> = killer_ids.into_iter().collect();
        let kept = candidates.filtered(&kept_ids);
        if kills > 0 {
            telemetry.incr_by("amplify.kills", kills as u64);
        }
        rounds.push(RoundReport {
            round,
            candidates: candidates.len(),
            kept: kept.len(),
            kills,
        });
        if kills == 0 {
            break;
        }
        // Graft the killers into the amplified suite, and their golden
        // results into the run's baseline, keeping case order by id so
        // the outcome matches a from-scratch run over the final suite.
        run.golden.cases.extend(
            mini.golden
                .cases
                .iter()
                .filter(|c| kept_ids.contains(&c.case_id))
                .cloned(),
        );
        amplified.cases.extend(kept.cases);
        amplified.stats.cases = amplified.cases.len();
    }

    // A previous, longer amplification at this journal path may have left
    // `.r<n>` journals beyond the rounds just run; drop them so they can't
    // be mistaken for live state.
    if let Some(path) = &config.journal_path {
        prune_stale_round_journals(path, rounds.len(), &telemetry);
    }

    Ok(AmplifyOutcome {
        run,
        suite: amplified,
        rounds,
        baseline_score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_mutants;
    use crate::fault::VarEnv;
    use crate::inventory::{ClassInventory, MethodInventory};
    use concat_bit::{BitControl, BuiltInTest, StateReport, TestableComponent};
    use concat_driver::{ArgOrigin, MethodCall, SuiteStats, TestCase};
    use concat_runtime::{
        args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
    };

    /// Accumulator whose `Add(q)` reads its addend through the mutation
    /// switch: mutants replace `step` with constants or `total`.
    struct Acc {
        total: i64,
        ctl: BitControl,
        switch: MutationSwitch,
    }

    impl Component for Acc {
        fn class_name(&self) -> &'static str {
            "Acc"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["Add", "Total", "~Acc"]
        }
        fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
            match m {
                "Add" => {
                    let q = args::int(m, a, 0)?;
                    let env = VarEnv::new().bind("step", q).bind("total", self.total);
                    let step = self.switch.read_int("Add", 0, "step", q, &env);
                    self.total += step;
                    Ok(Value::Int(self.total))
                }
                "Total" => Ok(Value::Int(self.total)),
                "~Acc" => Ok(Value::Null),
                other => Err(unknown_method("Acc", other)),
            }
        }
    }

    impl BuiltInTest for Acc {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            Ok(())
        }
        fn reporter(&self) -> StateReport {
            let mut r = StateReport::new();
            r.set("total", Value::Int(self.total));
            r
        }
    }

    struct AccFactory {
        switch: MutationSwitch,
    }

    impl ComponentFactory for AccFactory {
        fn class_name(&self) -> &str {
            "Acc"
        }
        fn construct(
            &self,
            constructor: &str,
            _a: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Acc" => Ok(Box::new(Acc {
                    total: 0,
                    ctl,
                    switch: self.switch.clone(),
                })),
                other => Err(unknown_method("Acc", other)),
            }
        }
    }

    fn inventory() -> ClassInventory {
        ClassInventory::new("Acc").globals(["total"]).method(
            MethodInventory::new("Add")
                .locals(["step"])
                .globals_used(["total"])
                .site(0, "step", "addend"),
        )
    }

    fn call(method: &str, args: Vec<Value>) -> MethodCall {
        let origins = vec![ArgOrigin::Generated; args.len()];
        MethodCall {
            method_id: format!("m_{method}"),
            method: method.to_owned(),
            args,
            origins,
        }
    }

    fn case(id: usize, q: i64) -> TestCase {
        TestCase {
            id,
            transaction_index: 0,
            node_path: vec!["n1".into(), "n2".into(), "n3".into()],
            constructor: call("Acc", vec![]),
            calls: vec![
                call("Add", vec![Value::Int(q)]),
                call("Total", vec![]),
                call("~Acc", vec![]),
            ],
        }
    }

    fn suite_of(cases: Vec<TestCase>) -> TestSuite {
        let stats = SuiteStats {
            transactions: 1,
            cases: cases.len(),
            truncated: false,
            manual_args: 0,
        };
        TestSuite {
            class_name: "Acc".into(),
            seed: 0,
            cases,
            stats,
        }
    }

    /// `Add(0)` cannot distinguish `step → 0` or `step → total`; a
    /// candidate `Add(5)` kills both. The loop must find and keep it.
    #[test]
    fn amplification_kills_previous_survivors() {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["Add"]);
        let base = suite_of(vec![case(0, 0)]);
        let mut synth = |existing: &TestSuite, features: &[String], _round: usize, _max: usize| {
            assert_eq!(features, ["Add".to_owned()]);
            let next_id = existing.cases.iter().map(|c| c.id + 1).max().unwrap_or(0);
            Ok(suite_of(vec![case(next_id, 5)]))
        };
        // A probe that distinguishes the survivors proves they are not
        // equivalent, so the baseline reports them as `Survived`.
        let config = MutationConfig {
            probe_suites: vec![suite_of(vec![case(0, 7)])],
            ..MutationConfig::default()
        };
        let outcome = amplify_suite(
            &factory,
            &switch,
            &base,
            &mutants,
            &config,
            &AmplifyConfig::default(),
            &mut synth,
        )
        .unwrap();
        assert!(outcome.baseline_score < 1.0, "Add(0) must leave survivors");
        assert!(outcome.total_kills() >= 2, "{:?}", outcome.rounds);
        assert!(outcome.final_score() > outcome.baseline_score);
        assert_eq!(outcome.suite.len(), base.len() + outcome.total_kept());
        // The kept candidate's golden result was grafted in as well.
        assert_eq!(outcome.run.golden.cases.len(), outcome.suite.len());
        // Kill verdicts reference cases that exist in the amplified suite.
        for result in &outcome.run.results {
            if let MutantStatus::Killed { by_case, .. } = result.status {
                assert!(outcome.suite.iter().any(|c| c.id == by_case));
            }
        }
    }

    #[test]
    fn amplification_is_deterministic() {
        let run_once = || {
            let switch = MutationSwitch::new();
            let factory = AccFactory {
                switch: switch.clone(),
            };
            let mutants = enumerate_mutants(&inventory(), &["Add"]);
            let base = suite_of(vec![case(0, 0)]);
            let mut synth =
                |existing: &TestSuite, _features: &[String], round: usize, _max: usize| {
                    let next_id = existing.cases.iter().map(|c| c.id + 1).max().unwrap_or(0);
                    Ok(suite_of(vec![case(next_id, round as i64 * 3)]))
                };
            amplify_suite(
                &factory,
                &switch,
                &base,
                &mutants,
                &MutationConfig::default(),
                &AmplifyConfig::default(),
                &mut synth,
            )
            .unwrap()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn zero_kill_round_stops_the_loop() {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["Add"]);
        let base = suite_of(vec![case(0, 0)]);
        // Candidates as weak as the base suite: nothing new dies.
        let mut synth = |existing: &TestSuite, _f: &[String], _round: usize, _max: usize| {
            let next_id = existing.cases.iter().map(|c| c.id + 1).max().unwrap_or(0);
            Ok(suite_of(vec![case(next_id, 0)]))
        };
        let outcome = amplify_suite(
            &factory,
            &switch,
            &base,
            &mutants,
            &MutationConfig::default(),
            &AmplifyConfig {
                max_rounds: 10,
                ..AmplifyConfig::default()
            },
            &mut synth,
        )
        .unwrap();
        assert_eq!(outcome.rounds.len(), 1, "{:?}", outcome.rounds);
        assert_eq!(outcome.rounds[0].kills, 0);
        assert_eq!(outcome.suite.len(), base.len());
        assert_eq!(outcome.final_score(), outcome.baseline_score);
    }

    #[test]
    fn empty_candidate_round_stops_the_loop() {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["Add"]);
        let base = suite_of(vec![case(0, 0)]);
        let mut synth =
            |_e: &TestSuite, _f: &[String], _round: usize, _max: usize| Ok(suite_of(Vec::new()));
        let outcome = amplify_suite(
            &factory,
            &switch,
            &base,
            &mutants,
            &MutationConfig::default(),
            &AmplifyConfig::default(),
            &mut synth,
        )
        .unwrap();
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.rounds[0].candidates, 0);
    }

    #[test]
    fn score_target_already_met_skips_synthesis() {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["Add"]);
        let base = suite_of(vec![case(0, 0)]);
        let mut synth = |_e: &TestSuite, _f: &[String], _round: usize, _max: usize| {
            panic!("synthesis must not run below the target");
        };
        let outcome = amplify_suite(
            &factory,
            &switch,
            &base,
            &mutants,
            &MutationConfig::default(),
            &AmplifyConfig {
                score_target: 0.0,
                ..AmplifyConfig::default()
            },
            &mut synth,
        )
        .unwrap();
        assert!(outcome.rounds.is_empty());
    }
}
