//! Mutation inventories: where faults can be injected.
//!
//! The paper inserted interface mutants manually into C++ source, following
//! "a set of clearly defined rules, according to the definition of the
//! mutation operators" (§4). Our substitution (DESIGN.md §2) makes the same
//! rules mechanical: each mutation-relevant method publishes its locals
//! `L(R2)`, the attributes it uses `G(R2)`, and its instrumented
//! **use sites** — the program points where a non-interface variable is
//! read. The enumeration of mutants then follows the operator definitions
//! exactly.

use std::collections::BTreeSet;
use std::fmt;

/// One instrumented use of a non-interface (local) variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseSite {
    /// Site id, unique within its method (appears in the component code).
    pub id: u32,
    /// Name of the local variable read here.
    pub var: String,
    /// Human-readable description, e.g. `"inner loop bound"`.
    pub desc: String,
}

impl UseSite {
    /// Creates a use-site descriptor.
    pub fn new(id: u32, var: impl Into<String>, desc: impl Into<String>) -> Self {
        UseSite {
            id,
            var: var.into(),
            desc: desc.into(),
        }
    }
}

impl fmt::Display for UseSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site {} (use of {}: {})", self.id, self.var, self.desc)
    }
}

/// The mutation-relevant facts about one method `R2`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MethodInventory {
    /// Method name (as dispatched at runtime).
    pub method: String,
    /// `L(R2)`: locals defined in the method.
    pub locals: Vec<String>,
    /// `G(R2)`: globals (class attributes) used in the method.
    pub globals_used: Vec<String>,
    /// Instrumented use sites of non-interface variables.
    pub sites: Vec<UseSite>,
}

impl MethodInventory {
    /// Starts an inventory for `method`.
    pub fn new(method: impl Into<String>) -> Self {
        MethodInventory {
            method: method.into(),
            ..Default::default()
        }
    }

    /// Declares the locals `L(R2)`.
    pub fn locals<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.locals.extend(it.into_iter().map(Into::into));
        self
    }

    /// Declares the used globals `G(R2)`.
    pub fn globals_used<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.globals_used.extend(it.into_iter().map(Into::into));
        self
    }

    /// Adds a use site.
    pub fn site(mut self, id: u32, var: impl Into<String>, desc: impl Into<String>) -> Self {
        self.sites.push(UseSite::new(id, var, desc));
        self
    }

    /// Validates internal consistency: unique site ids, site variables
    /// declared as locals.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut ids = BTreeSet::new();
        for s in &self.sites {
            if !ids.insert(s.id) {
                problems.push(format!("{}: duplicate site id {}", self.method, s.id));
            }
            if !self.locals.contains(&s.var) {
                problems.push(format!(
                    "{}: site {} reads `{}` which is not a declared local",
                    self.method, s.id, s.var
                ));
            }
        }
        problems
    }
}

/// The mutation inventory of a whole class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassInventory {
    /// Class name.
    pub class_name: String,
    /// All attributes of the class (the "globals" universe).
    pub globals: Vec<String>,
    /// Per-method inventories, in declaration order.
    pub methods: Vec<MethodInventory>,
}

impl ClassInventory {
    /// Starts an inventory for `class_name`.
    pub fn new(class_name: impl Into<String>) -> Self {
        ClassInventory {
            class_name: class_name.into(),
            ..Default::default()
        }
    }

    /// Declares the class attributes (globals universe).
    pub fn globals<I: IntoIterator<Item = S>, S: Into<String>>(mut self, it: I) -> Self {
        self.globals.extend(it.into_iter().map(Into::into));
        self
    }

    /// Adds a method inventory.
    pub fn method(mut self, m: MethodInventory) -> Self {
        self.methods.push(m);
        self
    }

    /// Looks up a method inventory by name.
    pub fn method_named(&self, name: &str) -> Option<&MethodInventory> {
        self.methods.iter().find(|m| m.method == name)
    }

    /// `E(R2)` for a method: globals *not* used in it, in declaration
    /// order.
    pub fn externals_for(&self, m: &MethodInventory) -> Vec<&str> {
        self.globals
            .iter()
            .filter(|g| !m.globals_used.contains(*g))
            .map(String::as_str)
            .collect()
    }

    /// Validates the whole inventory: method-level problems plus used
    /// globals that are not declared in the universe.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen = BTreeSet::new();
        for m in &self.methods {
            if !seen.insert(m.method.as_str()) {
                problems.push(format!("duplicate method inventory for {}", m.method));
            }
            problems.extend(m.validate());
            for g in &m.globals_used {
                if !self.globals.contains(g) {
                    problems.push(format!(
                        "{} uses global `{g}` missing from the class universe",
                        m.method
                    ));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory() -> ClassInventory {
        ClassInventory::new("SortableObList")
            .globals(["count", "head", "tail"])
            .method(
                MethodInventory::new("Sort1")
                    .locals(["i", "j", "swapped"])
                    .globals_used(["count", "head"])
                    .site(0, "i", "outer index")
                    .site(1, "j", "inner index")
                    .site(2, "swapped", "loop guard"),
            )
            .method(
                MethodInventory::new("FindMax")
                    .locals(["idx", "best"])
                    .globals_used(["count"])
                    .site(0, "idx", "scan index"),
            )
    }

    #[test]
    fn valid_inventory_has_no_problems() {
        assert!(inventory().validate().is_empty());
    }

    #[test]
    fn externals_complement_used_globals() {
        let inv = inventory();
        let sort1 = inv.method_named("Sort1").unwrap();
        assert_eq!(inv.externals_for(sort1), vec!["tail"]);
        let fm = inv.method_named("FindMax").unwrap();
        assert_eq!(inv.externals_for(fm), vec!["head", "tail"]);
    }

    #[test]
    fn duplicate_site_ids_detected() {
        let m = MethodInventory::new("M")
            .locals(["a"])
            .site(0, "a", "x")
            .site(0, "a", "y");
        let problems = m.validate();
        assert!(problems.iter().any(|p| p.contains("duplicate site id")));
    }

    #[test]
    fn undeclared_local_in_site_detected() {
        let m = MethodInventory::new("M")
            .locals(["a"])
            .site(0, "ghost", "x");
        let problems = m.validate();
        assert!(problems.iter().any(|p| p.contains("not a declared local")));
    }

    #[test]
    fn undeclared_global_detected() {
        let inv = ClassInventory::new("C")
            .globals(["count"])
            .method(MethodInventory::new("M").globals_used(["ghost"]));
        assert!(inv
            .validate()
            .iter()
            .any(|p| p.contains("missing from the class universe")));
    }

    #[test]
    fn duplicate_method_detected() {
        let inv = ClassInventory::new("C")
            .method(MethodInventory::new("M"))
            .method(MethodInventory::new("M"));
        assert!(inv
            .validate()
            .iter()
            .any(|p| p.contains("duplicate method")));
    }

    #[test]
    fn lookup_and_display() {
        let inv = inventory();
        assert!(inv.method_named("Sort1").is_some());
        assert!(inv.method_named("Nope").is_none());
        let s = UseSite::new(3, "i", "bound");
        assert!(s.to_string().contains("site 3"));
        assert!(s.to_string().contains("use of i"));
    }
}
