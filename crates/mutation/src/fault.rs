//! Fault activation: how one mutant is "compiled in" at runtime.
//!
//! The paper compiled each mutant as a separate class. Our substitution
//! activates exactly one [`FaultPlan`] at a time through a shared
//! [`MutationSwitch`]; instrumented method bodies read their non-interface
//! variables through [`MutationSwitch::read_int`] /
//! [`MutationSwitch::read_value`], which apply the active replacement when
//! the (method, site) matches and are identity otherwise. With no plan
//! active the component *is* the original program.

use crate::operators::ReqConst;
use concat_bit::ComponentFactory;
use concat_runtime::{CancelToken, Value};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// What to substitute at the matched use site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Replacement {
    /// Bitwise-negate the value read (`IndVarBitNeg`).
    BitNeg,
    /// Read another variable (local or attribute) instead
    /// (`IndVarRepGlob` / `IndVarRepLoc` / `IndVarRepExt`).
    Var(String),
    /// Use a required constant (`IndVarRepReq`).
    Const(ReqConst),
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Replacement::BitNeg => f.write_str("~(value)"),
            Replacement::Var(v) => write!(f, "use `{v}` instead"),
            Replacement::Const(c) => write!(f, "use constant {c}"),
        }
    }
}

/// One injected fault: method + use site + replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Method the fault lives in.
    pub method: String,
    /// Use-site id within the method.
    pub site: u32,
    /// The substitution applied when the site is reached.
    pub replacement: Replacement,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ site {}: {}",
            self.method, self.site, self.replacement
        )
    }
}

/// The live variables visible at a use site, for `Var` replacements.
///
/// Components build one on the stack right before an instrumented read;
/// lookup order is locals first, then globals (attributes), matching the
/// C++ scoping the operators assume.
#[derive(Debug, Clone, Default)]
pub struct VarEnv {
    entries: Vec<(String, Value)>,
}

impl VarEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a variable (later bindings shadow earlier ones on lookup from
    /// the back).
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.entries.push((name.into(), value.into()));
        self
    }

    /// Looks a variable up, innermost binding first.
    pub fn lookup(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Coerces a dynamic value into the integer context of a use site.
///
/// `NULL` coerces to 0 (C semantics); booleans to 0/1; floats truncate;
/// anything else (strings, lists, object handles) coerces to 0 — a maximal
/// disturbance in an index/counter context.
pub fn coerce_int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Bool(b) => i64::from(*b),
        Value::Float(x) => *x as i64,
        Value::Null | Value::Str(_) | Value::List(_) | Value::Obj(_) => 0,
    }
}

/// The per-worker factory seam of the sharded mutation engine.
///
/// A [`MutationSwitch`] holds exactly one armed plan, so concurrent
/// workers cannot share one: each worker needs its own switch and a
/// component factory whose instrumented reads go through *that* switch.
/// A `ClonableFactory` is the prototype that rebinds the component
/// family to a worker-local switch.
///
/// The builder crosses threads (hence `Send + Sync`); the factory it
/// builds never leaves its worker, so `build_factory` can return plain
/// single-threaded factories — including ones that are not `Send`.
pub trait ClonableFactory: Send + Sync {
    /// Class name of the components the built factories construct.
    fn class_name(&self) -> &str;

    /// Builds a fresh factory whose components read their instrumented
    /// variables through `switch`.
    fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory>;
}

#[derive(Debug, Default)]
struct SwitchState {
    plan: Option<FaultPlan>,
    cancel: Option<CancelToken>,
}

/// Shared mutation switch: the engine arms a plan, instrumented components
/// consult it. Cloning shares the switch.
///
/// Every instrumented read is also a cooperative cancellation point: when
/// a [`CancelToken`] is attached ([`MutationSwitch::set_cancel_token`])
/// and trips — the runner's watchdog at a deadline — the next read
/// unwinds via [`CancelToken::checkpoint`] instead of returning, which is
/// what lets an infinite-loop mutant be interrupted and quarantined: any
/// mutant-induced loop re-reads the mutated site each iteration.
#[derive(Debug, Clone, Default)]
pub struct MutationSwitch {
    active: Arc<Mutex<SwitchState>>,
}

impl MutationSwitch {
    /// Creates a switch with no active fault (original program).
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, SwitchState> {
        // The state is a plain plan/token pair; recovering from a poisoned
        // lock keeps the switch usable after a panicking case.
        self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms a fault plan (replacing any previous one).
    pub fn arm(&self, plan: FaultPlan) {
        self.lock().plan = Some(plan);
    }

    /// Disarms: back to the original program.
    pub fn disarm(&self) {
        self.lock().plan = None;
    }

    /// The currently armed plan, if any.
    pub fn armed(&self) -> Option<FaultPlan> {
        self.lock().plan.clone()
    }

    /// Attaches the cancellation token instrumented reads poll; pass the
    /// runner's `TestRunner::cancel_token` so watchdog deadlines can
    /// interrupt mutant-induced infinite loops.
    pub fn set_cancel_token(&self, token: CancelToken) {
        self.lock().cancel = Some(token);
    }

    /// Detaches any cancellation token.
    pub fn clear_cancel_token(&self) {
        self.lock().cancel = None;
    }

    /// Instrumented *integer* read of local `var` at `(method, site)`.
    ///
    /// Returns `original` unless the armed plan targets this exact site, in
    /// which case the replacement is applied: bit-negation of the original,
    /// another variable from `env` (missing variables coerce to 0 — the
    /// out-of-scope read the operators can produce), or a required
    /// constant.
    pub fn read_int(
        &self,
        method: &str,
        site: u32,
        _var: &str,
        original: i64,
        env: &VarEnv,
    ) -> i64 {
        match self.matching_plan(method, site) {
            None => original,
            Some(plan) => match &plan.replacement {
                Replacement::BitNeg => !original,
                Replacement::Var(name) => env.lookup(name).map_or(0, coerce_int),
                Replacement::Const(c) => c.as_int(),
            },
        }
    }

    /// Instrumented *dynamic-value* read, for sites holding non-integer
    /// data (e.g. the running maximum in `FindMax`).
    pub fn read_value(
        &self,
        method: &str,
        site: u32,
        _var: &str,
        original: Value,
        env: &VarEnv,
    ) -> Value {
        match self.matching_plan(method, site) {
            None => original,
            Some(plan) => match &plan.replacement {
                Replacement::BitNeg => match original {
                    Value::Int(i) => Value::Int(!i),
                    Value::Bool(b) => Value::Bool(!b),
                    other => other,
                },
                Replacement::Var(name) => env.lookup(name).cloned().unwrap_or(Value::Null),
                Replacement::Const(c) => c.as_value(),
            },
        }
    }

    fn matching_plan(&self, method: &str, site: u32) -> Option<FaultPlan> {
        let guard = self.lock();
        // Cooperative cancellation point: drop the guard first so the
        // unwinding checkpoint can never poison the switch.
        let cancelled = guard.cancel.clone();
        let plan = match guard.plan.as_ref() {
            Some(p) if p.method == method && p.site == site => Some(p.clone()),
            _ => None,
        };
        drop(guard);
        if let Some(token) = cancelled {
            token.checkpoint();
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_switch_is_identity() {
        let sw = MutationSwitch::new();
        let env = VarEnv::new();
        assert_eq!(sw.read_int("M", 0, "i", 42, &env), 42);
        assert_eq!(
            sw.read_value("M", 0, "v", Value::Str("x".into()), &env),
            Value::Str("x".into())
        );
        assert!(sw.armed().is_none());
    }

    #[test]
    fn bitneg_applies_only_at_matching_site() {
        let sw = MutationSwitch::new();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 1,
            replacement: Replacement::BitNeg,
        });
        let env = VarEnv::new();
        assert_eq!(sw.read_int("M", 1, "i", 5, &env), !5);
        assert_eq!(sw.read_int("M", 0, "i", 5, &env), 5, "other site untouched");
        assert_eq!(
            sw.read_int("Other", 1, "i", 5, &env),
            5,
            "other method untouched"
        );
    }

    #[test]
    fn var_replacement_reads_environment() {
        let sw = MutationSwitch::new();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 0,
            replacement: Replacement::Var("count".into()),
        });
        let env = VarEnv::new().bind("count", 9i64);
        assert_eq!(sw.read_int("M", 0, "i", 5, &env), 9);
    }

    #[test]
    fn missing_variable_coerces_to_zero() {
        let sw = MutationSwitch::new();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 0,
            replacement: Replacement::Var("ghost".into()),
        });
        assert_eq!(sw.read_int("M", 0, "i", 5, &VarEnv::new()), 0);
        assert_eq!(
            sw.read_value("M", 0, "v", Value::Int(5), &VarEnv::new()),
            Value::Null
        );
    }

    #[test]
    fn const_replacement() {
        let sw = MutationSwitch::new();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 2,
            replacement: Replacement::Const(ReqConst::MaxInt),
        });
        assert_eq!(sw.read_int("M", 2, "i", 5, &VarEnv::new()), i64::MAX);
    }

    #[test]
    fn disarm_restores_original_program() {
        let sw = MutationSwitch::new();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 0,
            replacement: Replacement::BitNeg,
        });
        assert!(sw.armed().is_some());
        sw.disarm();
        assert_eq!(sw.read_int("M", 0, "i", 7, &VarEnv::new()), 7);
    }

    #[test]
    fn clones_share_the_armed_plan() {
        let sw = MutationSwitch::new();
        let clone = sw.clone();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 0,
            replacement: Replacement::BitNeg,
        });
        assert_eq!(clone.read_int("M", 0, "i", 0, &VarEnv::new()), !0);
    }

    #[test]
    fn value_bitneg_on_bool_and_passthrough() {
        let sw = MutationSwitch::new();
        sw.arm(FaultPlan {
            method: "M".into(),
            site: 0,
            replacement: Replacement::BitNeg,
        });
        assert_eq!(
            sw.read_value("M", 0, "v", Value::Bool(true), &VarEnv::new()),
            Value::Bool(false)
        );
        assert_eq!(
            sw.read_value("M", 0, "v", Value::Str("s".into()), &VarEnv::new()),
            Value::Str("s".into())
        );
    }

    #[test]
    fn env_shadowing_lookup() {
        let env = VarEnv::new().bind("x", 1i64).bind("x", 2i64);
        assert_eq!(env.lookup("x"), Some(&Value::Int(2)));
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
    }

    #[test]
    fn coercions() {
        assert_eq!(coerce_int(&Value::Int(3)), 3);
        assert_eq!(coerce_int(&Value::Bool(true)), 1);
        assert_eq!(coerce_int(&Value::Float(2.9)), 2);
        assert_eq!(coerce_int(&Value::Null), 0);
        assert_eq!(coerce_int(&Value::Str("9".into())), 0);
    }

    #[test]
    fn cancelled_token_unwinds_instrumented_reads() {
        use concat_runtime::{CancelToken, DEADLINE_PANIC_PAYLOAD};
        let sw = MutationSwitch::new();
        let token = CancelToken::new();
        sw.set_cancel_token(token.clone());
        assert_eq!(sw.read_int("M", 0, "i", 1, &VarEnv::new()), 1);
        token.cancel();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(|| sw.read_int("M", 0, "i", 1, &VarEnv::new()));
        std::panic::set_hook(prev);
        let payload = r.unwrap_err();
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&DEADLINE_PANIC_PAYLOAD)
        );
        // The switch survives the unwind (no poisoning) and can detach.
        token.reset();
        sw.clear_cancel_token();
        assert_eq!(sw.read_int("M", 0, "i", 1, &VarEnv::new()), 1);
    }

    #[test]
    fn displays() {
        let p = FaultPlan {
            method: "Sort1".into(),
            site: 3,
            replacement: Replacement::Var("count".into()),
        };
        let s = p.to_string();
        assert!(s.contains("Sort1"));
        assert!(s.contains("site 3"));
        assert!(s.contains("count"));
        assert!(Replacement::BitNeg.to_string().contains('~'));
        assert!(Replacement::Const(ReqConst::Null)
            .to_string()
            .contains("NULL"));
    }
}
