//! The method × operator score matrix — the data behind Tables 2 and 3.
//!
//! The paper's result tables have one row per target method showing mutant
//! counts per operator, then summary rows: `#mutants`, `#killed`,
//! `#equivalent` (and, beyond the paper, `#quarantined` — mutants the
//! harness stopped) and the per-operator and total mutation scores.

use crate::analysis::{MutantResult, MutantStatus, MutationRun};
use crate::operators::MutationOperator;
use std::collections::BTreeMap;

/// Counts for one cell (or aggregate) of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellStats {
    /// Mutants generated.
    pub mutants: usize,
    /// Mutants killed by the suite.
    pub killed: usize,
    /// Presumed-equivalent mutants.
    pub equivalent: usize,
    /// Quarantined mutants (harness stops: deadline/budget/crashes).
    pub quarantined: usize,
}

impl CellStats {
    /// Genuine survivors.
    pub fn survived(&self) -> usize {
        self.mutants - self.killed - self.equivalent - self.quarantined
    }

    /// The mutation score `killed / (mutants - equivalent - quarantined)`;
    /// 1.0 when the denominator is zero. Quarantined mutants produced no
    /// verdict, so they leave the denominator like equivalents do.
    pub fn score(&self) -> f64 {
        let denom = self.mutants - self.equivalent - self.quarantined;
        if denom == 0 {
            1.0
        } else {
            self.killed as f64 / denom as f64
        }
    }

    /// Score as a percentage, rounded to one decimal (the tables' format).
    pub fn score_pct(&self) -> f64 {
        (self.score() * 1000.0).round() / 10.0
    }

    fn absorb(&mut self, r: &MutantResult) {
        self.mutants += 1;
        match r.status {
            MutantStatus::Killed { .. } => self.killed += 1,
            MutantStatus::PresumedEquivalent => self.equivalent += 1,
            MutantStatus::Quarantined { .. } => self.quarantined += 1,
            MutantStatus::Survived => {}
        }
    }
}

/// The full method × operator matrix of a mutation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationMatrix {
    methods: Vec<String>,
    cells: BTreeMap<(String, MutationOperator), CellStats>,
}

impl MutationMatrix {
    /// Builds the matrix from a run, with rows ordered as `methods`.
    ///
    /// Results for methods not listed are ignored (callers normally pass
    /// exactly the experiment's target methods).
    pub fn from_run(run: &MutationRun, methods: &[&str]) -> Self {
        let methods: Vec<String> = methods.iter().map(|m| (*m).to_owned()).collect();
        let mut cells: BTreeMap<(String, MutationOperator), CellStats> = BTreeMap::new();
        for r in &run.results {
            let method = r.mutant.method().to_owned();
            if !methods.contains(&method) {
                continue;
            }
            cells
                .entry((method, r.mutant.operator))
                .or_default()
                .absorb(r);
        }
        MutationMatrix { methods, cells }
    }

    /// Row order of the matrix.
    pub fn methods(&self) -> &[String] {
        &self.methods
    }

    /// Cell for `(method, operator)` (zeros when no mutants landed there).
    pub fn cell(&self, method: &str, operator: MutationOperator) -> CellStats {
        self.cells
            .get(&(method.to_owned(), operator))
            .copied()
            .unwrap_or_default()
    }

    /// Number of mutants in one row (the tables' per-method "Total"
    /// column).
    pub fn row_total(&self, method: &str) -> usize {
        MutationOperator::ALL
            .iter()
            .map(|op| self.cell(method, *op).mutants)
            .sum()
    }

    /// Aggregate over one operator column.
    pub fn column(&self, operator: MutationOperator) -> CellStats {
        let mut agg = CellStats::default();
        for m in &self.methods {
            let c = self.cell(m, operator);
            agg.mutants += c.mutants;
            agg.killed += c.killed;
            agg.equivalent += c.equivalent;
            agg.quarantined += c.quarantined;
        }
        agg
    }

    /// Aggregate over the whole matrix (the tables' "Total" column of the
    /// summary rows).
    pub fn overall(&self) -> CellStats {
        let mut agg = CellStats::default();
        for op in MutationOperator::ALL {
            let c = self.column(op);
            agg.mutants += c.mutants;
            agg.killed += c.killed;
            agg.equivalent += c.equivalent;
            agg.quarantined += c.quarantined;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::KillReason;
    use crate::enumerate::Mutant;
    use crate::fault::{FaultPlan, Replacement};
    use concat_driver::SuiteResult;

    fn result(method: &str, op: MutationOperator, status: MutantStatus) -> MutantResult {
        MutantResult {
            mutant: Mutant {
                id: 0,
                operator: op,
                plan: FaultPlan {
                    method: method.into(),
                    site: 0,
                    replacement: Replacement::BitNeg,
                },
            },
            status,
        }
    }

    fn killed() -> MutantStatus {
        MutantStatus::Killed {
            reason: KillReason::OutputDiff,
            by_case: 0,
        }
    }

    fn run_with(results: Vec<MutantResult>) -> MutationRun {
        MutationRun {
            results,
            golden: SuiteResult {
                class_name: "C".into(),
                cases: vec![],
                notes: vec![],
            },
        }
    }

    #[test]
    fn cells_accumulate_statuses() {
        let run = run_with(vec![
            result("Sort1", MutationOperator::IndVarBitNeg, killed()),
            result(
                "Sort1",
                MutationOperator::IndVarBitNeg,
                MutantStatus::Survived,
            ),
            result(
                "Sort1",
                MutationOperator::IndVarBitNeg,
                MutantStatus::PresumedEquivalent,
            ),
        ]);
        let m = MutationMatrix::from_run(&run, &["Sort1"]);
        let c = m.cell("Sort1", MutationOperator::IndVarBitNeg);
        assert_eq!(c.mutants, 3);
        assert_eq!(c.killed, 1);
        assert_eq!(c.equivalent, 1);
        assert_eq!(c.survived(), 1);
        assert!((c.score() - 0.5).abs() < 1e-12);
        assert_eq!(c.score_pct(), 50.0);
    }

    #[test]
    fn rows_and_columns_aggregate() {
        let run = run_with(vec![
            result("Sort1", MutationOperator::IndVarBitNeg, killed()),
            result("Sort1", MutationOperator::IndVarRepLoc, killed()),
            result(
                "FindMax",
                MutationOperator::IndVarRepLoc,
                MutantStatus::Survived,
            ),
        ]);
        let m = MutationMatrix::from_run(&run, &["Sort1", "FindMax"]);
        assert_eq!(m.row_total("Sort1"), 2);
        assert_eq!(m.row_total("FindMax"), 1);
        let col = m.column(MutationOperator::IndVarRepLoc);
        assert_eq!(col.mutants, 2);
        assert_eq!(col.killed, 1);
        let all = m.overall();
        assert_eq!(all.mutants, 3);
        assert_eq!(all.killed, 2);
    }

    #[test]
    fn unlisted_methods_ignored() {
        let run = run_with(vec![result(
            "Ghost",
            MutationOperator::IndVarBitNeg,
            killed(),
        )]);
        let m = MutationMatrix::from_run(&run, &["Sort1"]);
        assert_eq!(m.overall().mutants, 0);
        assert_eq!(m.methods(), &["Sort1".to_owned()]);
    }

    #[test]
    fn empty_cell_is_zero_and_score_one() {
        let run = run_with(vec![]);
        let m = MutationMatrix::from_run(&run, &["Sort1"]);
        let c = m.cell("Sort1", MutationOperator::IndVarRepReq);
        assert_eq!(c.mutants, 0);
        assert_eq!(c.score(), 1.0);
    }

    #[test]
    fn score_pct_rounds_like_the_paper() {
        let c = CellStats {
            mutants: 700,
            killed: 652,
            equivalent: 19,
            quarantined: 0,
        };
        // 652 / 681 = 0.9574… → 95.7 %
        assert_eq!(c.score_pct(), 95.7);
    }

    #[test]
    fn quarantined_mutants_leave_the_denominator() {
        let run = run_with(vec![
            result("Sort1", MutationOperator::IndVarBitNeg, killed()),
            result(
                "Sort1",
                MutationOperator::IndVarBitNeg,
                MutantStatus::Quarantined {
                    reason: crate::analysis::QuarantineReason::Timeout,
                },
            ),
        ]);
        let m = MutationMatrix::from_run(&run, &["Sort1"]);
        let c = m.cell("Sort1", MutationOperator::IndVarBitNeg);
        assert_eq!(c.mutants, 2);
        assert_eq!(c.quarantined, 1);
        assert_eq!(c.survived(), 0);
        assert_eq!(c.score(), 1.0, "1 killed / (2 - 0 - 1)");
        assert_eq!(m.overall().quarantined, 1);
    }
}
