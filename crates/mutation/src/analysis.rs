//! The mutation analysis engine: execute, classify, score.
//!
//! Reproduces the paper's §4 procedure. A mutant is **killed** when
//!
//! 1. the program crashed while running the test cases (panic),
//! 2. an exception was raised due to assertion violation "given that this
//!    was not the case with the original program", or
//! 3. the output differs from the original program's output
//!    (golden-transcript comparison).
//!
//! Mutants alive after the suite are re-attacked with caller-supplied
//! *probe suites* (randomized amplification); mutants that not even the
//! probes distinguish are classified **presumed equivalent** — the
//! mechanical stand-in for the paper's manual equivalence analysis
//! (DESIGN.md §2). The mutation score is `killed / (total - equivalent)`.

use crate::enumerate::Mutant;
use crate::fault::{ClonableFactory, MutationSwitch};
use crate::journal::{campaign_fingerprint, CampaignJournal};
use concat_bit::ComponentFactory;
use concat_driver::{
    differing_cases, CaseStatus, CoverageMatrix, SuiteResult, TestLog, TestRunner, TestSuite,
};
use concat_obs::{MemorySink, SpanId, Telemetry};
use concat_runtime::{recommended_workers, write_atomic, Budget, RetryPolicy};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Why a mutant died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillReason {
    /// The mutant panicked (the paper's "program crashed").
    Crash,
    /// An assertion violation not present in the original run.
    Assertion,
    /// Outputs (return values, exceptions, final state) differ.
    OutputDiff,
}

impl fmt::Display for KillReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KillReason::Crash => "crash",
            KillReason::Assertion => "assertion violation",
            KillReason::OutputDiff => "output difference",
        };
        f.write_str(s)
    }
}

/// Why a mutant was quarantined instead of scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// The mutant hit the per-case wall-clock deadline (e.g. an induced
    /// infinite loop interrupted by the watchdog).
    Timeout,
    /// The mutant exhausted an execution budget (calls, transcript bytes).
    Budget,
    /// The mutant crashed in at least the configured number of cases —
    /// environment-threatening rather than informative.
    RepeatedCrash,
    /// The worker executing this mutant panicked outside the runner's
    /// catch boundary (an engine-adjacent crash, e.g. a panicking
    /// reporter). The supervisor contained the crash: only this in-flight
    /// mutant is quarantined and the campaign continues.
    WorkerCrash,
    /// Under [`IsolationMode::Process`], the shard executing this mutant
    /// died of SIGABRT — the signature of a mutant calling
    /// `std::process::abort()` (or an allocator/runtime abort). The
    /// process boundary contained it: only this mutant is quarantined.
    ShardAbort,
    /// Under [`IsolationMode::Process`], the shard executing this mutant
    /// died of another signal (SIGSEGV, an external SIGKILL, …) or a
    /// deliberate nonzero exit, twice in a row — the mutant reproducibly
    /// takes its host process down.
    ShardSignal,
    /// Under [`IsolationMode::Process`], the shard executing this mutant
    /// stopped emitting heartbeat frames — a tight loop with no
    /// cooperative checkpoint — and the supervisor killed it
    /// (SIGTERM→SIGKILL) after the heartbeat deadline, twice in a row.
    ShardUnresponsive,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuarantineReason::Timeout => "timeout",
            QuarantineReason::Budget => "budget",
            QuarantineReason::RepeatedCrash => "repeated crash",
            QuarantineReason::WorkerCrash => "worker crash",
            QuarantineReason::ShardAbort => "shard abort",
            QuarantineReason::ShardSignal => "shard signal",
            QuarantineReason::ShardUnresponsive => "shard unresponsive",
        };
        f.write_str(s)
    }
}

/// Terminal classification of one mutant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutantStatus {
    /// Killed by the test suite.
    Killed {
        /// Why it died.
        reason: KillReason,
        /// Id of the first distinguishing test case.
        by_case: usize,
    },
    /// Alive after the suite but distinguished by a probe suite: a genuine
    /// test-suite escape (counts against the score).
    Survived,
    /// Not even probing distinguishes it: presumed equivalent (excluded
    /// from the score denominator, like the paper's equivalents).
    PresumedEquivalent,
    /// The harness stopped the mutant (deadline, budget, repeated crash):
    /// the execution tells us about the environment, not the suite's
    /// adequacy, so — like equivalents — quarantined mutants are excluded
    /// from the score denominator and reported separately.
    Quarantined {
        /// Why it was quarantined.
        reason: QuarantineReason,
    },
}

impl MutantStatus {
    /// True when the suite killed the mutant.
    pub fn is_killed(&self) -> bool {
        matches!(self, MutantStatus::Killed { .. })
    }

    /// True for presumed-equivalent mutants.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, MutantStatus::PresumedEquivalent)
    }

    /// True for quarantined mutants.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, MutantStatus::Quarantined { .. })
    }
}

/// One analyzed mutant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutantResult {
    /// The mutant.
    pub mutant: Mutant,
    /// What happened to it.
    pub status: MutantStatus,
}

/// How [`run_mutation_analysis_parallel`] isolates mutant execution.
#[derive(Debug, Clone)]
pub enum IsolationMode {
    /// Shards are threads in this process (the default). Cheap, and
    /// `catch_unwind` contains everything that unwinds — but a mutant
    /// that aborts, overflows the stack, or spins without reaching a
    /// cooperative checkpoint takes the whole campaign process down.
    InThread,
    /// Shards are child processes (self-execs of the current binary; see
    /// [`ProcessIsolation::worker_args`]) streaming verdicts back over a
    /// checksummed frame protocol. A mutant can do *anything* — abort,
    /// segfault, spin forever — and lose only itself: the supervisor
    /// classifies the shard's exit, quarantines the in-flight mutant, and
    /// respawns the shard under the `worker_restarts` budget.
    Process(ProcessIsolation),
}

impl IsolationMode {
    /// True for [`IsolationMode::Process`].
    pub fn is_process(&self) -> bool {
        matches!(self, IsolationMode::Process(_))
    }
}

/// Settings of the process-isolated shard pool.
#[derive(Debug, Clone)]
pub struct ProcessIsolation {
    /// Arguments appended to a self-exec of [`std::env::current_exe`] to
    /// reach the hidden shard-worker entry point (e.g.
    /// `["shard-worker", "campaign"]` for `mutation_demo`, or a
    /// `--exact`-filtered test name for a test binary). The entry point
    /// must rebuild the identical campaign and call
    /// [`crate::run_shard_worker`].
    pub worker_args: Vec<String>,
    /// Extra environment variables for shard processes, on top of the
    /// inherited environment and the protocol's own `CONCAT_SHARD_*`
    /// variables — how a multi-campaign binary knows which campaign to
    /// rebuild.
    pub worker_env: Vec<(String, String)>,
    /// Steady-state heartbeat deadline: a shard that emits no frame for
    /// this long is presumed stuck in a non-cooperative loop and gets the
    /// SIGTERM→SIGKILL ladder. Must exceed the longest single mutant
    /// execution (every `shard-begin`/verdict frame is a heartbeat).
    pub heartbeat_timeout: Duration,
    /// First-frame deadline, covering process spawn plus the shard's own
    /// golden run. Generous by default.
    pub startup_grace: Duration,
    /// How long the SIGTERM rung of the escalation ladder waits before
    /// SIGKILL.
    pub term_grace: Duration,
    /// Backoff envelope for shard respawns; the actual delay per respawn
    /// is full-jitter ([`RetryPolicy::jittered_delay`]) under this
    /// envelope, drawn from a SplitMix64 stream seeded with
    /// [`ProcessIsolation::backoff_seed`].
    pub respawn_backoff: RetryPolicy,
    /// Seed of the respawn-jitter stream — campaigns stay deterministic.
    pub backoff_seed: u64,
}

impl ProcessIsolation {
    /// Process isolation reached through `worker_args`, with default
    /// deadlines (10 s heartbeat, 30 s startup, 500 ms SIGTERM grace) and
    /// a 10 ms–200 ms jittered respawn envelope.
    pub fn new<I, S>(worker_args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ProcessIsolation {
            worker_args: worker_args.into_iter().map(Into::into).collect(),
            worker_env: Vec::new(),
            heartbeat_timeout: Duration::from_secs(10),
            startup_grace: Duration::from_secs(30),
            term_grace: Duration::from_millis(500),
            respawn_backoff: RetryPolicy {
                max_attempts: u32::MAX,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
            },
            backoff_seed: 0x5AD_CAFE,
        }
    }

    /// Adds one environment variable for shard processes.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.worker_env.push((key.into(), value.into()));
        self
    }
}

/// Configuration of a mutation run.
pub struct MutationConfig {
    /// Suites used to re-attack survivors for equivalence probing
    /// (generated by the caller, typically with different seeds and a
    /// higher cycle bound). Empty = every survivor stays `Survived`.
    pub probe_suites: Vec<TestSuite>,
    /// Install a silent panic hook for the duration of the run so that
    /// thousands of *expected* mutant panics do not flood stderr.
    pub silence_panics: bool,
    /// Run with built-in test capabilities enabled (the paper's test
    /// mode). Setting this to `false` is the assertions-off ablation: the
    /// partial oracle disappears and only crashes and golden-output
    /// differences can kill.
    pub bit_enabled: bool,
    /// Telemetry handle for the run: a `mutation` span over the whole
    /// analysis, a `golden` span over the golden runs, a `mutant` span
    /// per mutant, `mutant.killed.*` / `mutant.survived` /
    /// `mutation.quarantined` counters and a `mutant.equivalent` gauge.
    /// Also handed to the inner [`TestRunner`] (suite/case spans).
    /// Disabled — and free — by default.
    pub telemetry: Telemetry,
    /// Per-case execution budget applied to every run (golden, mutant,
    /// probe). A deadline here is what turns an infinite-loop mutant into
    /// [`MutantStatus::Quarantined`] instead of a hung analysis.
    /// Unlimited by default — the paper's semantics.
    pub budget: Budget,
    /// Quarantine a mutant whose run crashes in at least this many test
    /// cases (crashes the *golden* run also has are not counted). `None`
    /// (default) keeps the paper's semantics: every crash is a kill.
    pub crash_quarantine_threshold: Option<usize>,
    /// Worker count for [`run_mutation_analysis_parallel`]: each worker
    /// owns its own factory, switch, runner, watchdog and cancel token.
    /// Defaults to the machine's available parallelism
    /// ([`recommended_workers`]); clamped to `1..=mutants.len()` at run
    /// time. The sequential entry point ignores it (it *is* the
    /// `workers = 1` instantiation of the engine), and verdicts are
    /// byte-identical for every value.
    pub workers: usize,
    /// Path of the durable per-campaign verdict journal. When set, every
    /// verdict is appended (checksummed, fsynced) as its mutant finishes,
    /// and a rerun over the same campaign replays the journal's verified
    /// prefix instead of re-executing finished mutants — the resumed run
    /// is byte-identical to an uninterrupted one. `None` (default) keeps
    /// the analysis purely in-memory. Journal I/O failures degrade (the
    /// campaign continues without durability, counting `harden.degraded`)
    /// rather than aborting the run.
    pub journal_path: Option<PathBuf>,
    /// How many crashed workers the parallel supervisor may replace
    /// before degrading to the surviving workers. Each worker panic
    /// quarantines only its in-flight mutant; the replacement worker
    /// keeps draining the shared queue. Once the budget is spent the
    /// campaign still completes — remaining mutants run on the surviving
    /// workers, or inline on the supervisor when none survive. Partial
    /// results are never discarded.
    pub worker_restarts: usize,
    /// Coverage-matrix selection (the fast path): per mutant, execute
    /// only the cases whose transactions statically invoke the mutated
    /// method — every other case cannot reach an armed site (see
    /// DESIGN.md §12 for the coverage contract) and is skipped, counted
    /// under the `selection.skipped` telemetry counter. Verdicts are
    /// identical with the flag on or off (and it is deliberately absent
    /// from the campaign fingerprint, so journals stay interchangeable);
    /// `true` by default.
    pub coverage_selection: bool,
    /// How [`run_mutation_analysis_parallel`] isolates its shards:
    /// threads (default) or supervised child processes. Verdicts are
    /// byte-identical across modes and shard counts, so — like `workers`
    /// — the mode is deliberately absent from the campaign fingerprint
    /// and journals interchange freely. The sequential entry point
    /// ignores it.
    pub isolation: IsolationMode,
    /// Incremental (change-aware) resume. When set together with
    /// `journal_path`, the journal additionally records one `feature`
    /// line per mutated method (its sub-fingerprint and mutant ids; see
    /// [`crate::method_fingerprints`]), and a journal whose campaign
    /// fingerprint no longer matches is *salvaged* method by method
    /// instead of discarded: methods whose sub-fingerprint is unchanged
    /// keep their verdicts (remapped onto the shifted ids), and only the
    /// changed methods' mutants re-execute. The flag itself is excluded
    /// from the campaign fingerprint — verdicts are identical either way,
    /// so incremental and plain runs share journals freely. `false` by
    /// default.
    pub incremental: bool,
    /// Fingerprint of the parent campaign, for derived journals: the
    /// amplifier stamps each round journal (`<journal>.r<round>`) with
    /// the parent campaign's fingerprint so a stale round journal left at
    /// the same path by a *different* campaign can never replay into this
    /// one. Folded into [`crate::campaign_fingerprint`] when set. `None`
    /// (default) for top-level campaigns.
    pub lineage: Option<u32>,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            probe_suites: Vec::new(),
            silence_panics: true,
            bit_enabled: true,
            telemetry: Telemetry::disabled(),
            budget: Budget::unlimited(),
            crash_quarantine_threshold: None,
            workers: recommended_workers(),
            journal_path: None,
            worker_restarts: 4,
            coverage_selection: true,
            isolation: IsolationMode::InThread,
            incremental: false,
            lineage: None,
        }
    }
}

impl fmt::Debug for MutationConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutationConfig")
            .field("probe_suites", &self.probe_suites.len())
            .field("silence_panics", &self.silence_panics)
            .field("telemetry_enabled", &self.telemetry.is_enabled())
            .field("budget", &self.budget)
            .field(
                "crash_quarantine_threshold",
                &self.crash_quarantine_threshold,
            )
            .field("workers", &self.workers)
            .field("journal_path", &self.journal_path)
            .field("worker_restarts", &self.worker_restarts)
            .field("coverage_selection", &self.coverage_selection)
            .field("isolation", &self.isolation)
            .field("incremental", &self.incremental)
            .field("lineage", &self.lineage)
            .finish()
    }
}

/// The complete outcome of a mutation analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRun {
    /// Per-mutant classifications, in enumeration order.
    pub results: Vec<MutantResult>,
    /// The golden suite result the mutants were compared against.
    pub golden: SuiteResult,
}

impl MutationRun {
    /// Total mutants analyzed.
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Mutants killed by the suite.
    pub fn killed(&self) -> usize {
        self.results.iter().filter(|r| r.status.is_killed()).count()
    }

    /// Presumed-equivalent mutants.
    pub fn equivalent(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status.is_equivalent())
            .count()
    }

    /// Genuine survivors (escapes).
    pub fn survived(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status == MutantStatus::Survived)
            .count()
    }

    /// Quarantined mutants (deadline/budget/repeated-crash stops).
    pub fn quarantined(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status.is_quarantined())
            .count()
    }

    /// Kills attributable to assertion violations (the paper reports 59 of
    /// 652 for Table 2).
    pub fn killed_by_assertion(&self) -> usize {
        self.results
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    MutantStatus::Killed {
                        reason: KillReason::Assertion,
                        ..
                    }
                )
            })
            .count()
    }

    /// The mutation score `killed / (total - equivalent - quarantined)`,
    /// in `[0, 1]`. Quarantined mutants yielded no verdict about the
    /// suite, so — like equivalents — they leave the denominator.
    /// Returns 1.0 when the denominator is zero.
    pub fn score(&self) -> f64 {
        let denom = self.total() - self.equivalent() - self.quarantined();
        if denom == 0 {
            1.0
        } else {
            self.killed() as f64 / denom as f64
        }
    }
}

/// The golden (original-program) results: computed once per analysis and
/// shared read-only across every shard.
pub(crate) struct GoldenBaseline {
    pub(crate) golden: SuiteResult,
    probes: Vec<SuiteResult>,
    /// Case × feature coverage of the golden run, persisted alongside
    /// the campaign journal for post-mortem inspection.
    coverage: CoverageMatrix,
    /// Per-feature filtered execution scopes (one per distinct mutated
    /// method), built when [`MutationConfig::coverage_selection`] is on.
    views: HashMap<String, FeatureView>,
}

/// The filtered execution scope for mutants of one feature (interface
/// method): the sub-suite of cases whose transactions statically invoke
/// the method, with the matching slice of the golden results. Cases
/// outside the view can never reach an armed site of the feature (the
/// coverage contract), so running only the view yields the exact verdict
/// of a full run while skipping `skipped` case executions per mutant.
struct FeatureView {
    suite: TestSuite,
    golden: SuiteResult,
    probes: Vec<TestSuite>,
    probe_goldens: Vec<SuiteResult>,
    /// Main-suite cases this view skips per mutant execution.
    skipped: u64,
    /// Cases skipped per probe suite, by probe index.
    probe_skipped: Vec<u64>,
}

/// Filters a golden [`SuiteResult`] down to the cases in `ids`. Valid
/// because the runner constructs a fresh component per case: a case's
/// result does not depend on which other cases ran around it.
fn filter_golden(golden: &SuiteResult, ids: &BTreeSet<usize>) -> SuiteResult {
    SuiteResult {
        class_name: golden.class_name.clone(),
        cases: golden
            .cases
            .iter()
            .filter(|c| ids.contains(&c.case_id))
            .cloned()
            .collect(),
        notes: golden.notes.clone(),
    }
}

/// Builds the per-feature views for every distinct mutated method.
fn build_feature_views(
    suite: &TestSuite,
    golden: &SuiteResult,
    probes_in: &[TestSuite],
    probe_goldens: &[SuiteResult],
    coverage: &CoverageMatrix,
    probe_coverage: &[CoverageMatrix],
    mutants: &[Mutant],
) -> HashMap<String, FeatureView> {
    let features: BTreeSet<&str> = mutants.iter().map(|m| m.method()).collect();
    let mut views = HashMap::new();
    for feature in features {
        let ids: BTreeSet<usize> = suite
            .iter()
            .filter(|c| coverage.covers(c.id, feature))
            .map(|c| c.id)
            .collect();
        let id_list: Vec<usize> = ids.iter().copied().collect();
        let mut view = FeatureView {
            suite: suite.filtered(&id_list),
            golden: filter_golden(golden, &ids),
            probes: Vec::with_capacity(probes_in.len()),
            probe_goldens: Vec::with_capacity(probes_in.len()),
            skipped: (suite.len() - ids.len()) as u64,
            probe_skipped: Vec::with_capacity(probes_in.len()),
        };
        for ((probe, probe_golden), matrix) in probes_in
            .iter()
            .zip(probe_goldens.iter())
            .zip(probe_coverage.iter())
        {
            let probe_ids: BTreeSet<usize> = probe
                .iter()
                .filter(|c| matrix.covers(c.id, feature))
                .map(|c| c.id)
                .collect();
            let probe_id_list: Vec<usize> = probe_ids.iter().copied().collect();
            view.probe_skipped
                .push((probe.len() - probe_ids.len()) as u64);
            view.probes.push(probe.filtered(&probe_id_list));
            view.probe_goldens
                .push(filter_golden(probe_golden, &probe_ids));
        }
        views.insert(feature.to_owned(), view);
    }
    views
}

/// Case statuses of one golden run indexed by `case_id`, built once per
/// suite so per-mutant classification stays O(cases) — the previous
/// per-observed-case linear scan was O(cases²) per mutant, which the
/// worker pool would have multiplied instead of hidden.
struct StatusIndex<'a> {
    by_case: HashMap<usize, &'a CaseStatus>,
}

impl<'a> StatusIndex<'a> {
    fn of(suite: &'a SuiteResult) -> Self {
        StatusIndex {
            by_case: suite.cases.iter().map(|c| (c.case_id, &c.status)).collect(),
        }
    }

    fn status(&self, id: usize) -> Option<&'a CaseStatus> {
        self.by_case.get(&id).copied()
    }
}

/// Status indexes of one feature view's golden slices, built once per
/// engine so scoped classification stays O(cases).
struct ViewIndexes<'a> {
    golden: StatusIndex<'a>,
    probes: Vec<StatusIndex<'a>>,
}

/// Read-only inputs every shard works from, plus the shared work queue.
/// Workers pull mutant indices from `next` and report `(index, result)`
/// pairs; the index is what makes the merge deterministic.
pub(crate) struct Engine<'a> {
    suite: &'a TestSuite,
    mutants: &'a [Mutant],
    config: &'a MutationConfig,
    baseline: &'a GoldenBaseline,
    golden_index: StatusIndex<'a>,
    probe_indexes: Vec<StatusIndex<'a>>,
    /// Pre-built status indexes of every feature view's golden slices,
    /// keyed like [`GoldenBaseline::views`].
    view_indexes: HashMap<&'a str, ViewIndexes<'a>>,
    next: AtomicUsize,
    /// Mutants whose verdicts were replayed from a journal: claimed
    /// indices in `done` are skipped, so a resumed run re-executes only
    /// unfinished mutants.
    done: Vec<bool>,
}

/// How one worker's drain loop ended.
pub(crate) enum DrainEnd {
    /// The shared queue is empty; the worker retires healthy.
    Drained,
    /// A classification panicked outside the runner's catch boundary.
    /// The in-flight mutant was quarantined and emitted; the worker's
    /// harness state is suspect, so it retires and the supervisor decides
    /// whether to replace it.
    Crashed,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        suite: &'a TestSuite,
        mutants: &'a [Mutant],
        config: &'a MutationConfig,
        baseline: &'a GoldenBaseline,
        done: Vec<bool>,
    ) -> Self {
        Engine {
            suite,
            mutants,
            config,
            baseline,
            golden_index: StatusIndex::of(&baseline.golden),
            probe_indexes: baseline.probes.iter().map(StatusIndex::of).collect(),
            view_indexes: baseline
                .views
                .iter()
                .map(|(feature, view)| {
                    (
                        feature.as_str(),
                        ViewIndexes {
                            golden: StatusIndex::of(&view.golden),
                            probes: view.probe_goldens.iter().map(StatusIndex::of).collect(),
                        },
                    )
                })
                .collect(),
            next: AtomicUsize::new(0),
            done,
        }
    }

    /// The feature view (and its status indexes) for `mutant`, when
    /// coverage selection built one for its method.
    fn view_of(&self, mutant: &Mutant) -> Option<(&'a FeatureView, &ViewIndexes<'a>)> {
        let view = self.baseline.views.get(mutant.method())?;
        let indexes = self.view_indexes.get(mutant.method())?;
        Some((view, indexes))
    }

    /// True while unclaimed mutant indices remain on the shared queue.
    pub(crate) fn has_unclaimed_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.mutants.len()
    }

    /// One shard's work loop: pull the next unclaimed mutant index until
    /// the queue is drained. Slow mutants delay only their own slot;
    /// siblings keep pulling. Each classification runs inside
    /// `catch_unwind`, so a panic that escapes the runner (an
    /// engine-adjacent crash) costs exactly one mutant — quarantined as
    /// [`QuarantineReason::WorkerCrash`] and emitted like any other
    /// verdict — after which the loop returns [`DrainEnd::Crashed`] so
    /// the caller can retire this worker's (possibly corrupted) harness.
    pub(crate) fn drain(
        &self,
        factory: &dyn ComponentFactory,
        switch: &MutationSwitch,
        runner: &TestRunner,
        telemetry: &Telemetry,
        emit: &mut dyn FnMut(usize, MutantResult),
    ) -> DrainEnd {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(mutant) = self.mutants.get(index) else {
                return DrainEnd::Drained;
            };
            if self.done[index] {
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.classify(factory, switch, runner, telemetry, mutant)
            }));
            match outcome {
                Ok(status) => {
                    record_status(telemetry, &status);
                    emit(
                        index,
                        MutantResult {
                            mutant: mutant.clone(),
                            status,
                        },
                    );
                }
                Err(_panic) => {
                    let status = MutantStatus::Quarantined {
                        reason: QuarantineReason::WorkerCrash,
                    };
                    telemetry.incr("mutation.worker_crash");
                    record_status(telemetry, &status);
                    emit(
                        index,
                        MutantResult {
                            mutant: mutant.clone(),
                            status,
                        },
                    );
                    return DrainEnd::Crashed;
                }
            }
        }
    }

    /// Runs one mutant through the suite (and, if it stays alive, the
    /// probe suites) and classifies it.
    pub(crate) fn classify(
        &self,
        factory: &dyn ComponentFactory,
        switch: &MutationSwitch,
        runner: &TestRunner,
        telemetry: &Telemetry,
        mutant: &Mutant,
    ) -> MutantStatus {
        let mutant_span = telemetry.span_with("mutant", || mutant.to_string());
        switch.arm(mutant.plan.clone());
        // Coverage-matrix selection: mutants with a feature view execute
        // only the cases that can reach the mutated method; the rest are
        // statically identical to golden and skipped.
        let scoped = self.view_of(mutant);
        let (scope_suite, scope_golden, scope_index) = match scoped {
            Some((view, indexes)) => (&view.suite, &view.golden, &indexes.golden),
            None => (self.suite, &self.baseline.golden, &self.golden_index),
        };
        if let Some((view, _)) = scoped {
            if view.skipped > 0 {
                telemetry.incr_by("selection.skipped", view.skipped);
            }
        }
        let observed =
            runner.run_suite_under(factory, scope_suite, &mut TestLog::new(), mutant_span.id());
        // Harness stops describe the execution environment, not the
        // component's behaviour — quarantine before the kill classifier
        // so a timed-out mutant is never miscounted as a crash kill.
        let status = match quarantine_reason(
            scope_index,
            &observed,
            self.config.crash_quarantine_threshold,
        ) {
            Some(reason) => MutantStatus::Quarantined { reason },
            None => match first_difference(scope_golden, &observed) {
                Some((case_id, reason)) => MutantStatus::Killed {
                    reason,
                    by_case: case_id,
                },
                None => self.probe(factory, runner, telemetry, mutant, mutant_span.id()),
            },
        };
        mutant_span.finish();
        status
    }

    /// Re-attacks a mutant that survived the suite with the probe suites.
    /// The same quarantine-before-kill discipline applies here: a mutant
    /// that hangs or blows its budget only under probing yielded no
    /// behavioural verdict and lands in quarantine — previously its
    /// deadline-truncated transcript counted as a "difference" and the
    /// mutant was misfiled as `Survived`.
    fn probe(
        &self,
        factory: &dyn ComponentFactory,
        runner: &TestRunner,
        telemetry: &Telemetry,
        mutant: &Mutant,
        parent: SpanId,
    ) -> MutantStatus {
        // The probe phase gets its own span under the mutant, so the
        // attribution table can split first-suite time from re-attack
        // time.
        let probe_span = telemetry.at(parent).span("probe", mutant.method());
        let scoped = self.view_of(mutant);
        let (probes, probe_goldens, probe_indexes, probe_skipped) = match scoped {
            Some((view, indexes)) => (
                view.probes.as_slice(),
                view.probe_goldens.as_slice(),
                indexes.probes.as_slice(),
                Some(view.probe_skipped.as_slice()),
            ),
            None => (
                self.config.probe_suites.as_slice(),
                self.baseline.probes.as_slice(),
                self.probe_indexes.as_slice(),
                None,
            ),
        };
        for (probe_pos, ((probe, probe_golden), probe_index)) in probes
            .iter()
            .zip(probe_goldens.iter())
            .zip(probe_indexes.iter())
            .enumerate()
        {
            if let Some(skipped) = probe_skipped.and_then(|s| s.get(probe_pos)) {
                if *skipped > 0 {
                    telemetry.incr_by("selection.skipped", *skipped);
                }
            }
            let probed =
                runner.run_suite_under(factory, probe, &mut TestLog::new(), probe_span.id());
            if let Some(reason) =
                quarantine_reason(probe_index, &probed, self.config.crash_quarantine_threshold)
            {
                return MutantStatus::Quarantined { reason };
            }
            if first_difference(probe_golden, &probed).is_some() {
                return MutantStatus::Survived;
            }
        }
        MutantStatus::PresumedEquivalent
    }
}

/// Builds the per-shard runner: BIT mode, telemetry, budget — and, when
/// the budget carries a deadline, that shard's own watchdog thread.
pub(crate) fn build_runner(config: &MutationConfig, telemetry: &Telemetry) -> TestRunner {
    let runner = if config.bit_enabled {
        TestRunner::new()
    } else {
        TestRunner::without_bit()
    };
    runner
        .with_telemetry(telemetry.clone())
        .with_budget(config.budget)
}

/// Runs the golden suite and golden probe suites (switch disarmed — the
/// original program), records their case × feature coverage, and builds
/// the per-feature views when coverage selection is enabled.
pub(crate) fn run_golden(
    runner: &TestRunner,
    factory: &dyn ComponentFactory,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
    telemetry: &Telemetry,
) -> GoldenBaseline {
    let golden_span = telemetry.span("golden", factory.class_name());
    let (golden, coverage) =
        runner.run_suite_with_coverage_under(factory, suite, &mut TestLog::new(), golden_span.id());
    let mut probes = Vec::with_capacity(config.probe_suites.len());
    let mut probe_coverage = Vec::with_capacity(config.probe_suites.len());
    for probe in &config.probe_suites {
        let (result, matrix) = runner.run_suite_with_coverage_under(
            factory,
            probe,
            &mut TestLog::new(),
            golden_span.id(),
        );
        probes.push(result);
        probe_coverage.push(matrix);
    }
    golden_span.finish();
    let views = if config.coverage_selection {
        build_feature_views(
            suite,
            &golden,
            &config.probe_suites,
            &probes,
            &coverage,
            &probe_coverage,
            mutants,
        )
    } else {
        HashMap::new()
    };
    GoldenBaseline {
        golden,
        probes,
        coverage,
        views,
    }
}

/// Persists the golden run's coverage matrix next to the campaign
/// journal (`<journal>.coverage`), atomically, stamped with the campaign
/// fingerprint (`campaign <fp>` first line) so a stale sidecar left by a
/// previous campaign at the same path is detectable — see
/// [`load_campaign_coverage`]. Like every other durability consumer, a
/// write failure degrades instead of aborting the campaign — but loudly:
/// `harden.degraded` plus a dedicated `coverage.write_failed` counter
/// (surfaced in the harness-health table), and a `coverage.write_failed`
/// span naming the path and error in the flight recorder, so a silently
/// missing `.coverage` file can't masquerade as a healthy run.
pub(crate) fn persist_coverage(
    config: &MutationConfig,
    baseline: &GoldenBaseline,
    fingerprint: Option<u32>,
    telemetry: &Telemetry,
) {
    let Some(path) = &config.journal_path else {
        return;
    };
    let coverage_path = PathBuf::from(format!("{}.coverage", path.display()));
    let mut text = match fingerprint {
        Some(fp) => format!("campaign {fp:08x}\n"),
        None => String::new(),
    };
    text.push_str(&baseline.coverage.to_text());
    if let Err(error) = write_atomic(&coverage_path, text.as_bytes()) {
        telemetry.incr("harden.degraded");
        telemetry.incr("coverage.write_failed");
        telemetry
            .span_with("coverage.write_failed", || {
                format!("{}: {error}", coverage_path.display())
            })
            .finish();
    }
}

/// Loads a coverage sidecar persisted by a journaled campaign, validating
/// its provenance: the file's `campaign <fp>` stamp must match
/// `fingerprint`. A stamp mismatch — a stale sidecar left by a different
/// campaign at the same path — is refused rather than returned, and an
/// unstamped file (written before provenance stamping) is likewise
/// refused, so callers never mistake another campaign's matrix for this
/// one's.
///
/// # Errors
///
/// `Err` with a human-readable reason on read failure, a missing or
/// mismatched stamp, or a malformed matrix body.
pub fn load_campaign_coverage(
    path: impl AsRef<std::path::Path>,
    fingerprint: u32,
) -> Result<CoverageMatrix, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    let Some((first, body)) = text.split_once('\n') else {
        return Err(format!("{}: empty coverage sidecar", path.display()));
    };
    let Some(stamp) = first.strip_prefix("campaign ") else {
        return Err(format!(
            "{}: missing `campaign <fingerprint>` stamp",
            path.display()
        ));
    };
    let stamped = u32::from_str_radix(stamp, 16)
        .map_err(|_| format!("{}: malformed fingerprint stamp {stamp:?}", path.display()))?;
    if stamped != fingerprint {
        return Err(format!(
            "{}: stale coverage sidecar (stamped {stamped:08x}, campaign is {fingerprint:08x})",
            path.display()
        ));
    }
    CoverageMatrix::from_text(body).map_err(|e| format!("{}: {e}", path.display()))
}

/// Emits the per-status counters for one classified mutant.
pub(crate) fn record_status(telemetry: &Telemetry, status: &MutantStatus) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.incr(match status {
        MutantStatus::Killed {
            reason: KillReason::Crash,
            ..
        } => "mutant.killed.crash",
        MutantStatus::Killed {
            reason: KillReason::Assertion,
            ..
        } => "mutant.killed.assertion",
        MutantStatus::Killed {
            reason: KillReason::OutputDiff,
            ..
        } => "mutant.killed.output_diff",
        MutantStatus::Survived => "mutant.survived",
        MutantStatus::PresumedEquivalent => "mutant.equivalent.presumed",
        MutantStatus::Quarantined {
            reason: QuarantineReason::Timeout,
        } => "mutant.quarantined.timeout",
        MutantStatus::Quarantined {
            reason: QuarantineReason::Budget,
        } => "mutant.quarantined.budget",
        MutantStatus::Quarantined {
            reason: QuarantineReason::RepeatedCrash,
        } => "mutant.quarantined.repeated_crash",
        MutantStatus::Quarantined {
            reason: QuarantineReason::WorkerCrash,
        } => "mutant.quarantined.worker_crash",
        MutantStatus::Quarantined {
            reason: QuarantineReason::ShardAbort,
        } => "mutant.quarantined.shard_abort",
        MutantStatus::Quarantined {
            reason: QuarantineReason::ShardSignal,
        } => "mutant.quarantined.shard_signal",
        MutantStatus::Quarantined {
            reason: QuarantineReason::ShardUnresponsive,
        } => "mutant.quarantined.shard_unresponsive",
    });
    if status.is_quarantined() {
        telemetry.incr("mutation.quarantined");
    }
}

/// Final bookkeeping shared by both entry points: order check, the
/// equivalence gauge, and the assembled [`MutationRun`].
pub(crate) fn finish_run(
    telemetry: &Telemetry,
    results: Vec<MutantResult>,
    golden: SuiteResult,
) -> MutationRun {
    let equivalents = results.iter().filter(|r| r.status.is_equivalent()).count();
    telemetry.gauge("mutant.equivalent", equivalents as i64);
    MutationRun { results, golden }
}

/// Journal wiring for one run: opened (with torn-tail recovery) from
/// `config.journal_path`, it surfaces the replayed verdicts and appends
/// new ones. Journal I/O failures *degrade* — the campaign continues
/// without durability and `harden.degraded` is counted — because losing
/// the journal must never lose the run (the in-memory results stay
/// authoritative, exactly like the other retry-then-degrade consumers).
pub(crate) struct JournalState {
    inner: Option<CampaignJournal>,
    /// The campaign fingerprint, computed whenever a journal path is
    /// configured (even if opening it later degraded) — the provenance
    /// stamp for the coverage sidecar and derived round journals.
    fingerprint: Option<u32>,
    telemetry: Telemetry,
}

impl JournalState {
    /// `telemetry` is the campaign-scoped handle, so `journal` spans nest
    /// under the `mutation` span in the flight recorder.
    pub(crate) fn open(
        class_name: &str,
        suite: &TestSuite,
        mutants: &[Mutant],
        config: &MutationConfig,
        telemetry: &Telemetry,
    ) -> (JournalState, Vec<(usize, MutantStatus)>) {
        let telemetry = telemetry.clone();
        let Some(path) = &config.journal_path else {
            return (
                JournalState {
                    inner: None,
                    fingerprint: None,
                    telemetry,
                },
                Vec::new(),
            );
        };
        let open_span = telemetry.span("journal", "open");
        let fingerprint = campaign_fingerprint(class_name, suite, mutants, config);
        let resumed = if config.incremental {
            let features = crate::journal::method_fingerprints(class_name, suite, mutants, config);
            CampaignJournal::resume_incremental(path, fingerprint, &features, mutants.len()).map(
                |resume| {
                    if resume.rebuilt {
                        telemetry.incr("mutation.incremental_rebuild");
                    }
                    (resume.journal, resume.replayed)
                },
            )
        } else {
            CampaignJournal::resume(path, fingerprint, mutants.len())
        };
        open_span.finish();
        match resumed {
            Ok((journal, replayed)) => (
                JournalState {
                    inner: Some(journal),
                    fingerprint: Some(fingerprint),
                    telemetry,
                },
                replayed,
            ),
            Err(_) => {
                telemetry.incr("harden.degraded");
                (
                    JournalState {
                        inner: None,
                        fingerprint: Some(fingerprint),
                        telemetry,
                    },
                    Vec::new(),
                )
            }
        }
    }

    /// The campaign fingerprint (`Some` whenever a journal path was
    /// configured).
    pub(crate) fn fingerprint(&self) -> Option<u32> {
        self.fingerprint
    }

    /// Write-ahead append of one verdict; called by the supervisor before
    /// the verdict is merged into its slot.
    pub(crate) fn record(&mut self, index: usize, status: &MutantStatus) {
        if let Some(journal) = &mut self.inner {
            let _span = self.telemetry.span("journal", "append");
            if journal.record(index, status).is_err() {
                self.telemetry.incr("harden.degraded");
                self.inner = None;
            }
        }
    }
}

/// Emits the `campaign.progress` heartbeat: mutants done / queued /
/// quarantined, plus each worker's verdict count. The readings closure is
/// lazy, so a disabled handle pays nothing.
pub(crate) fn campaign_heartbeat(
    telemetry: &Telemetry,
    slots: &[Option<MutantResult>],
    done_by_worker: &[u64],
) {
    telemetry.snapshot("campaign.progress", || {
        let done = slots.iter().filter(|s| s.is_some()).count() as i64;
        let quarantined = slots
            .iter()
            .filter(|s| matches!(s, Some(r) if r.status.is_quarantined()))
            .count() as i64;
        let mut readings = vec![
            ("done".to_owned(), done),
            ("queued".to_owned(), slots.len() as i64 - done),
            ("quarantined".to_owned(), quarantined),
        ];
        for (worker, count) in done_by_worker.iter().enumerate() {
            readings.push((format!("w{worker}.done"), *count as i64));
        }
        readings
    });
}

/// Surfaces `worker_restarts` exhaustion: previously the campaign slid
/// silently into degraded completion; now the harness-health table gets a
/// `mutation.restarts_exhausted` row and the flight recorder a
/// `campaign.degraded` event recording how much work was left when the
/// budget died.
pub(crate) fn flag_restart_exhaustion(telemetry: &Telemetry, budget: usize, remaining: usize) {
    telemetry.incr("mutation.restarts_exhausted");
    telemetry.snapshot("campaign.degraded", || {
        vec![
            ("restarts_spent".to_owned(), budget as i64),
            ("queued".to_owned(), remaining as i64),
        ]
    });
}

/// Pre-fills the merge slots with journal-replayed verdicts. Their
/// classification counters are re-emitted (plus one `mutation.replayed`
/// each) so a resumed run's per-status counter totals match an
/// uninterrupted run's. Returns the slots and the done mask the engine
/// skips by.
pub(crate) fn replay_slots(
    mutants: &[Mutant],
    replayed: Vec<(usize, MutantStatus)>,
    telemetry: &Telemetry,
) -> (Vec<Option<MutantResult>>, Vec<bool>) {
    let mut slots: Vec<Option<MutantResult>> = Vec::new();
    slots.resize_with(mutants.len(), || None);
    let mut done = vec![false; mutants.len()];
    for (index, status) in replayed {
        if done[index] {
            continue;
        }
        record_status(telemetry, &status);
        telemetry.incr("mutation.replayed");
        slots[index] = Some(MutantResult {
            mutant: mutants[index].clone(),
            status,
        });
        done[index] = true;
    }
    (slots, done)
}

/// Sequential heartbeat cadence: one `campaign.progress` snapshot per
/// this many verdicts (plus a final one).
const HEARTBEAT_EVERY_VERDICTS: usize = 32;

/// Parallel heartbeat cadence: the supervisor emits a snapshot when at
/// least this long has passed since the previous one.
pub(crate) const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(200);

/// How long the supervisor blocks on the verdict channel before waking
/// to consider a heartbeat.
pub(crate) const SUPERVISOR_POLL: Duration = Duration::from_millis(100);

/// Messages workers stream to the supervising thread.
enum WorkerMsg {
    /// One classified mutant (including worker-crash quarantines) from
    /// the given worker; the supervisor journals it, then merges it into
    /// its slot.
    Verdict(usize, usize, MutantResult),
    /// The sending worker retired: queue drained, or crashed.
    Retired {
        /// True when the worker's drain ended in a contained crash (or a
        /// panic outside the drain loop entirely).
        crashed: bool,
    },
}

/// Runs a full mutation analysis, sequentially.
///
/// `switch` must be the same [`MutationSwitch`] the factory's components
/// read through — arming it is how a mutant becomes "compiled in". This
/// is the `workers = 1` instantiation of the sharded engine behind
/// [`run_mutation_analysis_parallel`]: same queue, same classifier, same
/// verdicts — it merely borrows the caller's factory/switch pair instead
/// of building per-worker ones.
///
/// # Examples
///
/// See the `concat-components` integration tests and the Table 2/3 benches
/// for end-to-end usage with real subjects.
pub fn run_mutation_analysis(
    factory: &dyn ComponentFactory,
    switch: &MutationSwitch,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
) -> MutationRun {
    let _hook_guard = config.silence_panics.then(PanicSilencer::install);
    let run_span = config.telemetry.span("mutation", factory.class_name());
    // Everything inside the campaign emits through the scoped handle, so
    // golden/journal/mutant spans nest under the `mutation` root.
    let scoped = config.telemetry.at(run_span.id());
    let telemetry = &scoped;
    let (mut journal, replayed) =
        JournalState::open(factory.class_name(), suite, mutants, config, telemetry);
    let runner = build_runner(config, telemetry);
    // Instrumented reads double as cancellation points: the watchdog's
    // token must be visible to the switch for a hung mutant to unwind.
    switch.set_cancel_token(runner.cancel_token().clone());
    switch.disarm();
    let baseline = run_golden(&runner, factory, suite, mutants, config, telemetry);
    persist_coverage(config, &baseline, journal.fingerprint(), telemetry);
    let (mut slots, done) = replay_slots(mutants, replayed, telemetry);
    let engine = Engine::new(suite, mutants, config, &baseline, done);
    // Crash containment without a replacement harness: the caller owns
    // this factory/switch pair, so after a contained crash the same
    // harness keeps draining. Progress is guaranteed — every crash
    // consumes (and quarantines) exactly one mutant.
    loop {
        let mut since_beat = 0usize;
        let mut emit = |index: usize, result: MutantResult| {
            journal.record(index, &result.status);
            slots[index] = Some(result);
            since_beat += 1;
            if since_beat >= HEARTBEAT_EVERY_VERDICTS {
                since_beat = 0;
                campaign_heartbeat(telemetry, &slots, &[]);
            }
        };
        if let DrainEnd::Drained = engine.drain(factory, switch, &runner, telemetry, &mut emit) {
            break;
        }
    }
    switch.disarm();
    switch.clear_cancel_token();
    campaign_heartbeat(telemetry, &slots, &[]);
    let results = collect_slots(mutants, slots);
    finish_run(telemetry, results, baseline.golden)
}

/// Collapses the merge slots into the final result vector. The engine
/// guarantees every slot was claimed, classified or replayed; should
/// that invariant ever break, the affected mutant is quarantined
/// (fail-safe) instead of panicking away an otherwise complete campaign.
pub(crate) fn collect_slots(
    mutants: &[Mutant],
    slots: Vec<Option<MutantResult>>,
) -> Vec<MutantResult> {
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or_else(|| MutantResult {
                mutant: mutants[index].clone(),
                status: MutantStatus::Quarantined {
                    reason: QuarantineReason::WorkerCrash,
                },
            })
        })
        .collect()
}

/// Runs a full mutation analysis across `config.workers` sharded workers.
///
/// Every worker owns its own component factory (built through the
/// [`ClonableFactory`] seam), [`MutationSwitch`], [`TestRunner`] and —
/// when the budget carries a deadline — watchdog thread and cancel token,
/// so a hanging mutant stalls only the worker that claimed it. Workers
/// pull mutant indices from a shared queue and results are merged back in
/// enumeration order, which makes the output **byte-identical for every
/// worker count**: same verdict vector, same score, same report tables.
///
/// The golden run and golden probe runs are computed once, up front, and
/// shared immutably. Each worker records telemetry into a private buffer
/// that is absorbed into `config.telemetry` in worker spawn order after
/// the pool retires ([`Telemetry::absorb`]), so counter totals and span
/// histograms aggregate across workers; a `mutation.workers` gauge records
/// the effective worker count.
///
/// # Supervision and durability
///
/// Workers stream each verdict to a supervising loop on the calling
/// thread, which journals it (when `config.journal_path` is set) before
/// merging it into its enumeration-order slot. A worker panic is
/// contained: the in-flight mutant is quarantined with
/// [`QuarantineReason::WorkerCrash`], and the supervisor respawns a
/// replacement worker while the `config.worker_restarts` budget lasts —
/// once exhausted the campaign degrades to the surviving workers (and,
/// if all are gone, finishes inline on the calling thread) rather than
/// aborting and discarding partial results. On restart with the same
/// journal path, verified verdicts are replayed and only unfinished
/// mutants re-execute; the merged output stays byte-identical to an
/// uninterrupted run.
pub fn run_mutation_analysis_parallel(
    shards: &dyn ClonableFactory,
    suite: &TestSuite,
    mutants: &[Mutant],
    config: &MutationConfig,
) -> MutationRun {
    if let IsolationMode::Process(spec) = &config.isolation {
        return crate::shard::run_process_shards(shards, suite, mutants, config, spec);
    }
    let _hook_guard = config.silence_panics.then(PanicSilencer::install);
    let run_span = config.telemetry.span("mutation", shards.class_name());
    let scoped = config.telemetry.at(run_span.id());
    let telemetry = &scoped;
    let (mut journal, replayed) =
        JournalState::open(shards.class_name(), suite, mutants, config, telemetry);

    // Golden shard: the baseline is computed once and shared read-only.
    let golden_switch = MutationSwitch::new();
    let golden_factory = shards.build_factory(&golden_switch);
    let runner = build_runner(config, telemetry);
    golden_switch.set_cancel_token(runner.cancel_token().clone());
    let baseline = run_golden(
        &runner,
        golden_factory.as_ref(),
        suite,
        mutants,
        config,
        telemetry,
    );
    golden_switch.clear_cancel_token();
    persist_coverage(config, &baseline, journal.fingerprint(), telemetry);

    // The gauge reflects the configured pool for the whole campaign (not
    // the post-replay remainder), so a resumed run renders the same
    // harness-health row as the uninterrupted one.
    let workers = config.workers.clamp(1, mutants.len().max(1));
    telemetry.gauge("mutation.workers", workers as i64);

    let (mut slots, done) = replay_slots(mutants, replayed, telemetry);
    let engine = Engine::new(suite, mutants, config, &baseline, done);
    let remaining = slots.iter().filter(|slot| slot.is_none()).count();

    // One private event buffer per worker (including respawned ones),
    // absorbed in spawn order after the pool retires so the parent's
    // event stream is reproducible.
    let mut sinks: Vec<Arc<MemorySink>> = Vec::new();
    let mut done_by_worker: Vec<u64> = vec![0; workers];
    if remaining > 0 {
        std::thread::scope(|scope| {
            let engine = &engine;
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            let spawn_worker = |worker: usize, sink: Option<Arc<MemorySink>>| {
                let tx = tx.clone();
                scope.spawn(move || {
                    let worker_telemetry = match &sink {
                        Some(sink) => Telemetry::new(sink.clone()),
                        None => Telemetry::disabled(),
                    };
                    let verdict_tx = tx.clone();
                    // The drain already contains classifier panics; this
                    // outer catch additionally contains harness panics
                    // (factory construction, runner setup), so no panic
                    // path can take the campaign down with it.
                    let body = AssertUnwindSafe(|| {
                        // The worker span roots this worker's private
                        // stream; absorb_under grafts it beneath the
                        // campaign span, and the trace exporter gives it
                        // its own thread track.
                        let worker_span =
                            worker_telemetry.span_with("worker", || format!("w{worker}"));
                        let worker_scoped = worker_telemetry.at(worker_span.id());
                        let switch = MutationSwitch::new();
                        let factory = shards.build_factory(&switch);
                        let runner = build_runner(engine.config, &worker_scoped);
                        switch.set_cancel_token(runner.cancel_token().clone());
                        let mut emit = |index: usize, result: MutantResult| {
                            let _ = verdict_tx.send(WorkerMsg::Verdict(worker, index, result));
                        };
                        let end = engine.drain(
                            factory.as_ref(),
                            &switch,
                            &runner,
                            &worker_scoped,
                            &mut emit,
                        );
                        switch.disarm();
                        switch.clear_cancel_token();
                        worker_span.finish();
                        end
                    });
                    let crashed = !matches!(catch_unwind(body), Ok(DrainEnd::Drained));
                    let _ = tx.send(WorkerMsg::Retired { crashed });
                });
            };
            let mut fresh_sink = || {
                let sink = telemetry.is_enabled().then(|| Arc::new(MemorySink::new()));
                if let Some(sink) = &sink {
                    sinks.push(sink.clone());
                }
                sink
            };
            let mut active = 0usize;
            let mut next_worker = 0usize;
            for _ in 0..workers {
                spawn_worker(next_worker, fresh_sink());
                next_worker += 1;
                active += 1;
            }
            // Supervisor: per-sender FIFO guarantees a worker's verdicts
            // all arrive before its retirement message, so when the last
            // worker retires every streamed verdict has been merged. The
            // bounded wait keeps the heartbeat alive while a slow mutant
            // holds every worker busy.
            let mut restarts_left = config.worker_restarts;
            let mut exhaustion_flagged = false;
            let mut last_beat = Instant::now();
            while active > 0 {
                match rx.recv_timeout(SUPERVISOR_POLL) {
                    Ok(WorkerMsg::Verdict(worker, index, result)) => {
                        journal.record(index, &result.status);
                        slots[index] = Some(result);
                        if worker >= done_by_worker.len() {
                            done_by_worker.resize(worker + 1, 0);
                        }
                        done_by_worker[worker] += 1;
                    }
                    Ok(WorkerMsg::Retired { crashed }) => {
                        active -= 1;
                        if crashed && engine.has_unclaimed_work() {
                            if restarts_left > 0 {
                                restarts_left -= 1;
                                spawn_worker(next_worker, fresh_sink());
                                next_worker += 1;
                                active += 1;
                            } else if !exhaustion_flagged {
                                exhaustion_flagged = true;
                                flag_restart_exhaustion(
                                    telemetry,
                                    config.worker_restarts,
                                    slots.iter().filter(|s| s.is_none()).count(),
                                );
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
                if telemetry.is_enabled() && last_beat.elapsed() >= HEARTBEAT_INTERVAL {
                    last_beat = Instant::now();
                    campaign_heartbeat(telemetry, &slots, &done_by_worker);
                }
            }
        });
    }
    // Degraded completion: if the restart budget ran out with work still
    // unclaimed (every worker crashed), finish inline on this thread —
    // partial results are never discarded.
    while engine.has_unclaimed_work() {
        let switch = MutationSwitch::new();
        let factory = shards.build_factory(&switch);
        let inline_runner = build_runner(config, telemetry);
        switch.set_cancel_token(inline_runner.cancel_token().clone());
        let mut emit = |index: usize, result: MutantResult| {
            journal.record(index, &result.status);
            slots[index] = Some(result);
        };
        let end = engine.drain(
            factory.as_ref(),
            &switch,
            &inline_runner,
            telemetry,
            &mut emit,
        );
        switch.disarm();
        switch.clear_cancel_token();
        if let DrainEnd::Drained = end {
            break;
        }
    }
    campaign_heartbeat(telemetry, &slots, &done_by_worker);
    // The merge span covers absorbing the per-worker streams (grafted
    // under the campaign span so worker trees stay causal subtrees) and
    // collapsing the verdict slots.
    let merge_span = telemetry.span("merge", shards.class_name());
    for sink in sinks {
        telemetry.absorb_under(&sink.events(), run_span.id());
    }
    let results = collect_slots(mutants, slots);
    merge_span.finish();
    finish_run(telemetry, results, baseline.golden)
}

/// Decides whether an observed run must be quarantined: any harness stop
/// (deadline/budget) the golden run does not share, or — when a threshold
/// is configured — enough mutant-only crashes to look
/// environment-threatening. `golden` is the pre-built [`StatusIndex`] of
/// the matching golden run.
fn quarantine_reason(
    golden: &StatusIndex<'_>,
    observed: &SuiteResult,
    crash_threshold: Option<usize>,
) -> Option<QuarantineReason> {
    for case in &observed.cases {
        match &case.status {
            CaseStatus::DeadlineExceeded { .. }
                if !matches!(
                    golden.status(case.case_id),
                    Some(CaseStatus::DeadlineExceeded { .. })
                ) =>
            {
                return Some(QuarantineReason::Timeout);
            }
            CaseStatus::BudgetExhausted { .. }
                if !matches!(
                    golden.status(case.case_id),
                    Some(CaseStatus::BudgetExhausted { .. })
                ) =>
            {
                return Some(QuarantineReason::Budget);
            }
            _ => {}
        }
    }
    let threshold = crash_threshold?;
    let mutant_only_crashes = observed
        .cases
        .iter()
        .filter(|c| {
            matches!(c.status, CaseStatus::Panicked { .. })
                && !matches!(golden.status(c.case_id), Some(CaseStatus::Panicked { .. }))
        })
        .count();
    (threshold > 0 && mutant_only_crashes >= threshold).then_some(QuarantineReason::RepeatedCrash)
}

/// Finds the first distinguishing case and derives the kill reason per the
/// paper's three criteria.
fn first_difference(golden: &SuiteResult, observed: &SuiteResult) -> Option<(usize, KillReason)> {
    let diff = differing_cases(golden, observed);
    let case_id = *diff.first()?;
    let g = golden.cases.iter().find(|c| c.case_id == case_id)?;
    let o = observed.cases.iter().find(|c| c.case_id == case_id)?;
    let reason = match (&o.status, &g.status) {
        (CaseStatus::Panicked { .. }, _) => KillReason::Crash,
        (CaseStatus::AssertionViolated { .. }, CaseStatus::AssertionViolated { .. }) => {
            // Both runs violate an assertion but transcripts differ: the
            // distinguishing signal is the output, not the assertion.
            KillReason::OutputDiff
        }
        (CaseStatus::AssertionViolated { .. }, _) => KillReason::Assertion,
        _ => KillReason::OutputDiff,
    };
    Some((case_id, reason))
}

/// Installs a silent panic hook and restores the previous hook on drop.
///
/// Mutant executions are *expected* to panic (that is a kill signal);
/// without this, a Table-2 scale run prints thousands of backtraces.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

pub(crate) struct PanicSilencer {
    previous: Option<PanicHook>,
}

impl PanicSilencer {
    pub(crate) fn install() -> Self {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        PanicSilencer {
            previous: Some(previous),
        }
    }
}

impl Drop for PanicSilencer {
    fn drop(&mut self) {
        if let Some(prev) = self.previous.take() {
            std::panic::set_hook(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_mutants;
    use crate::fault::VarEnv;
    use crate::inventory::{ClassInventory, MethodInventory};
    use concat_bit::{BitControl, BuiltInTest, StateReport, TestableComponent};
    use concat_driver::{MethodCall, SuiteStats, TestCase};
    use concat_runtime::{
        args, unknown_method, AssertionViolation, Component, InvokeResult, TestException, Value,
    };

    /// Accumulator with one instrumented method: `AddTwice(q)` adds `q`
    /// twice using a local `step` read through two sites.
    struct Acc {
        total: i64,
        limit: i64,
        ctl: BitControl,
        switch: MutationSwitch,
    }

    impl Component for Acc {
        fn class_name(&self) -> &'static str {
            "Acc"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["AddTwice", "Total", "~Acc"]
        }
        fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
            match m {
                "AddTwice" => {
                    let q = args::int(m, a, 0)?;
                    let step = q; // local L = {step}; G = {total, limit}
                    let env = VarEnv::new()
                        .bind("step", step)
                        .bind("total", self.total)
                        .bind("limit", self.limit);
                    let s1 = self.switch.read_int("AddTwice", 0, "step", step, &env);
                    self.total += s1;
                    let s2 = self.switch.read_int("AddTwice", 1, "step", step, &env);
                    // Site 2 feeds an array index to provoke crashes on
                    // wild replacements.
                    let idx = self.switch.read_int("AddTwice", 2, "step", step, &env);
                    let table = [0i64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
                    let bonus = table[usize::try_from(idx).expect("index")];
                    self.total += s2 + bonus - bonus;
                    Ok(Value::Int(self.total))
                }
                "Total" => Ok(Value::Int(self.total)),
                "~Acc" => Ok(Value::Null),
                _ => Err(unknown_method(self.class_name(), m)),
            }
        }
    }

    impl BuiltInTest for Acc {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            concat_bit::check(
                &self.ctl,
                concat_runtime::AssertionKind::Invariant,
                "Acc",
                "",
                "total <= limit",
                self.total <= self.limit,
            )
        }
        fn reporter(&self) -> StateReport {
            let mut r = StateReport::new();
            r.set("total", Value::Int(self.total));
            r
        }
    }

    struct AccFactory {
        switch: MutationSwitch,
    }

    impl ComponentFactory for AccFactory {
        fn class_name(&self) -> &str {
            "Acc"
        }
        fn construct(
            &self,
            constructor: &str,
            _args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Acc" => Ok(Box::new(Acc {
                    total: 0,
                    limit: 1_000,
                    ctl,
                    switch: self.switch.clone(),
                })),
                other => Err(unknown_method("Acc", other)),
            }
        }
    }

    fn inventory() -> ClassInventory {
        ClassInventory::new("Acc")
            .globals(["total", "limit"])
            .method(
                MethodInventory::new("AddTwice")
                    .locals(["step"])
                    .globals_used(["total", "limit"])
                    .site(0, "step", "first add")
                    .site(1, "step", "second add")
                    .site(2, "step", "table index"),
            )
    }

    fn suite(q: i64) -> TestSuite {
        TestSuite {
            class_name: "Acc".into(),
            seed: 0,
            cases: vec![TestCase {
                id: 0,
                transaction_index: 0,
                node_path: vec![],
                constructor: MethodCall::generated("m1", "Acc", vec![]),
                calls: vec![
                    MethodCall::generated("m2", "AddTwice", vec![Value::Int(q)]),
                    MethodCall::generated("m3", "Total", vec![]),
                    MethodCall::generated("m4", "~Acc", vec![]),
                ],
            }],
            stats: SuiteStats::default(),
        }
    }

    fn analyze(q: i64, probes: Vec<TestSuite>) -> MutationRun {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        run_mutation_analysis(
            &factory,
            &switch,
            &suite(q),
            &mutants,
            &MutationConfig {
                probe_suites: probes,
                ..MutationConfig::default()
            },
        )
    }

    #[test]
    fn most_mutants_die_with_a_distinguishing_input() {
        let run = analyze(5, vec![]);
        assert!(run.total() > 20);
        // With q = 5, replacing step by 0/1/-1/total/limit or negating it
        // changes the returned totals; MAXINT / MININT crash on the table
        // index.
        assert!(run.score() > 0.8, "score was {}", run.score());
        assert!(run.killed() + run.survived() + run.equivalent() == run.total());
    }

    #[test]
    fn crash_kills_detected() {
        let run = analyze(5, vec![]);
        let crash_kills = run
            .results
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    MutantStatus::Killed {
                        reason: KillReason::Crash,
                        ..
                    }
                )
            })
            .count();
        assert!(crash_kills > 0, "MAXINT/MININT table index must crash");
    }

    #[test]
    fn assertion_kills_detected() {
        // limit = 1000; replacing step with `limit` makes total exceed the
        // invariant bound after two adds.
        let run = analyze(5, vec![]);
        assert!(run.killed_by_assertion() > 0);
    }

    #[test]
    fn zero_input_leaves_equivalent_like_survivors() {
        // With q = 0, "replace step by 0" and "replace step by total(=0)"
        // are indistinguishable on this suite.
        let run = analyze(0, vec![]);
        assert!(run.equivalent() > 0);
        assert!(run.score() < 1.0 || run.equivalent() > 0);
    }

    #[test]
    fn probing_separates_survivors_from_equivalents() {
        // Suite with q = 0 leaves many alive; probing with q = 7
        // distinguishes the non-equivalent ones.
        let run_without = analyze(0, vec![]);
        let run_with = analyze(0, vec![suite(7)]);
        assert!(run_with.survived() > 0, "probe must expose genuine escapes");
        assert!(
            run_with.equivalent() < run_without.equivalent(),
            "probing must demote some presumed equivalents"
        );
    }

    #[test]
    fn score_formula() {
        let run = analyze(5, vec![]);
        let expected = run.killed() as f64 / (run.total() - run.equivalent()) as f64;
        assert!((run.score() - expected).abs() < 1e-12);
    }

    #[test]
    fn golden_suite_passes() {
        let run = analyze(5, vec![]);
        assert_eq!(run.golden.failed(), 0);
    }

    #[test]
    fn kill_reason_display() {
        assert_eq!(KillReason::Crash.to_string(), "crash");
        assert_eq!(KillReason::Assertion.to_string(), "assertion violation");
        assert_eq!(KillReason::OutputDiff.to_string(), "output difference");
        assert_eq!(QuarantineReason::Timeout.to_string(), "timeout");
        assert_eq!(QuarantineReason::Budget.to_string(), "budget");
        assert_eq!(
            QuarantineReason::RepeatedCrash.to_string(),
            "repeated crash"
        );
        assert_eq!(QuarantineReason::WorkerCrash.to_string(), "worker crash");
    }

    #[test]
    fn crash_threshold_quarantines_instead_of_killing() {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let run = run_mutation_analysis(
            &factory,
            &switch,
            &suite(5),
            &mutants,
            &MutationConfig {
                crash_quarantine_threshold: Some(1),
                ..MutationConfig::default()
            },
        );
        // Every crash-killing mutant (MAXINT/MININT table index) now lands
        // in quarantine instead.
        assert!(run.quarantined() > 0);
        let crash_kills = run
            .results
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    MutantStatus::Killed {
                        reason: KillReason::Crash,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(crash_kills, 0);
        assert!(run
            .results
            .iter()
            .filter(|r| r.status.is_quarantined())
            .all(|r| r.status
                == MutantStatus::Quarantined {
                    reason: QuarantineReason::RepeatedCrash
                }));
        assert_eq!(
            run.killed() + run.survived() + run.equivalent() + run.quarantined(),
            run.total()
        );
        // Quarantined mutants leave the score denominator.
        let expected =
            run.killed() as f64 / (run.total() - run.equivalent() - run.quarantined()) as f64;
        assert!((run.score() - expected).abs() < 1e-12);
    }

    #[test]
    fn default_config_keeps_paper_semantics() {
        let run = analyze(5, vec![]);
        assert_eq!(
            run.quarantined(),
            0,
            "no budget, no threshold: no quarantine"
        );
    }

    #[test]
    fn switch_is_disarmed_after_analysis() {
        let switch = MutationSwitch::new();
        let factory = AccFactory {
            switch: switch.clone(),
        };
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let _ = run_mutation_analysis(
            &factory,
            &switch,
            &suite(3),
            &mutants,
            &MutationConfig::default(),
        );
        assert!(switch.armed().is_none());
    }

    /// The sharding seam for `Acc`: builds a fresh factory bound to the
    /// worker's own switch.
    struct AccShards;

    impl ClonableFactory for AccShards {
        fn class_name(&self) -> &str {
            "Acc"
        }
        fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
            Box::new(AccFactory {
                switch: switch.clone(),
            })
        }
    }

    #[test]
    fn parallel_verdicts_match_sequential_for_every_worker_count() {
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let sequential = analyze(5, vec![suite(7)]);
        for workers in [1, 2, 8] {
            let run = run_mutation_analysis_parallel(
                &AccShards,
                &suite(5),
                &mutants,
                &MutationConfig {
                    workers,
                    probe_suites: vec![suite(7)],
                    ..MutationConfig::default()
                },
            );
            assert_eq!(
                run.results, sequential.results,
                "workers = {workers}: verdict vector must be byte-identical"
            );
            assert_eq!(run.score(), sequential.score(), "workers = {workers}");
            assert_eq!(run.golden.cases.len(), sequential.golden.cases.len());
        }
    }

    #[test]
    fn parallel_telemetry_aggregates_across_workers() {
        let sink = Arc::new(MemorySink::new());
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let run = run_mutation_analysis_parallel(
            &AccShards,
            &suite(5),
            &mutants,
            &MutationConfig {
                workers: 4,
                telemetry: Telemetry::new(sink.clone()),
                ..MutationConfig::default()
            },
        );
        // One "mutant" span per mutant, regardless of which worker ran it.
        assert_eq!(sink.span_count("mutant"), run.total());
        assert_eq!(sink.span_count("golden"), 1);
        assert_eq!(sink.gauge_value("mutation.workers"), Some(4));
        let classified = sink.counter_total("mutant.killed.crash")
            + sink.counter_total("mutant.killed.assertion")
            + sink.counter_total("mutant.killed.output_diff")
            + sink.counter_total("mutant.survived")
            + sink.counter_total("mutant.equivalent.presumed")
            + sink.counter_total("mutant.quarantined.timeout")
            + sink.counter_total("mutant.quarantined.budget")
            + sink.counter_total("mutant.quarantined.repeated_crash");
        assert_eq!(classified as usize, run.total());
    }

    /// `Acc` behind a reporter that panics when the accumulated total has
    /// gone negative. The reporter runs *outside* the runner's
    /// `catch_unwind` boundary, so a mutant driving the total negative
    /// (BitNeg/MININT on the add sites) takes the whole worker down —
    /// the crash-containment vehicle.
    struct GrenadeAcc {
        inner: Acc,
    }

    impl Component for GrenadeAcc {
        fn class_name(&self) -> &'static str {
            self.inner.class_name()
        }
        fn method_names(&self) -> Vec<&'static str> {
            self.inner.method_names()
        }
        fn invoke(&mut self, m: &str, a: &[Value]) -> InvokeResult {
            self.inner.invoke(m, a)
        }
    }

    impl BuiltInTest for GrenadeAcc {
        fn bit_control(&self) -> &BitControl {
            self.inner.bit_control()
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            self.inner.invariant_test()
        }
        fn reporter(&self) -> StateReport {
            assert!(
                self.inner.total >= 0,
                "grenade reporter: total went negative"
            );
            self.inner.reporter()
        }
    }

    struct GrenadeFactory {
        switch: MutationSwitch,
    }

    impl ComponentFactory for GrenadeFactory {
        fn class_name(&self) -> &str {
            "Acc"
        }
        fn construct(
            &self,
            constructor: &str,
            _args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Acc" => Ok(Box::new(GrenadeAcc {
                    inner: Acc {
                        total: 0,
                        limit: 1_000,
                        ctl,
                        switch: self.switch.clone(),
                    },
                })),
                other => Err(unknown_method("Acc", other)),
            }
        }
    }

    struct GrenadeShards;

    impl ClonableFactory for GrenadeShards {
        fn class_name(&self) -> &str {
            "Acc"
        }
        fn build_factory(&self, switch: &MutationSwitch) -> Box<dyn ComponentFactory> {
            Box::new(GrenadeFactory {
                switch: switch.clone(),
            })
        }
    }

    /// Indices of the grenade run's worker-crash quarantines, after
    /// checking they exist and every other verdict matches the panic-free
    /// baseline.
    fn assert_contained(run: &MutationRun, baseline: &MutationRun) -> Vec<usize> {
        let crashed: Vec<usize> = run
            .results
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.status
                    == MutantStatus::Quarantined {
                        reason: QuarantineReason::WorkerCrash,
                    }
            })
            .map(|(index, _)| index)
            .collect();
        assert!(!crashed.is_empty(), "grenade mutants must crash a worker");
        assert_eq!(run.results.len(), baseline.results.len());
        for (index, (got, want)) in run.results.iter().zip(&baseline.results).enumerate() {
            if crashed.contains(&index) {
                continue;
            }
            assert_eq!(got, want, "non-crashing mutant {index} must be unaffected");
        }
        crashed
    }

    #[test]
    fn sequential_worker_crash_quarantines_only_inflight_mutant() {
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let baseline = analyze(5, vec![]);
        let switch = MutationSwitch::new();
        let factory = GrenadeFactory {
            switch: switch.clone(),
        };
        let sink = Arc::new(MemorySink::new());
        let run = run_mutation_analysis(
            &factory,
            &switch,
            &suite(5),
            &mutants,
            &MutationConfig {
                telemetry: Telemetry::new(sink.clone()),
                ..MutationConfig::default()
            },
        );
        let crashed = assert_contained(&run, &baseline);
        assert_eq!(
            sink.counter_total("mutation.worker_crash") as usize,
            crashed.len()
        );
        assert_eq!(
            sink.counter_total("mutant.quarantined.worker_crash") as usize,
            crashed.len()
        );
        assert!(switch.armed().is_none(), "switch disarmed after crashes");
    }

    #[test]
    fn parallel_worker_crashes_are_contained_and_respawned() {
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let baseline = analyze(5, vec![]);
        for workers in [1, 2, 4] {
            let sink = Arc::new(MemorySink::new());
            let run = run_mutation_analysis_parallel(
                &GrenadeShards,
                &suite(5),
                &mutants,
                &MutationConfig {
                    workers,
                    telemetry: Telemetry::new(sink.clone()),
                    ..MutationConfig::default()
                },
            );
            let crashed = assert_contained(&run, &baseline);
            assert_eq!(
                sink.counter_total("mutation.worker_crash") as usize,
                crashed.len(),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn exhausted_restart_budget_degrades_but_still_completes() {
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let baseline = analyze(5, vec![]);
        let run = run_mutation_analysis_parallel(
            &GrenadeShards,
            &suite(5),
            &mutants,
            &MutationConfig {
                workers: 2,
                worker_restarts: 0,
                ..MutationConfig::default()
            },
        );
        // No respawns: once both workers crash, the campaign finishes
        // inline on the calling thread — never aborting with partial
        // results discarded.
        assert_contained(&run, &baseline);
    }

    #[test]
    fn journaled_campaign_resumes_byte_identical() {
        let dir = std::env::temp_dir().join("concat-mutation-analysis-resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("acc.journal");
        let mutants = enumerate_mutants(&inventory(), &["AddTwice"]);
        let config = |sink: &Arc<MemorySink>| MutationConfig {
            workers: 2,
            journal_path: Some(path.clone()),
            telemetry: Telemetry::new(sink.clone()),
            ..MutationConfig::default()
        };
        let sink = Arc::new(MemorySink::new());
        let first = run_mutation_analysis_parallel(&AccShards, &suite(5), &mutants, &config(&sink));
        assert_eq!(sink.counter_total("mutation.replayed"), 0);

        // The journal now holds every verdict: a rerun replays them all
        // and produces a byte-identical run without re-executing mutants.
        let sink = Arc::new(MemorySink::new());
        let again = run_mutation_analysis_parallel(&AccShards, &suite(5), &mutants, &config(&sink));
        assert_eq!(again.results, first.results);
        assert_eq!(again.score(), first.score());
        assert_eq!(
            sink.counter_total("mutation.replayed") as usize,
            mutants.len()
        );
        assert_eq!(sink.gauge_value("mutation.workers"), Some(2));

        // A different campaign fingerprint (different suite) resets the
        // journal instead of replaying foreign verdicts.
        let sink = Arc::new(MemorySink::new());
        let other = run_mutation_analysis_parallel(&AccShards, &suite(7), &mutants, &config(&sink));
        assert_eq!(sink.counter_total("mutation.replayed"), 0);
        assert_eq!(other.total(), mutants.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Component whose instrumented site is reached only by `Spin`: the
    /// main suite exercises just `Idle`, so a spin-inducing mutant stays
    /// alive until the equivalence probes call `Spin`.
    struct Napper {
        ctl: BitControl,
        switch: MutationSwitch,
    }

    impl Component for Napper {
        fn class_name(&self) -> &'static str {
            "Napper"
        }
        fn method_names(&self) -> Vec<&'static str> {
            vec!["Idle", "Spin", "~Napper"]
        }
        fn invoke(&mut self, m: &str, _a: &[Value]) -> InvokeResult {
            match m {
                "Idle" => Ok(Value::Int(0)),
                "Spin" => {
                    let env = VarEnv::new().bind("go", 1);
                    loop {
                        // The instrumented read is a cancellation point:
                        // a mutant forcing `go <= 0` loops here until the
                        // watchdog fires.
                        let go = self.switch.read_int("Spin", 0, "go", 1, &env);
                        if go > 0 {
                            return Ok(Value::Int(go));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                "~Napper" => Ok(Value::Null),
                _ => Err(unknown_method(self.class_name(), m)),
            }
        }
    }

    impl BuiltInTest for Napper {
        fn bit_control(&self) -> &BitControl {
            &self.ctl
        }
        fn invariant_test(&self) -> Result<(), AssertionViolation> {
            Ok(())
        }
        fn reporter(&self) -> StateReport {
            StateReport::new()
        }
    }

    struct NapperFactory {
        switch: MutationSwitch,
    }

    impl ComponentFactory for NapperFactory {
        fn class_name(&self) -> &str {
            "Napper"
        }
        fn construct(
            &self,
            constructor: &str,
            _args: &[Value],
            ctl: BitControl,
        ) -> Result<Box<dyn TestableComponent>, TestException> {
            match constructor {
                "Napper" => Ok(Box::new(Napper {
                    ctl,
                    switch: self.switch.clone(),
                })),
                other => Err(unknown_method("Napper", other)),
            }
        }
    }

    fn napper_suite(call: &str) -> TestSuite {
        TestSuite {
            class_name: "Napper".into(),
            seed: 0,
            cases: vec![TestCase {
                id: 0,
                transaction_index: 0,
                node_path: vec![],
                constructor: MethodCall::generated("m1", "Napper", vec![]),
                calls: vec![
                    MethodCall::generated("m2", call, vec![]),
                    MethodCall::generated("m3", "~Napper", vec![]),
                ],
            }],
            stats: SuiteStats::default(),
        }
    }

    #[test]
    fn mutant_hanging_only_under_probes_is_quarantined_not_survived() {
        let switch = MutationSwitch::new();
        let factory = NapperFactory {
            switch: switch.clone(),
        };
        let inventory = ClassInventory::new("Napper").method(
            MethodInventory::new("Spin")
                .locals(["go"])
                .site(0, "go", "loop guard"),
        );
        let mutants = enumerate_mutants(&inventory, &["Spin"]);
        let run = run_mutation_analysis(
            &factory,
            &switch,
            &napper_suite("Idle"),
            &mutants,
            &MutationConfig {
                probe_suites: vec![napper_suite("Spin")],
                budget: Budget::unlimited().with_deadline(std::time::Duration::from_millis(100)),
                ..MutationConfig::default()
            },
        );
        // The main suite never reaches the instrumented site, so every
        // mutant reaches the probe phase; the ones forcing `go <= 0` hang
        // there. Those hangs are harness stops, not behavioural evidence:
        // they must land in quarantine, not be misfiled as `Survived`
        // because the deadline truncated the probe transcript.
        assert!(
            run.quarantined() > 0,
            "probe-phase hangs must be quarantined: {:?}",
            run.results
        );
        for result in &run.results {
            if result.status.is_quarantined() {
                assert_eq!(
                    result.status,
                    MutantStatus::Quarantined {
                        reason: QuarantineReason::Timeout
                    }
                );
            }
        }
        // Before the fix every hang above was misfiled as `Survived`; the
        // genuine survivors (e.g. `go -> MAXINT`, which exits with a
        // different return value) are the only ones allowed to remain.
        assert!(
            run.quarantined() >= 2,
            "both `go -> 0` and `go -> -1` hang under probing: {:?}",
            run.results
        );
    }
}
