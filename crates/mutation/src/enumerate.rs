//! Mechanical mutant enumeration per the Table-1 operator definitions.
//!
//! For every instrumented use site of a non-interface variable in a target
//! method `R2`:
//!
//! * `IndVarBitNeg` → one mutant (bitwise negation at the use);
//! * `IndVarRepGlob` → one mutant per attribute in `G(R2)`;
//! * `IndVarRepLoc` → one mutant per *other* local in `L(R2)`;
//! * `IndVarRepExt` → one mutant per attribute in `E(R2)`;
//! * `IndVarRepReq` → one mutant per required constant in `RC`.

use crate::fault::{FaultPlan, Replacement};
use crate::inventory::ClassInventory;
use crate::operators::{MutationOperator, ReqConst};
use std::fmt;

/// One enumerated mutant: operator provenance plus the executable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutant {
    /// Sequential id within the enumeration.
    pub id: usize,
    /// The operator that produced this mutant.
    pub operator: MutationOperator,
    /// The injected fault.
    pub plan: FaultPlan,
}

impl Mutant {
    /// The method this mutant lives in.
    pub fn method(&self) -> &str {
        &self.plan.method
    }
}

impl fmt::Display for Mutant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} [{}] {}", self.id, self.operator, self.plan)
    }
}

/// Enumerates every mutant for the given target methods of `inventory`.
///
/// `target_methods` selects which methods receive faults (the paper applies
/// the operators to a chosen method subset per experiment); pass the full
/// method list for exhaustive enumeration. Methods without an inventory
/// entry contribute nothing.
///
/// The enumeration is deterministic: methods in `target_methods` order,
/// sites in id order, operators in Table-1 order, replacements in
/// declaration order.
///
/// # Examples
///
/// ```
/// use concat_mutation::{enumerate_mutants, ClassInventory, MethodInventory};
///
/// let inv = ClassInventory::new("C")
///     .globals(["count"])
///     .method(
///         MethodInventory::new("M")
///             .locals(["i", "j"])
///             .globals_used(["count"])
///             .site(0, "i", "index"),
///     );
/// let mutants = enumerate_mutants(&inv, &["M"]);
/// // 1 BitNeg + 1 RepGlob (count) + 1 RepLoc (j) + 0 RepExt + 6 RepReq
/// assert_eq!(mutants.len(), 9);
/// ```
pub fn enumerate_mutants(inventory: &ClassInventory, target_methods: &[&str]) -> Vec<Mutant> {
    let mut out = Vec::new();
    for method_name in target_methods {
        let Some(m) = inventory.method_named(method_name) else {
            continue;
        };
        let externals = inventory.externals_for(m);
        for site in &m.sites {
            let mut push = |operator: MutationOperator, replacement: Replacement| {
                out.push(Mutant {
                    id: out.len(),
                    operator,
                    plan: FaultPlan {
                        method: m.method.clone(),
                        site: site.id,
                        replacement,
                    },
                });
            };
            // IndVarBitNeg: one per site.
            push(MutationOperator::IndVarBitNeg, Replacement::BitNeg);
            // IndVarRepGlob: every used global.
            for g in &m.globals_used {
                push(MutationOperator::IndVarRepGlob, Replacement::Var(g.clone()));
            }
            // IndVarRepLoc: every *other* local.
            for l in &m.locals {
                if l != &site.var {
                    push(MutationOperator::IndVarRepLoc, Replacement::Var(l.clone()));
                }
            }
            // IndVarRepExt: every unused global.
            for e in &externals {
                push(
                    MutationOperator::IndVarRepExt,
                    Replacement::Var((*e).to_owned()),
                );
            }
            // IndVarRepReq: every required constant.
            for c in ReqConst::ALL {
                push(MutationOperator::IndVarRepReq, Replacement::Const(c));
            }
        }
    }
    out
}

/// Expected mutant count per the combinatorial formulae — used by property
/// tests and by the harness's self-check (`no silent caps`).
pub fn expected_count(inventory: &ClassInventory, target_methods: &[&str]) -> usize {
    let mut total = 0;
    for method_name in target_methods {
        let Some(m) = inventory.method_named(method_name) else {
            continue;
        };
        let e = inventory.externals_for(m).len();
        for site in &m.sites {
            let other_locals = m.locals.iter().filter(|l| *l != &site.var).count();
            total += 1 // BitNeg
                + m.globals_used.len()
                + other_locals
                + e
                + ReqConst::ALL.len();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::MethodInventory;

    fn inv() -> ClassInventory {
        ClassInventory::new("SortableObList")
            .globals(["count", "head", "tail"])
            .method(
                MethodInventory::new("Sort1")
                    .locals(["i", "j", "swapped"])
                    .globals_used(["count", "head"])
                    .site(0, "i", "outer")
                    .site(1, "j", "inner"),
            )
            .method(
                MethodInventory::new("FindMax")
                    .locals(["idx"])
                    .globals_used(["count"])
                    .site(0, "idx", "scan"),
            )
    }

    #[test]
    fn counts_match_formula() {
        let inv = inv();
        let mutants = enumerate_mutants(&inv, &["Sort1", "FindMax"]);
        assert_eq!(mutants.len(), expected_count(&inv, &["Sort1", "FindMax"]));
        // Sort1: per site: 1 + 2 G + 2 otherL + 1 E + 6 RC = 12; two sites = 24.
        // FindMax: 1 + 1 G + 0 otherL + 2 E + 6 RC = 10.
        assert_eq!(mutants.len(), 34);
    }

    #[test]
    fn per_operator_breakdown() {
        let mutants = enumerate_mutants(&inv(), &["Sort1"]);
        let count = |op: MutationOperator| mutants.iter().filter(|m| m.operator == op).count();
        assert_eq!(count(MutationOperator::IndVarBitNeg), 2);
        assert_eq!(count(MutationOperator::IndVarRepGlob), 4);
        assert_eq!(count(MutationOperator::IndVarRepLoc), 4);
        assert_eq!(count(MutationOperator::IndVarRepExt), 2);
        assert_eq!(count(MutationOperator::IndVarRepReq), 12);
    }

    #[test]
    fn self_replacement_excluded() {
        let mutants = enumerate_mutants(&inv(), &["Sort1"]);
        for m in &mutants {
            if let Replacement::Var(v) = &m.plan.replacement {
                if m.operator == MutationOperator::IndVarRepLoc {
                    let site_var = match m.plan.site {
                        0 => "i",
                        1 => "j",
                        _ => unreachable!(),
                    };
                    assert_ne!(v, site_var, "a local must not replace itself");
                }
            }
        }
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let mutants = enumerate_mutants(&inv(), &["Sort1", "FindMax"]);
        for (i, m) in mutants.iter().enumerate() {
            assert_eq!(m.id, i);
        }
    }

    #[test]
    fn unknown_target_methods_are_skipped() {
        let mutants = enumerate_mutants(&inv(), &["Nope"]);
        assert!(mutants.is_empty());
        assert_eq!(expected_count(&inv(), &["Nope"]), 0);
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = enumerate_mutants(&inv(), &["Sort1", "FindMax"]);
        let b = enumerate_mutants(&inv(), &["Sort1", "FindMax"]);
        assert_eq!(a, b);
    }

    #[test]
    fn display_mentions_operator_and_site() {
        let mutants = enumerate_mutants(&inv(), &["FindMax"]);
        let s = mutants[0].to_string();
        assert!(s.contains("IndVarBitNeg"));
        assert!(s.contains("FindMax"));
        assert_eq!(mutants[0].method(), "FindMax");
    }
}
